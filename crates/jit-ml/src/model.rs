//! The [`Model`] trait — Definition II.1 of the paper.
//!
//! A model maps a profile vector to the probability of the *desired*
//! positive classification. The candidates generator additionally needs
//! model-dependent structure to propose decision-altering moves; models
//! surface that through [`ModelHints`].

/// Structure a model exposes to guide counterfactual move proposal.
#[derive(Clone, Debug)]
pub enum ModelHints {
    /// Tree-family models: per-feature sorted, deduplicated split
    /// thresholds. A proposal nudges a feature just across one of these.
    Thresholds(Vec<Vec<f64>>),
    /// Linear-family models: the weight vector. A proposal steps along the
    /// (sign of the) gradient of the score.
    Linear(Vec<f64>),
    /// No structural information; the search falls back to data-driven
    /// coordinate perturbations.
    Opaque,
}

impl ModelHints {
    /// `true` when the hints carry no structure.
    pub fn is_opaque(&self) -> bool {
        matches!(self, ModelHints::Opaque)
    }
}

/// A binary classification model `M : R^d -> [0,1]` (paper Definition II.1).
pub trait Model: Send + Sync {
    /// Input dimension `d`.
    fn dim(&self) -> usize;

    /// Probability of the desired positive class for profile `x`.
    fn predict_proba(&self, x: &[f64]) -> f64;

    /// Model-dependent structure for the counterfactual search.
    ///
    /// The default is [`ModelHints::Opaque`]; tree and linear models
    /// override it.
    fn hints(&self) -> ModelHints {
        ModelHints::Opaque
    }

    /// Content fingerprint of the fitted model, or `None` when the model
    /// cannot vouch for one.
    ///
    /// The contract (see [`jit_math::digest`]): two models returning the
    /// same `Some(digest)` produce **bit-identical** `predict_proba` and
    /// [`Model::hints`] output for every input — the incremental serving
    /// layer replays stored results on the strength of this, so an
    /// implementation must digest every byte that can influence a
    /// prediction, and must return `None` (always treated as "changed")
    /// rather than guess.
    fn fingerprint(&self) -> Option<jit_math::Digest> {
        None
    }

    /// Convenience: hard decision at threshold `delta`
    /// (Definition II.3 requires a strict inequality `M(x') > δ`).
    fn decide(&self, x: &[f64], delta: f64) -> bool {
        self.predict_proba(x) > delta
    }
}

/// Blanket implementation so `Box<dyn Model>` is itself a `Model`.
impl Model for Box<dyn Model> {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        (**self).predict_proba(x)
    }

    fn hints(&self) -> ModelHints {
        (**self).hints()
    }

    fn fingerprint(&self) -> Option<jit_math::Digest> {
        (**self).fingerprint()
    }
}

/// Blanket implementation so `Arc<dyn Model>` (the shape future-model
/// sequences share their models in) is itself a `Model`.
impl Model for std::sync::Arc<dyn Model> {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        (**self).predict_proba(x)
    }

    fn hints(&self) -> ModelHints {
        (**self).hints()
    }

    fn fingerprint(&self) -> Option<jit_math::Digest> {
        (**self).fingerprint()
    }
}

/// A trivial constant model, useful in tests and as a degenerate baseline.
#[derive(Clone, Debug)]
pub struct ConstantModel {
    dim: usize,
    prob: f64,
}

impl ConstantModel {
    /// A model that outputs `prob` for every input of dimension `dim`.
    pub fn new(dim: usize, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        ConstantModel { dim, prob }
    }
}

impl Model for ConstantModel {
    fn dim(&self) -> usize {
        self.dim
    }

    fn predict_proba(&self, _x: &[f64]) -> f64 {
        self.prob
    }

    fn fingerprint(&self) -> Option<jit_math::Digest> {
        let mut w = jit_math::DigestWriter::new("jit-ml/constant");
        w.write_usize(self.dim);
        w.write_f64(self.prob);
        Some(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_outputs_constant() {
        let m = ConstantModel::new(3, 0.7);
        assert_eq!(m.predict_proba(&[0.0, 0.0, 0.0]), 0.7);
        assert_eq!(m.dim(), 3);
        assert!(m.hints().is_opaque());
    }

    #[test]
    fn decide_is_strict() {
        let m = ConstantModel::new(1, 0.5);
        assert!(!m.decide(&[0.0], 0.5), "M(x) > delta must be strict");
        assert!(m.decide(&[0.0], 0.49));
    }

    #[test]
    fn boxed_model_delegates() {
        let b: Box<dyn Model> = Box::new(ConstantModel::new(2, 0.9));
        assert_eq!(b.predict_proba(&[1.0, 2.0]), 0.9);
        assert_eq!(b.dim(), 2);
        assert!(b.decide(&[1.0, 2.0], 0.5));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn constant_model_validates_prob() {
        ConstantModel::new(1, 1.5);
    }
}
