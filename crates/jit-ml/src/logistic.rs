//! L2-regularized logistic regression trained with mini-batch gradient
//! descent.
//!
//! Serves two roles in the reproduction: a fast, well-calibrated baseline
//! model family, and the canonical carrier of [`ModelHints::Linear`] —
//! its weight vector directly tells the candidates generator which
//! direction increases the approval score.

use crate::dataset::Dataset;
use crate::model::{Model, ModelHints};
use jit_math::rng::Rng;
use jit_math::stats::Standardizer;

/// Hyperparameters for [`LogisticRegression::fit`].
#[derive(Clone, Debug)]
pub struct LogisticParams {
    /// Gradient descent epochs over the data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 penalty strength.
    pub l2: f64,
    /// Mini-batch size; `None` = full batch.
    pub batch_size: Option<usize>,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams {
            epochs: 200,
            learning_rate: 0.1,
            l2: 1e-4,
            batch_size: Some(64),
        }
    }
}

/// A fitted logistic regression classifier.
///
/// Features are standardized internally; the stored weights act on the
/// whitened space and [`LogisticRegression::input_space_weights`] maps them
/// back for interpretation.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    standardizer: Standardizer,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Fits the model by mini-batch gradient descent on the weighted
    /// log-loss.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, params: &LogisticParams, rng: &mut Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit logistic model on empty dataset");
        let d = data.dim();
        let x_mat = data.matrix();
        let standardizer = Standardizer::fit(&x_mat);
        let z: Vec<Vec<f64>> =
            data.rows().map(|r| standardizer.transform_row(r)).collect();

        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let n = data.len();
        let batch = params.batch_size.unwrap_or(n).clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();

        for _ in 0..params.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch) {
                let mut grad_w = vec![0.0; d];
                let mut grad_b = 0.0;
                let mut weight_sum = 0.0;
                for &i in chunk {
                    let wi = data.weights()[i];
                    if wi == 0.0 {
                        continue;
                    }
                    weight_sum += wi;
                    let zi = &z[i];
                    let pred = sigmoid(jit_math::vector::dot(&w, zi) + b);
                    let err = pred - if data.label(i) { 1.0 } else { 0.0 };
                    for (g, &f) in grad_w.iter_mut().zip(zi) {
                        *g += wi * err * f;
                    }
                    grad_b += wi * err;
                }
                if weight_sum == 0.0 {
                    continue;
                }
                let lr = params.learning_rate;
                for (wj, g) in w.iter_mut().zip(&grad_w) {
                    *wj -= lr * (g / weight_sum + params.l2 * *wj);
                }
                b -= lr * grad_b / weight_sum;
            }
        }
        LogisticRegression { weights: w, bias: b, standardizer }
    }

    /// Weights in whitened feature space.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Intercept in whitened feature space.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Weights mapped back to raw input space
    /// (`w_raw[j] = w[j] / std[j]`), i.e. the per-unit effect of each raw
    /// feature on the log-odds.
    pub fn input_space_weights(&self) -> Vec<f64> {
        self.weights.iter().zip(self.standardizer.stds()).map(|(w, s)| w / s).collect()
    }
}

impl Model for LogisticRegression {
    fn dim(&self) -> usize {
        self.weights.len()
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        let z = self.standardizer.transform_row(x);
        sigmoid(jit_math::vector::dot(&self.weights, &z) + self.bias)
    }

    fn hints(&self) -> ModelHints {
        ModelHints::Linear(self.input_space_weights())
    }

    fn fingerprint(&self) -> Option<jit_math::Digest> {
        // predict_proba reads weights, bias and the standardizer's
        // means/stds; hints derive from the same fields.
        let mut w = jit_math::DigestWriter::new("jit-ml/logistic");
        w.write_f64s(&self.weights);
        w.write_f64(self.bias);
        w.write_f64s(self.standardizer.means());
        w.write_f64s(self.standardizer.stds());
        Some(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize, rng: &mut Rng) -> Dataset {
        // Positive iff 2*x0 - x1 + noise > 0.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x0 = rng.normal();
            let x1 = rng.normal();
            let score = 2.0 * x0 - x1 + 0.1 * rng.normal();
            rows.push(vec![x0, x1]);
            labels.push(score > 0.0);
        }
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn sigmoid_sanity() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
        // Extreme inputs stay finite (the stable formulation).
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(1000.0) <= 1.0);
    }

    #[test]
    fn learns_linear_boundary() {
        let mut rng = Rng::seeded(1);
        let train = linear_data(500, &mut rng);
        let test = linear_data(200, &mut rng);
        let m = LogisticRegression::fit(&train, &LogisticParams::default(), &mut rng);
        let mut correct = 0;
        for (row, label, _) in test.iter() {
            if (m.predict_proba(row) > 0.5) == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.93, "logistic accuracy {acc} too low");
    }

    #[test]
    fn recovered_weights_have_correct_signs() {
        let mut rng = Rng::seeded(2);
        let d = linear_data(500, &mut rng);
        let m = LogisticRegression::fit(&d, &LogisticParams::default(), &mut rng);
        let w = m.input_space_weights();
        assert!(w[0] > 0.0, "x0 should push positive");
        assert!(w[1] < 0.0, "x1 should push negative");
        // True ratio is 2:-1.
        assert!((w[0] / -w[1] - 2.0).abs() < 0.5, "weight ratio off: {w:?}");
    }

    #[test]
    fn hints_are_linear() {
        let mut rng = Rng::seeded(3);
        let d = linear_data(100, &mut rng);
        let m = LogisticRegression::fit(&d, &LogisticParams::default(), &mut rng);
        match m.hints() {
            ModelHints::Linear(w) => assert_eq!(w.len(), 2),
            _ => panic!("logistic model must expose linear hints"),
        }
    }

    #[test]
    fn weighted_examples_dominate_fit() {
        // Two conflicting points; the heavy one wins.
        let d = Dataset::from_weighted_rows(
            vec![vec![1.0], vec![1.0]],
            vec![true, false],
            vec![10.0, 1.0],
        );
        let params = LogisticParams { epochs: 500, ..Default::default() };
        let mut rng = Rng::seeded(4);
        let m = LogisticRegression::fit(&d, &params, &mut rng);
        assert!(m.predict_proba(&[1.0]) > 0.5);
    }

    #[test]
    fn full_batch_matches_api() {
        let mut rng = Rng::seeded(5);
        let d = linear_data(100, &mut rng);
        let params =
            LogisticParams { batch_size: None, epochs: 100, ..Default::default() };
        let m = LogisticRegression::fit(&d, &params, &mut rng);
        assert!(m.predict_proba(&[3.0, -3.0]) > 0.5);
        assert!(m.predict_proba(&[-3.0, 3.0]) < 0.5);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng = Rng::seeded(6);
        let d = linear_data(100, &mut rng);
        let m1 = LogisticRegression::fit(
            &d,
            &LogisticParams::default(),
            &mut Rng::seeded(7),
        );
        let m2 = LogisticRegression::fit(
            &d,
            &LogisticParams::default(),
            &mut Rng::seeded(7),
        );
        assert_eq!(m1.weights(), m2.weights());
        assert_eq!(m1.bias(), m2.bias());
    }
}
