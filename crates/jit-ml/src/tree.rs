//! CART decision trees with weighted Gini impurity.
//!
//! Besides prediction, trees expose their **split thresholds** per feature:
//! the model-dependent heuristic of the candidates generator (Deutch &
//! Frost '19, as adapted in the JustInTime paper §II-A) proposes moves that
//! nudge a feature *just across* one of these thresholds, because between
//! thresholds a tree ensemble's output is piecewise constant.

use crate::dataset::Dataset;
use crate::model::{Model, ModelHints};
use jit_math::rng::Rng;

/// Hyperparameters for [`DecisionTree::fit`].
#[derive(Clone, Debug)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum total example weight a leaf may hold.
    pub min_leaf_weight: f64,
    /// Number of features examined per split; `None` means all features.
    /// Random forests pass `sqrt(d)` here.
    pub feature_subsample: Option<usize>,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            max_depth: 8,
            min_leaf_weight: 2.0,
            feature_subsample: None,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        /// Weighted positive fraction of the training examples in the leaf.
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the child taken when `x[feature] <= threshold`.
        left: usize,
        /// Index of the child taken when `x[feature] > threshold`.
        right: usize,
    },
}

/// One flat tree node: 24 packed bytes, so a prediction step touches a
/// single cache line instead of one line per parallel array.
///
/// `feature == LEAF` marks a leaf whose probability sits in `threshold`;
/// otherwise `threshold` is the split value and `left`/`right` the child
/// node indices.
#[derive(Clone, Copy, Debug)]
struct FlatNode {
    threshold: f64,
    feature: u32,
    left: u32,
    right: u32,
}

/// Sentinel in [`FlatNode::feature`] marking a leaf node.
const LEAF: u32 = u32::MAX;

/// A fitted CART binary classifier.
///
/// Nodes are stored flat in build (pre-)order; the prediction loop is the
/// single hottest operation of the candidates search (thousands of calls
/// per user session), and the dense `FlatNode` layout keeps it to one
/// array read per level with no enum discriminants. (A branch-free
/// fixed-depth descent was tried and measured slower: most paths exit
/// well above the maximum depth.)
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<FlatNode>,
    dim: usize,
}

struct Builder<'a> {
    params: &'a DecisionTreeParams,
    nodes: Vec<Node>,
    rng: Rng,
    /// Per-example weights, copied out of the dataset once.
    weights: Vec<f64>,
    /// Per-example labels, copied out of the dataset once.
    labels: Vec<bool>,
    /// Column-major feature values: `cols[f][i]` is feature `f` of
    /// example `i`. Transposed once per tree so split scans are
    /// cache-linear.
    cols: Vec<Vec<f64>>,
    /// Scratch: which side of the current split each example fell on.
    goes_left: Vec<bool>,
}

/// A node's working set: its member examples plus, per feature, the same
/// members in ascending feature-value order.
///
/// Each feature column is sorted **once per tree** at the root; recursion
/// partitions the sorted lists stably, so every node sees presorted
/// columns without re-sorting (`O(n·d)` per node instead of
/// `O(k·n log n)`).
struct NodeSet {
    /// Member example ids in ascending id order (the summation order, kept
    /// stable so impurity accumulation is reproducible).
    members: Vec<u32>,
    /// Per feature: member ids in ascending feature-value order.
    sorted: Vec<Vec<u32>>,
}

/// Weighted Gini impurity of a (pos_weight, total_weight) split side.
fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

impl<'a> Builder<'a> {
    fn new(data: &Dataset, params: &'a DecisionTreeParams, rng: Rng) -> Self {
        let n = data.len();
        let d = data.dim();
        let mut cols = vec![Vec::with_capacity(n); d];
        for row in data.rows() {
            for (f, &v) in row.iter().enumerate() {
                cols[f].push(v);
            }
        }
        Builder {
            params,
            nodes: Vec::new(),
            rng,
            weights: data.weights().to_vec(),
            labels: data.labels().to_vec(),
            cols,
            goes_left: vec![false; n],
        }
    }

    /// Builder over the bootstrap sample `indices` of a presorted parent:
    /// columns and labels are gathered from the parent, weights are the
    /// unit weights a realized bootstrap carries.
    fn from_bootstrap(
        presort: &DatasetPresort,
        indices: &[u32],
        params: &'a DecisionTreeParams,
        rng: Rng,
    ) -> Self {
        let n = indices.len();
        let cols = presort
            .cols
            .iter()
            .map(|pc| indices.iter().map(|&i| pc[i as usize]).collect())
            .collect();
        let labels = indices.iter().map(|&i| presort.labels[i as usize]).collect();
        Builder {
            params,
            nodes: Vec::new(),
            rng,
            weights: vec![1.0; n],
            labels,
            cols,
            goes_left: vec![false; n],
        }
    }

    /// Derives the root [`NodeSet`] of a bootstrap sample from the parent
    /// presort: members are counting-sorted into per-parent-row buckets
    /// (ascending member id within a bucket), then emitted in the
    /// parent's per-feature value order — `O(n)` per feature instead of
    /// an `O(n log n)` sort.
    fn bootstrap_root_set(&self, presort: &DatasetPresort, indices: &[u32]) -> NodeSet {
        let n = indices.len();
        let parent_n = presort.len();
        let members: Vec<u32> = (0..n as u32).collect();
        let mut start = vec![0u32; parent_n + 1];
        for &pr in indices {
            start[pr as usize + 1] += 1;
        }
        for i in 0..parent_n {
            start[i + 1] += start[i];
        }
        let mut grouped = vec![0u32; n];
        let mut cursor = start.clone();
        for (m, &pr) in indices.iter().enumerate() {
            let c = &mut cursor[pr as usize];
            grouped[*c as usize] = m as u32;
            *c += 1;
        }
        let sorted = presort
            .sorted
            .iter()
            .map(|parent_order| {
                let mut order = Vec::with_capacity(n);
                for &pr in parent_order {
                    let lo = start[pr as usize] as usize;
                    let hi = start[pr as usize + 1] as usize;
                    order.extend_from_slice(&grouped[lo..hi]);
                }
                order
            })
            .collect();
        NodeSet { members, sorted }
    }

    fn root_set(&self) -> NodeSet {
        let n = self.weights.len();
        let members: Vec<u32> = (0..n as u32).collect();
        let sorted = self
            .cols
            .iter()
            .map(|col| {
                let mut order = members.clone();
                // Stable: ties keep ascending id order, like the previous
                // per-node stable sort over id-ordered gathers.
                order.sort_by(|&a, &b| {
                    col[a as usize]
                        .partial_cmp(&col[b as usize])
                        .expect("no NaN features")
                });
                order
            })
            .collect();
        NodeSet { members, sorted }
    }

    /// Finds the best split of the node over a feature subsample; returns
    /// `(feature, threshold, impurity_decrease)`.
    fn best_split(&mut self, set: &NodeSet) -> Option<(usize, f64, f64)> {
        let d = self.cols.len();

        let mut total_w = 0.0;
        let mut total_pos = 0.0;
        for &i in &set.members {
            let w = self.weights[i as usize];
            total_w += w;
            if self.labels[i as usize] {
                total_pos += w;
            }
        }
        if total_w <= 0.0 {
            return None;
        }
        let parent_impurity = gini(total_pos, total_w);
        if parent_impurity == 0.0 {
            return None; // already pure
        }

        let features: Vec<usize> = match self.params.feature_subsample {
            Some(k) if k < d => self.rng.sample_indices(d, k.max(1)),
            _ => (0..d).collect(),
        };

        let mut best: Option<(usize, f64, f64)> = None;
        for &f in &features {
            let order = &set.sorted[f];
            let col = &self.cols[f];
            let mut left_w = 0.0;
            let mut left_pos = 0.0;
            for w in 0..order.len().saturating_sub(1) {
                let i = order[w] as usize;
                left_w += self.weights[i];
                if self.labels[i] {
                    left_pos += self.weights[i];
                }
                let v = col[i];
                let v_next = col[order[w + 1] as usize];
                // Can't split between equal values.
                if v == v_next {
                    continue;
                }
                let right_w = total_w - left_w;
                let right_pos = total_pos - left_pos;
                if left_w < self.params.min_leaf_weight
                    || right_w < self.params.min_leaf_weight
                {
                    continue;
                }
                let weighted_child = (left_w * gini(left_pos, left_w)
                    + right_w * gini(right_pos, right_w))
                    / total_w;
                let decrease = parent_impurity - weighted_child;
                let threshold = 0.5 * (v + v_next);
                match best {
                    Some((_, _, bd)) if bd >= decrease => {}
                    _ => best = Some((f, threshold, decrease)),
                }
            }
        }
        // Zero-gain splits are allowed (mirroring sklearn): on XOR-shaped
        // data no single split improves Gini, yet children can become
        // separable. Termination still holds because a split always has
        // non-empty children and depth is bounded.
        best.filter(|(_, _, d)| *d >= 0.0)
    }

    /// Stably partitions a node's members and presorted columns by the
    /// chosen split, preserving both id order and per-feature value order.
    fn partition(
        &mut self,
        set: NodeSet,
        feature: usize,
        threshold: f64,
    ) -> (NodeSet, NodeSet) {
        let col = &self.cols[feature];
        for &i in &set.members {
            self.goes_left[i as usize] = col[i as usize] <= threshold;
        }
        let split_members = |ids: &[u32], goes_left: &[bool]| -> (Vec<u32>, Vec<u32>) {
            let mut left = Vec::new();
            let mut right = Vec::new();
            for &i in ids {
                if goes_left[i as usize] {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            (left, right)
        };
        let (lm, rm) = split_members(&set.members, &self.goes_left);
        let mut ls = Vec::with_capacity(set.sorted.len());
        let mut rs = Vec::with_capacity(set.sorted.len());
        for order in &set.sorted {
            let (lo, ro) = split_members(order, &self.goes_left);
            ls.push(lo);
            rs.push(ro);
        }
        (NodeSet { members: lm, sorted: ls }, NodeSet { members: rm, sorted: rs })
    }

    fn build(&mut self, set: NodeSet, depth: usize) -> usize {
        let mut total_w = 0.0;
        let mut pos_w = 0.0;
        for &i in &set.members {
            let w = self.weights[i as usize];
            total_w += w;
            if self.labels[i as usize] {
                pos_w += w;
            }
        }
        let leaf_prob = if total_w > 0.0 { pos_w / total_w } else { 0.5 };

        if depth >= self.params.max_depth || set.members.len() < 2 {
            self.nodes.push(Node::Leaf { prob: leaf_prob });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold, _)) = self.best_split(&set) else {
            self.nodes.push(Node::Leaf { prob: leaf_prob });
            return self.nodes.len() - 1;
        };

        let (left_set, right_set) = self.partition(set, feature, threshold);
        debug_assert!(!left_set.members.is_empty() && !right_set.members.is_empty());

        // Reserve this node's slot before recursing so children line up.
        let my = self.nodes.len();
        self.nodes.push(Node::Leaf { prob: leaf_prob }); // placeholder
        let left = self.build(left_set, depth + 1);
        let right = self.build(right_set, depth + 1);
        self.nodes[my] = Node::Split { feature, threshold, left, right };
        my
    }
}

/// Column-major presort of a whole dataset, computed **once per forest**
/// and shared by every tree trained on uniform (unweighted) bootstraps of
/// that dataset.
///
/// Each tree's root sort order per feature is then *derived* from the
/// parent order by a counting sort over the bootstrap indices
/// (`O(n·d)`) instead of re-sorting every feature per tree
/// (`O(d·n log n)`). Ties between equal feature values may land in a
/// different relative order than a direct stable sort of the sample, but
/// split search only evaluates boundaries between *distinct* values and
/// uniform bootstraps carry exact unit weights, so the fitted tree is
/// bit-identical either way.
#[derive(Clone, Debug)]
pub struct DatasetPresort {
    /// Column-major feature values of the parent dataset.
    cols: Vec<Vec<f64>>,
    /// Per feature: parent row ids in ascending feature-value order
    /// (stable, ties by ascending row id).
    sorted: Vec<Vec<u32>>,
    /// Parent labels.
    labels: Vec<bool>,
}

impl DatasetPresort {
    /// Transposes and presorts `data` (one `O(d·n log n)` pass).
    ///
    /// # Panics
    /// Panics on an empty dataset or one too large for `u32` row ids.
    pub fn new(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot presort an empty dataset");
        let n = data.len();
        assert!(u32::try_from(n).is_ok(), "dataset too large for tree ids");
        let d = data.dim();
        let mut cols = vec![Vec::with_capacity(n); d];
        for row in data.rows() {
            for (f, &v) in row.iter().enumerate() {
                cols[f].push(v);
            }
        }
        let ids: Vec<u32> = (0..n as u32).collect();
        let sorted = cols
            .iter()
            .map(|col| {
                let mut order = ids.clone();
                order.sort_by(|&a, &b| {
                    col[a as usize]
                        .partial_cmp(&col[b as usize])
                        .expect("no NaN features")
                });
                order
            })
            .collect();
        DatasetPresort { cols, sorted, labels: data.labels().to_vec() }
    }

    /// Number of parent rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the presort covers no rows (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.cols.len()
    }
}

impl DecisionTree {
    /// Fits a tree on `data`.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, params: &DecisionTreeParams, rng: &mut Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit tree on empty dataset");
        assert!(u32::try_from(data.len()).is_ok(), "dataset too large for tree ids");
        let builder = Builder::new(data, params, rng.fork());
        let root_set = builder.root_set();
        Self::finish(builder, root_set, data.dim())
    }

    /// Fits a tree on the bootstrap sample `indices` of a presorted
    /// parent dataset, deriving the root sort order from the shared
    /// [`DatasetPresort`] instead of re-sorting per tree.
    ///
    /// Exactly equivalent to `DecisionTree::fit(&parent.bootstrap(rng),
    /// ..)` for a *uniform-weight* parent (unit example weights are
    /// materialized, as `bootstrap` realizes its draws to weight 1); the
    /// RNG is consumed identically to `fit` (one fork).
    ///
    /// # Panics
    /// Panics when `indices` is empty or references rows outside the
    /// presorted parent.
    pub fn fit_bootstrap(
        presort: &DatasetPresort,
        indices: &[u32],
        params: &DecisionTreeParams,
        rng: &mut Rng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit tree on empty bootstrap");
        let builder = Builder::from_bootstrap(presort, indices, params, rng.fork());
        let root_set = builder.bootstrap_root_set(presort, indices);
        Self::finish(builder, root_set, presort.dim())
    }

    fn finish(mut builder: Builder<'_>, root_set: NodeSet, dim: usize) -> Self {
        let root = builder.build(root_set, 0);
        debug_assert_eq!(root, 0);
        Self::flatten(&builder.nodes, dim)
    }

    /// Converts the builder's node list into the flat layout.
    fn flatten(nodes: &[Node], dim: usize) -> Self {
        let flat = nodes
            .iter()
            .map(|node| match node {
                Node::Leaf { prob } => {
                    FlatNode { threshold: *prob, feature: LEAF, left: 0, right: 0 }
                }
                Node::Split { feature, threshold, left, right } => FlatNode {
                    threshold: *threshold,
                    feature: *feature as u32,
                    left: *left as u32,
                    right: *right as u32,
                },
            })
            .collect();
        DecisionTree { nodes: flat, dim }
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[FlatNode], i: usize) -> usize {
            let n = &nodes[i];
            if n.feature == LEAF {
                0
            } else {
                1 + rec(nodes, n.left as usize).max(rec(nodes, n.right as usize))
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Collects every `(feature, threshold)` split used by the tree.
    pub fn split_thresholds(&self) -> Vec<(usize, f64)> {
        self.nodes
            .iter()
            .filter(|n| n.feature != LEAF)
            .map(|n| (n.feature as usize, n.threshold))
            .collect()
    }

    /// The split thresholds encountered along the decision path of `x`.
    ///
    /// These are the *locally relevant* thresholds the counterfactual
    /// heuristic perturbs first.
    pub fn path_thresholds(&self, x: &[f64]) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut node = &self.nodes[0];
        while node.feature != LEAF {
            let f = node.feature as usize;
            out.push((f, node.threshold));
            node = if x[f] <= node.threshold {
                &self.nodes[node.left as usize]
            } else {
                &self.nodes[node.right as usize]
            };
        }
        out
    }

    /// [`Model::predict_proba`] without the per-call dimension assert —
    /// the forest checks once and then walks all its trees through here.
    #[inline]
    pub(crate) fn predict_proba_unchecked(&self, x: &[f64]) -> f64 {
        let nodes = &self.nodes[..];
        let mut node = &nodes[0];
        loop {
            let f = node.feature;
            if f == LEAF {
                return node.threshold;
            }
            node = if x[f as usize] <= node.threshold {
                &nodes[node.left as usize]
            } else {
                &nodes[node.right as usize]
            };
        }
    }
}

impl DecisionTree {
    /// Folds the tree's full fitted content — dimension and every flat
    /// node, in storage order — into `w`. Together with the flat layout
    /// this captures everything `predict_proba` / `hints` can observe,
    /// which is what the [`Model::fingerprint`] contract requires.
    pub fn digest_into(&self, w: &mut jit_math::DigestWriter) {
        w.write_usize(self.dim);
        w.write_usize(self.nodes.len());
        for n in &self.nodes {
            w.write_f64(n.threshold);
            w.write_u64(u64::from(n.feature) | (u64::from(n.left) << 32));
            w.write_u64(u64::from(n.right));
        }
    }
}

impl Model for DecisionTree {
    fn dim(&self) -> usize {
        self.dim
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        self.predict_proba_unchecked(x)
    }

    fn hints(&self) -> ModelHints {
        let mut per_feature = vec![Vec::new(); self.dim];
        for (f, t) in self.split_thresholds() {
            per_feature[f].push(t);
        }
        for ts in &mut per_feature {
            ts.sort_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
            ts.dedup();
        }
        ModelHints::Thresholds(per_feature)
    }

    fn fingerprint(&self) -> Option<jit_math::Digest> {
        let mut w = jit_math::DigestWriter::new("jit-ml/tree");
        self.digest_into(&mut w);
        Some(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy data: positive iff x0 > 5.
    fn separable(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, 0.0]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i as f64 > 5.0).collect();
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn learns_separable_boundary() {
        let d = separable(20);
        let mut rng = Rng::seeded(1);
        let t = DecisionTree::fit(&d, &DecisionTreeParams::default(), &mut rng);
        assert!(t.predict_proba(&[0.0, 0.0]) < 0.5);
        assert!(t.predict_proba(&[19.0, 0.0]) > 0.5);
        // The single needed split is near 5.5.
        let ths = t.split_thresholds();
        assert!(ths.iter().any(|(f, th)| *f == 0 && (*th - 5.5).abs() < 1.0));
    }

    #[test]
    fn pure_dataset_is_single_leaf() {
        let d = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![true, true]);
        let mut rng = Rng::seeded(2);
        let t = DecisionTree::fit(&d, &DecisionTreeParams::default(), &mut rng);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict_proba(&[5.0]), 1.0);
    }

    #[test]
    fn max_depth_zero_gives_prior() {
        let d = separable(20);
        let params = DecisionTreeParams { max_depth: 0, ..Default::default() };
        let mut rng = Rng::seeded(3);
        let t = DecisionTree::fit(&d, &params, &mut rng);
        assert_eq!(t.node_count(), 1);
        let prior = d.positive_rate();
        assert!((t.predict_proba(&[0.0, 0.0]) - prior).abs() < 1e-12);
    }

    #[test]
    fn respects_min_leaf_weight() {
        let d = separable(20);
        let params = DecisionTreeParams {
            min_leaf_weight: 100.0, // impossible: forces a leaf
            ..Default::default()
        };
        let mut rng = Rng::seeded(4);
        let t = DecisionTree::fit(&d, &params, &mut rng);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn xor_needs_depth_two() {
        // XOR of signs: not linearly separable, needs two levels.
        let rows = vec![
            vec![-1.0, -1.0],
            vec![-1.0, 1.0],
            vec![1.0, -1.0],
            vec![1.0, 1.0],
            vec![-2.0, -2.0],
            vec![-2.0, 2.0],
            vec![2.0, -2.0],
            vec![2.0, 2.0],
        ];
        let labels = vec![false, true, true, false, false, true, true, false];
        let d = Dataset::from_rows(rows, labels);
        // Zero-gain splits near the root consume depth before the
        // informative ones, so give the tree slack beyond the minimal 2.
        let params = DecisionTreeParams {
            max_depth: 6,
            min_leaf_weight: 1.0,
            feature_subsample: None,
        };
        let mut rng = Rng::seeded(5);
        let t = DecisionTree::fit(&d, &params, &mut rng);
        assert!(t.predict_proba(&[-1.5, 1.5]) > 0.5);
        assert!(t.predict_proba(&[1.5, 1.5]) < 0.5);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn weights_shift_leaf_probability() {
        // Same point twice with conflicting labels: probability follows weight.
        let d = Dataset::from_weighted_rows(
            vec![vec![0.0], vec![0.0]],
            vec![true, false],
            vec![3.0, 1.0],
        );
        let mut rng = Rng::seeded(6);
        let t = DecisionTree::fit(&d, &DecisionTreeParams::default(), &mut rng);
        assert!((t.predict_proba(&[0.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn path_thresholds_subset_of_all() {
        let d = separable(30);
        let mut rng = Rng::seeded(7);
        let t = DecisionTree::fit(&d, &DecisionTreeParams::default(), &mut rng);
        let all: std::collections::HashSet<(usize, i64)> = t
            .split_thresholds()
            .iter()
            .map(|(f, th)| (*f, (th * 1e6) as i64))
            .collect();
        for (f, th) in t.path_thresholds(&[3.0, 0.0]) {
            assert!(all.contains(&(f, (th * 1e6) as i64)));
        }
    }

    #[test]
    fn hints_are_sorted_dedup_thresholds() {
        let d = separable(30);
        let mut rng = Rng::seeded(8);
        let t = DecisionTree::fit(&d, &DecisionTreeParams::default(), &mut rng);
        match t.hints() {
            ModelHints::Thresholds(per_feature) => {
                assert_eq!(per_feature.len(), 2);
                for ts in &per_feature {
                    for w in ts.windows(2) {
                        assert!(w[0] < w[1], "thresholds must be sorted+dedup");
                    }
                }
            }
            _ => panic!("tree must expose threshold hints"),
        }
    }

    #[test]
    fn fit_bootstrap_matches_view_bootstrap_fit() {
        // Heavy value ties across distinct rows: the derived root order
        // may permute tied members, which must not change the tree.
        let rows: Vec<Vec<f64>> = (0..48)
            .map(|i| vec![(i % 4) as f64, ((i * 3) % 5) as f64, (i % 2) as f64])
            .collect();
        let labels: Vec<bool> = (0..48).map(|i| (i % 3) == 0).collect();
        let d = Dataset::from_rows(rows, labels);
        let presort = DatasetPresort::new(&d);
        let params = DecisionTreeParams {
            feature_subsample: Some(2),
            min_leaf_weight: 1.0,
            ..Default::default()
        };
        for seed in 0..12u64 {
            // Old path: bootstrap view + per-tree sort.
            let mut rng_a = Rng::seeded(seed);
            let sample = d.bootstrap(&mut rng_a);
            let ta = DecisionTree::fit(&sample, &params, &mut rng_a);
            // New path: shared presort + derived order, identical draws.
            let mut rng_b = Rng::seeded(seed);
            let indices: Vec<u32> =
                (0..d.len()).map(|_| rng_b.below(d.len()) as u32).collect();
            let tb =
                DecisionTree::fit_bootstrap(&presort, &indices, &params, &mut rng_b);
            assert_eq!(ta.node_count(), tb.node_count(), "seed {seed}");
            assert_eq!(ta.split_thresholds(), tb.split_thresholds(), "seed {seed}");
            for i in 0..16 {
                let x = vec![(i % 5) as f64 * 0.8, (i % 7) as f64 * 0.6, 0.5];
                assert_eq!(ta.predict_proba(&x), tb.predict_proba(&x));
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = separable(40);
        let params =
            DecisionTreeParams { feature_subsample: Some(1), ..Default::default() };
        let t1 = DecisionTree::fit(&d, &params, &mut Rng::seeded(9));
        let t2 = DecisionTree::fit(&d, &params, &mut Rng::seeded(9));
        for i in 0..40 {
            let x = [i as f64, 0.0];
            assert_eq!(t1.predict_proba(&x), t2.predict_proba(&x));
        }
    }
}
