//! CART decision trees with weighted Gini impurity.
//!
//! Besides prediction, trees expose their **split thresholds** per feature:
//! the model-dependent heuristic of the candidates generator (Deutch &
//! Frost '19, as adapted in the JustInTime paper §II-A) proposes moves that
//! nudge a feature *just across* one of these thresholds, because between
//! thresholds a tree ensemble's output is piecewise constant.

use crate::dataset::Dataset;
use crate::model::{Model, ModelHints};
use jit_math::rng::Rng;

/// Hyperparameters for [`DecisionTree::fit`].
#[derive(Clone, Debug)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum total example weight a leaf may hold.
    pub min_leaf_weight: f64,
    /// Number of features examined per split; `None` means all features.
    /// Random forests pass `sqrt(d)` here.
    pub feature_subsample: Option<usize>,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            max_depth: 8,
            min_leaf_weight: 2.0,
            feature_subsample: None,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        /// Weighted positive fraction of the training examples in the leaf.
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the child taken when `x[feature] <= threshold`.
        left: usize,
        /// Index of the child taken when `x[feature] > threshold`.
        right: usize,
    },
}

/// A fitted CART binary classifier.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    dim: usize,
}

struct Builder<'a> {
    params: &'a DecisionTreeParams,
    nodes: Vec<Node>,
    rng: Rng,
    /// Per-example weights, copied out of the dataset once.
    weights: Vec<f64>,
    /// Per-example labels, copied out of the dataset once.
    labels: Vec<bool>,
    /// Column-major feature values: `cols[f][i]` is feature `f` of
    /// example `i`. Transposed once per tree so split scans are
    /// cache-linear.
    cols: Vec<Vec<f64>>,
    /// Scratch: which side of the current split each example fell on.
    goes_left: Vec<bool>,
}

/// A node's working set: its member examples plus, per feature, the same
/// members in ascending feature-value order.
///
/// Each feature column is sorted **once per tree** at the root; recursion
/// partitions the sorted lists stably, so every node sees presorted
/// columns without re-sorting (`O(n·d)` per node instead of
/// `O(k·n log n)`).
struct NodeSet {
    /// Member example ids in ascending id order (the summation order, kept
    /// stable so impurity accumulation is reproducible).
    members: Vec<u32>,
    /// Per feature: member ids in ascending feature-value order.
    sorted: Vec<Vec<u32>>,
}

/// Weighted Gini impurity of a (pos_weight, total_weight) split side.
fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

impl<'a> Builder<'a> {
    fn new(data: &Dataset, params: &'a DecisionTreeParams, rng: Rng) -> Self {
        let n = data.len();
        let d = data.dim();
        let mut cols = vec![Vec::with_capacity(n); d];
        for row in data.rows() {
            for (f, &v) in row.iter().enumerate() {
                cols[f].push(v);
            }
        }
        Builder {
            params,
            nodes: Vec::new(),
            rng,
            weights: data.weights().to_vec(),
            labels: data.labels().to_vec(),
            cols,
            goes_left: vec![false; n],
        }
    }

    fn root_set(&self) -> NodeSet {
        let n = self.weights.len();
        let members: Vec<u32> = (0..n as u32).collect();
        let sorted = self
            .cols
            .iter()
            .map(|col| {
                let mut order = members.clone();
                // Stable: ties keep ascending id order, like the previous
                // per-node stable sort over id-ordered gathers.
                order.sort_by(|&a, &b| {
                    col[a as usize]
                        .partial_cmp(&col[b as usize])
                        .expect("no NaN features")
                });
                order
            })
            .collect();
        NodeSet { members, sorted }
    }

    /// Finds the best split of the node over a feature subsample; returns
    /// `(feature, threshold, impurity_decrease)`.
    fn best_split(&mut self, set: &NodeSet) -> Option<(usize, f64, f64)> {
        let d = self.cols.len();

        let mut total_w = 0.0;
        let mut total_pos = 0.0;
        for &i in &set.members {
            let w = self.weights[i as usize];
            total_w += w;
            if self.labels[i as usize] {
                total_pos += w;
            }
        }
        if total_w <= 0.0 {
            return None;
        }
        let parent_impurity = gini(total_pos, total_w);
        if parent_impurity == 0.0 {
            return None; // already pure
        }

        let features: Vec<usize> = match self.params.feature_subsample {
            Some(k) if k < d => self.rng.sample_indices(d, k.max(1)),
            _ => (0..d).collect(),
        };

        let mut best: Option<(usize, f64, f64)> = None;
        for &f in &features {
            let order = &set.sorted[f];
            let col = &self.cols[f];
            let mut left_w = 0.0;
            let mut left_pos = 0.0;
            for w in 0..order.len().saturating_sub(1) {
                let i = order[w] as usize;
                left_w += self.weights[i];
                if self.labels[i] {
                    left_pos += self.weights[i];
                }
                let v = col[i];
                let v_next = col[order[w + 1] as usize];
                // Can't split between equal values.
                if v == v_next {
                    continue;
                }
                let right_w = total_w - left_w;
                let right_pos = total_pos - left_pos;
                if left_w < self.params.min_leaf_weight
                    || right_w < self.params.min_leaf_weight
                {
                    continue;
                }
                let weighted_child = (left_w * gini(left_pos, left_w)
                    + right_w * gini(right_pos, right_w))
                    / total_w;
                let decrease = parent_impurity - weighted_child;
                let threshold = 0.5 * (v + v_next);
                match best {
                    Some((_, _, bd)) if bd >= decrease => {}
                    _ => best = Some((f, threshold, decrease)),
                }
            }
        }
        // Zero-gain splits are allowed (mirroring sklearn): on XOR-shaped
        // data no single split improves Gini, yet children can become
        // separable. Termination still holds because a split always has
        // non-empty children and depth is bounded.
        best.filter(|(_, _, d)| *d >= 0.0)
    }

    /// Stably partitions a node's members and presorted columns by the
    /// chosen split, preserving both id order and per-feature value order.
    fn partition(
        &mut self,
        set: NodeSet,
        feature: usize,
        threshold: f64,
    ) -> (NodeSet, NodeSet) {
        let col = &self.cols[feature];
        for &i in &set.members {
            self.goes_left[i as usize] = col[i as usize] <= threshold;
        }
        let split_members = |ids: &[u32], goes_left: &[bool]| -> (Vec<u32>, Vec<u32>) {
            let mut left = Vec::new();
            let mut right = Vec::new();
            for &i in ids {
                if goes_left[i as usize] {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            (left, right)
        };
        let (lm, rm) = split_members(&set.members, &self.goes_left);
        let mut ls = Vec::with_capacity(set.sorted.len());
        let mut rs = Vec::with_capacity(set.sorted.len());
        for order in &set.sorted {
            let (lo, ro) = split_members(order, &self.goes_left);
            ls.push(lo);
            rs.push(ro);
        }
        (NodeSet { members: lm, sorted: ls }, NodeSet { members: rm, sorted: rs })
    }

    fn build(&mut self, set: NodeSet, depth: usize) -> usize {
        let mut total_w = 0.0;
        let mut pos_w = 0.0;
        for &i in &set.members {
            let w = self.weights[i as usize];
            total_w += w;
            if self.labels[i as usize] {
                pos_w += w;
            }
        }
        let leaf_prob = if total_w > 0.0 { pos_w / total_w } else { 0.5 };

        if depth >= self.params.max_depth || set.members.len() < 2 {
            self.nodes.push(Node::Leaf { prob: leaf_prob });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold, _)) = self.best_split(&set) else {
            self.nodes.push(Node::Leaf { prob: leaf_prob });
            return self.nodes.len() - 1;
        };

        let (left_set, right_set) = self.partition(set, feature, threshold);
        debug_assert!(!left_set.members.is_empty() && !right_set.members.is_empty());

        // Reserve this node's slot before recursing so children line up.
        let my = self.nodes.len();
        self.nodes.push(Node::Leaf { prob: leaf_prob }); // placeholder
        let left = self.build(left_set, depth + 1);
        let right = self.build(right_set, depth + 1);
        self.nodes[my] = Node::Split { feature, threshold, left, right };
        my
    }
}

impl DecisionTree {
    /// Fits a tree on `data`.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, params: &DecisionTreeParams, rng: &mut Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit tree on empty dataset");
        assert!(u32::try_from(data.len()).is_ok(), "dataset too large for tree ids");
        let mut builder = Builder::new(data, params, rng.fork());
        let root_set = builder.root_set();
        let root = builder.build(root_set, 0);
        debug_assert_eq!(root, 0);
        DecisionTree { nodes: builder.nodes, dim: data.dim() }
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + rec(nodes, *left).max(rec(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Collects every `(feature, threshold)` split used by the tree.
    pub fn split_thresholds(&self) -> Vec<(usize, f64)> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, threshold, .. } => Some((*feature, *threshold)),
                Node::Leaf { .. } => None,
            })
            .collect()
    }

    /// The split thresholds encountered along the decision path of `x`.
    ///
    /// These are the *locally relevant* thresholds the counterfactual
    /// heuristic perturbs first.
    pub fn path_thresholds(&self, x: &[f64]) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => break,
                Node::Split { feature, threshold, left, right } => {
                    out.push((*feature, *threshold));
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
        out
    }
}

impl Model for DecisionTree {
    fn dim(&self) -> usize {
        self.dim
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { prob } => return *prob,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    fn hints(&self) -> ModelHints {
        let mut per_feature = vec![Vec::new(); self.dim];
        for (f, t) in self.split_thresholds() {
            per_feature[f].push(t);
        }
        for ts in &mut per_feature {
            ts.sort_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
            ts.dedup();
        }
        ModelHints::Thresholds(per_feature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy data: positive iff x0 > 5.
    fn separable(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, 0.0]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i as f64 > 5.0).collect();
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn learns_separable_boundary() {
        let d = separable(20);
        let mut rng = Rng::seeded(1);
        let t = DecisionTree::fit(&d, &DecisionTreeParams::default(), &mut rng);
        assert!(t.predict_proba(&[0.0, 0.0]) < 0.5);
        assert!(t.predict_proba(&[19.0, 0.0]) > 0.5);
        // The single needed split is near 5.5.
        let ths = t.split_thresholds();
        assert!(ths.iter().any(|(f, th)| *f == 0 && (*th - 5.5).abs() < 1.0));
    }

    #[test]
    fn pure_dataset_is_single_leaf() {
        let d = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![true, true]);
        let mut rng = Rng::seeded(2);
        let t = DecisionTree::fit(&d, &DecisionTreeParams::default(), &mut rng);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict_proba(&[5.0]), 1.0);
    }

    #[test]
    fn max_depth_zero_gives_prior() {
        let d = separable(20);
        let params = DecisionTreeParams { max_depth: 0, ..Default::default() };
        let mut rng = Rng::seeded(3);
        let t = DecisionTree::fit(&d, &params, &mut rng);
        assert_eq!(t.node_count(), 1);
        let prior = d.positive_rate();
        assert!((t.predict_proba(&[0.0, 0.0]) - prior).abs() < 1e-12);
    }

    #[test]
    fn respects_min_leaf_weight() {
        let d = separable(20);
        let params = DecisionTreeParams {
            min_leaf_weight: 100.0, // impossible: forces a leaf
            ..Default::default()
        };
        let mut rng = Rng::seeded(4);
        let t = DecisionTree::fit(&d, &params, &mut rng);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn xor_needs_depth_two() {
        // XOR of signs: not linearly separable, needs two levels.
        let rows = vec![
            vec![-1.0, -1.0],
            vec![-1.0, 1.0],
            vec![1.0, -1.0],
            vec![1.0, 1.0],
            vec![-2.0, -2.0],
            vec![-2.0, 2.0],
            vec![2.0, -2.0],
            vec![2.0, 2.0],
        ];
        let labels = vec![false, true, true, false, false, true, true, false];
        let d = Dataset::from_rows(rows, labels);
        // Zero-gain splits near the root consume depth before the
        // informative ones, so give the tree slack beyond the minimal 2.
        let params = DecisionTreeParams {
            max_depth: 6,
            min_leaf_weight: 1.0,
            feature_subsample: None,
        };
        let mut rng = Rng::seeded(5);
        let t = DecisionTree::fit(&d, &params, &mut rng);
        assert!(t.predict_proba(&[-1.5, 1.5]) > 0.5);
        assert!(t.predict_proba(&[1.5, 1.5]) < 0.5);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn weights_shift_leaf_probability() {
        // Same point twice with conflicting labels: probability follows weight.
        let d = Dataset::from_weighted_rows(
            vec![vec![0.0], vec![0.0]],
            vec![true, false],
            vec![3.0, 1.0],
        );
        let mut rng = Rng::seeded(6);
        let t = DecisionTree::fit(&d, &DecisionTreeParams::default(), &mut rng);
        assert!((t.predict_proba(&[0.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn path_thresholds_subset_of_all() {
        let d = separable(30);
        let mut rng = Rng::seeded(7);
        let t = DecisionTree::fit(&d, &DecisionTreeParams::default(), &mut rng);
        let all: std::collections::HashSet<(usize, i64)> = t
            .split_thresholds()
            .iter()
            .map(|(f, th)| (*f, (th * 1e6) as i64))
            .collect();
        for (f, th) in t.path_thresholds(&[3.0, 0.0]) {
            assert!(all.contains(&(f, (th * 1e6) as i64)));
        }
    }

    #[test]
    fn hints_are_sorted_dedup_thresholds() {
        let d = separable(30);
        let mut rng = Rng::seeded(8);
        let t = DecisionTree::fit(&d, &DecisionTreeParams::default(), &mut rng);
        match t.hints() {
            ModelHints::Thresholds(per_feature) => {
                assert_eq!(per_feature.len(), 2);
                for ts in &per_feature {
                    for w in ts.windows(2) {
                        assert!(w[0] < w[1], "thresholds must be sorted+dedup");
                    }
                }
            }
            _ => panic!("tree must expose threshold hints"),
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = separable(40);
        let params =
            DecisionTreeParams { feature_subsample: Some(1), ..Default::default() };
        let t1 = DecisionTree::fit(&d, &params, &mut Rng::seeded(9));
        let t2 = DecisionTree::fit(&d, &params, &mut Rng::seeded(9));
        for i in 0..40 {
            let x = [i as f64, 0.0];
            assert_eq!(t1.predict_proba(&x), t2.predict_proba(&x));
        }
    }
}
