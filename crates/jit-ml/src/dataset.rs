//! Weighted, labeled tabular datasets with zero-copy views.
//!
//! A [`Dataset`] holds feature rows in **one contiguous, row-major,
//! `Arc`-shared buffer** plus per-view labels and importance weights.
//! Weights matter here because future models in `jit-temporal` are trained
//! on *herded pseudo-samples* whose importance weights come from the
//! extrapolated distribution embedding.
//!
//! [`Dataset::subset`], [`Dataset::bootstrap`] and
//! [`Dataset::stratified_split`] produce **views**: they remap row indices
//! into the shared buffer instead of cloning row data. A random forest
//! drawing one bootstrap per tree therefore allocates `O(n)` indices per
//! tree instead of `O(n·d)` feature values — previously the dominant
//! allocation in forest training. Labels and weights (one `bool`/`f64` per
//! example) are materialized per view so hot-path accessors can stay
//! slice-returning.

use jit_math::rng::Rng;
use jit_math::Matrix;
use std::sync::Arc;

/// The shared, flattened row storage behind one or more dataset views.
#[derive(Clone, Debug, Default)]
struct RowStorage {
    /// Row-major feature values; `len == n_rows * dim`.
    values: Vec<f64>,
    /// Feature dimension (stride); 0 only when the storage is empty.
    dim: usize,
}

impl RowStorage {
    fn n_rows(&self) -> usize {
        self.values.len().checked_div(self.dim).unwrap_or(0)
    }

    fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.dim..(i + 1) * self.dim]
    }
}

/// A labeled, optionally weighted tabular dataset for binary
/// classification.
///
/// Cloning a `Dataset` is cheap: the row buffer (and the index remap of a
/// view) is reference-counted, so clones and sub-views share storage.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    storage: Arc<RowStorage>,
    /// View row -> storage row. `None` means the identity view over all
    /// storage rows.
    index: Option<Arc<Vec<u32>>>,
    labels: Vec<bool>,
    weights: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Creates a dataset from rows and labels with unit weights.
    ///
    /// # Panics
    /// Panics when lengths mismatch or rows are ragged.
    pub fn from_rows(rows: Vec<Vec<f64>>, labels: Vec<bool>) -> Self {
        let n = rows.len();
        let weights = vec![1.0; n];
        Self::from_weighted_rows(rows, labels, weights)
    }

    /// Creates a dataset with explicit example weights.
    ///
    /// # Panics
    /// Panics when lengths mismatch, rows are ragged, or any weight is
    /// negative/non-finite.
    pub fn from_weighted_rows(
        rows: Vec<Vec<f64>>,
        labels: Vec<bool>,
        weights: Vec<f64>,
    ) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
        let dim = rows.first().map_or(0, Vec::len);
        let mut values = Vec::with_capacity(rows.len() * dim);
        for r in &rows {
            assert_eq!(r.len(), dim, "ragged feature rows");
            values.extend_from_slice(r);
        }
        Self::check_weights(&weights);
        Dataset {
            storage: Arc::new(RowStorage { values, dim }),
            index: None,
            labels,
            weights,
        }
    }

    fn check_weights(weights: &[f64]) {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
    }

    /// Concatenates datasets into one freshly flattened dataset (weights
    /// preserved). The result owns a single buffer that subsequent views
    /// share — `jit-temporal` builds its herding pool once with this and
    /// then materializes only weights per horizon step.
    ///
    /// # Panics
    /// Panics when non-empty parts disagree on feature dimension.
    pub fn concat<'a, I: IntoIterator<Item = &'a Dataset>>(parts: I) -> Self {
        let mut values = Vec::new();
        let mut labels = Vec::new();
        let mut weights = Vec::new();
        let mut dim = 0usize;
        for part in parts {
            if part.is_empty() {
                continue;
            }
            if dim == 0 {
                dim = part.dim();
            }
            assert_eq!(part.dim(), dim, "feature dimension mismatch in concat");
            for (row, label, w) in part.iter() {
                values.extend_from_slice(row);
                labels.push(label);
                weights.push(w);
            }
        }
        Dataset {
            storage: Arc::new(RowStorage { values, dim }),
            index: None,
            labels,
            weights,
        }
    }

    /// A view sharing this dataset's rows and labels but carrying new
    /// weights (e.g. per-horizon herding weights over a shared pool).
    ///
    /// # Panics
    /// Panics when the length mismatches or any weight is invalid.
    pub fn with_weights(&self, weights: Vec<f64>) -> Dataset {
        assert_eq!(weights.len(), self.len(), "weights length mismatch");
        Self::check_weights(&weights);
        Dataset {
            storage: Arc::clone(&self.storage),
            index: self.index.clone(),
            labels: self.labels.clone(),
            weights,
        }
    }

    /// Appends one example.
    ///
    /// On a shared or remapped dataset this first materializes a private
    /// copy of the view (copy-on-write); prefer constructing datasets up
    /// front via [`Dataset::from_rows`] in hot paths.
    pub fn push(&mut self, row: Vec<f64>, label: bool, weight: f64) {
        if !self.is_empty() {
            assert_eq!(self.dim(), row.len(), "feature dimension mismatch");
        }
        assert!(weight.is_finite() && weight >= 0.0, "invalid weight");
        if self.index.is_some() {
            // Flatten the view so storage rows == view rows again.
            let mut values = Vec::with_capacity((self.len() + 1) * row.len());
            for (r, _, _) in self.iter() {
                values.extend_from_slice(r);
            }
            self.storage = Arc::new(RowStorage { values, dim: row.len() });
            self.index = None;
        }
        let storage = Arc::make_mut(&mut self.storage);
        if storage.dim == 0 {
            storage.dim = row.len();
        }
        storage.values.extend_from_slice(&row);
        self.labels.push(label);
        self.weights.push(weight);
    }

    /// Number of examples in this view.
    pub fn len(&self) -> usize {
        match &self.index {
            Some(ix) => ix.len(),
            None => self.storage.n_rows(),
        }
    }

    /// `true` when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.storage.dim
        }
    }

    /// Storage row behind view row `i`.
    #[inline]
    fn storage_row(&self, i: usize) -> usize {
        match &self.index {
            Some(ix) => ix[i] as usize,
            None => i,
        }
    }

    /// Iterator over feature rows, in view order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + Clone + '_ {
        (0..self.len()).map(|i| self.row(i))
    }

    /// The rows of this view as a dense matrix (one copy).
    pub fn matrix(&self) -> Matrix {
        let dim = self.storage.dim;
        match &self.index {
            None => Matrix::from_vec(
                self.storage.n_rows(),
                dim,
                self.storage.values.clone(),
            ),
            Some(_) => {
                let mut data = Vec::with_capacity(self.len() * dim);
                for r in self.rows() {
                    data.extend_from_slice(r);
                }
                Matrix::from_vec(self.len(), dim, data)
            }
        }
    }

    /// Borrow of all labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Borrow of all weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// One feature row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        self.storage.row(self.storage_row(i))
    }

    /// One label.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// Fraction of positive examples, weight-aware. Returns 0.0 when empty.
    pub fn positive_rate(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let pos: f64 = self
            .labels
            .iter()
            .zip(&self.weights)
            .filter(|(l, _)| **l)
            .map(|(_, w)| *w)
            .sum();
        pos / total
    }

    /// The sub-dataset at the given indices (weights preserved) as a
    /// zero-copy view into the shared row buffer.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let remap: Vec<u32> = indices
            .iter()
            .map(|&i| {
                u32::try_from(self.storage_row(i)).expect("storage row fits in u32")
            })
            .collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        let weights = indices.iter().map(|&i| self.weights[i]).collect();
        Dataset {
            storage: Arc::clone(&self.storage),
            index: Some(Arc::new(remap)),
            labels,
            weights,
        }
    }

    /// Splits into (train, test) with `test_fraction` of examples held out,
    /// stratified by label so both splits keep the class balance.
    ///
    /// # Panics
    /// Panics when `test_fraction` is outside `(0, 1)`.
    pub fn stratified_split(
        &self,
        test_fraction: f64,
        rng: &mut Rng,
    ) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1)"
        );
        let mut pos: Vec<usize> = Vec::new();
        let mut neg: Vec<usize> = Vec::new();
        for (i, &l) in self.labels.iter().enumerate() {
            if l {
                pos.push(i)
            } else {
                neg.push(i)
            }
        }
        rng.shuffle(&mut pos);
        rng.shuffle(&mut neg);
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for class in [pos, neg] {
            let n_test = ((class.len() as f64) * test_fraction).round() as usize;
            let n_test = n_test.min(class.len());
            test_idx.extend_from_slice(&class[..n_test]);
            train_idx.extend_from_slice(&class[n_test..]);
        }
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Draws a bootstrap sample of the same size, as a zero-copy view.
    ///
    /// When the dataset carries non-uniform weights the draw is
    /// weight-proportional, which is how future models are trained on
    /// herded pseudo-samples. Weighted draws binary-search a prefix-sum
    /// table (`O(n log n)` total) instead of scanning the weight vector
    /// per draw (`O(n²)`).
    pub fn bootstrap(&self, rng: &mut Rng) -> Dataset {
        assert!(!self.is_empty(), "bootstrap of empty dataset");
        let n = self.len();
        let uniform = self.weights.iter().all(|w| (*w - 1.0).abs() < 1e-12);
        let indices = if uniform {
            (0..n).map(|_| rng.below(n)).collect()
        } else {
            weighted_draw_indices(&self.weights, n, rng)
        };
        let mut out = self.subset(&indices);
        // Bootstrap resampling realizes the weights; reset them to 1.
        out.weights.iter_mut().for_each(|w| *w = 1.0);
        out
    }

    /// Iterator over `(row, label, weight)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], bool, f64)> + '_ {
        (0..self.len()).map(|i| (self.row(i), self.labels[i], self.weights[i]))
    }
}

/// Draws `n_draws` weight-proportional indices into `weights` via a
/// prefix-sum table and binary search (`O(n log n)` total instead of a
/// linear scan per draw). One uniform variate is consumed per draw.
///
/// Shared by [`Dataset::bootstrap`] and the boosting resampler.
///
/// # Panics
/// Panics when the total positive weight is zero.
pub(crate) fn weighted_draw_indices(
    weights: &[f64],
    n_draws: usize,
    rng: &mut Rng,
) -> Vec<usize> {
    // Inclusive prefix sums; zero-weight rows repeat the previous value
    // and can never be selected by a strictly-greater search.
    let mut prefix = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w.max(0.0);
        prefix.push(acc);
    }
    assert!(acc > 0.0, "weighted draw needs positive total weight");
    (0..n_draws)
        .map(|_| {
            let target = rng.next_f64() * acc;
            // First index with prefix[i] > target.
            prefix.partition_point(|&p| p <= target).min(weights.len() - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![i as f64, (2 * i) as f64]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy(9);
        assert_eq!(d.len(), 9);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.row(2), &[2.0, 4.0]);
        assert!(d.label(0));
        assert!(!d.label(1));
    }

    #[test]
    fn positive_rate_weighted() {
        let d = Dataset::from_weighted_rows(
            vec![vec![0.0], vec![1.0]],
            vec![true, false],
            vec![3.0, 1.0],
        );
        assert!((d.positive_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn positive_rate_empty_is_zero() {
        assert_eq!(Dataset::new().positive_rate(), 0.0);
    }

    #[test]
    fn subset_preserves_rows() {
        let d = toy(5);
        let s = d.subset(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[4.0, 8.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn subset_is_view_not_copy() {
        let d = toy(100);
        let s = d.subset(&[1, 2, 3]);
        let nested = s.subset(&[2, 0]);
        // Views share the parent's buffer...
        assert!(Arc::ptr_eq(&d.storage, &s.storage));
        assert!(Arc::ptr_eq(&d.storage, &nested.storage));
        // ...and nested views resolve through composed remaps.
        assert_eq!(nested.row(0), d.row(3));
        assert_eq!(nested.row(1), d.row(1));
        assert_eq!(nested.label(0), d.label(3));
    }

    #[test]
    fn with_weights_shares_rows() {
        let d = toy(4);
        let w = d.with_weights(vec![2.0, 0.0, 1.0, 5.0]);
        assert!(Arc::ptr_eq(&d.storage, &w.storage));
        assert_eq!(w.weights(), &[2.0, 0.0, 1.0, 5.0]);
        assert_eq!(w.row(3), d.row(3));
        assert_eq!(w.labels(), d.labels());
    }

    #[test]
    fn concat_flattens_parts() {
        let a = toy(3);
        let b = toy(6).subset(&[4, 5]);
        let c = Dataset::concat([&a, &b]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.row(3), &[4.0, 8.0]);
        assert_eq!(c.dim(), 2);
        assert!(c.index.is_none());
        // Empty parts are skipped.
        let with_empty = Dataset::concat([&Dataset::new(), &a]);
        assert_eq!(with_empty.len(), 3);
    }

    #[test]
    fn matrix_matches_rows_for_views() {
        let d = toy(6);
        let v = d.subset(&[5, 1, 3]);
        let m = v.matrix();
        for (i, row) in v.rows().enumerate() {
            for j in 0..v.dim() {
                assert_eq!(m[(i, j)], row[j]);
            }
        }
    }

    #[test]
    fn stratified_split_keeps_class_balance() {
        let n = 300;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i < 100).collect(); // 1/3 positive
        let d = Dataset::from_rows(rows, labels);
        let mut rng = Rng::seeded(1);
        let (train, test) = d.stratified_split(0.3, &mut rng);
        assert_eq!(train.len() + test.len(), n);
        assert!((train.positive_rate() - 1.0 / 3.0).abs() < 0.02);
        assert!((test.positive_rate() - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn stratified_split_disjoint_and_complete() {
        let d = toy(50);
        let mut rng = Rng::seeded(2);
        let (train, test) = d.stratified_split(0.2, &mut rng);
        // Reconstruct multiset of first coordinates.
        let mut all: Vec<i64> =
            train.rows().chain(test.rows()).map(|r| r[0] as i64).collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<i64>>());
    }

    #[test]
    fn bootstrap_same_size_and_unit_weights() {
        let d = toy(40);
        let mut rng = Rng::seeded(3);
        let b = d.bootstrap(&mut rng);
        assert_eq!(b.len(), 40);
        assert!(b.weights().iter().all(|w| *w == 1.0));
        assert!(Arc::ptr_eq(&d.storage, &b.storage), "bootstrap must be a view");
    }

    #[test]
    fn weighted_bootstrap_prefers_heavy_rows() {
        let rows = vec![vec![0.0], vec![1.0]];
        let labels = vec![false, true];
        let weights = vec![1.0, 99.0];
        let d = Dataset::from_weighted_rows(rows, labels, weights);
        let mut rng = Rng::seeded(4);
        let mut heavy = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            let b = d.bootstrap(&mut rng);
            heavy += b.rows().filter(|r| r[0] == 1.0).count();
            total += b.len();
        }
        assert!(heavy as f64 / total as f64 > 0.9);
    }

    #[test]
    fn weighted_bootstrap_never_selects_zero_weight() {
        let d = Dataset::from_weighted_rows(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![false, true, false],
            vec![0.0, 1.0, 0.0],
        );
        let mut rng = Rng::seeded(5);
        for _ in 0..20 {
            let b = d.bootstrap(&mut rng);
            assert!(b.rows().all(|r| r[0] == 1.0));
        }
    }

    #[test]
    fn push_checks_dimension() {
        let mut d = toy(2);
        d.push(vec![7.0, 8.0], true, 1.0);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn push_on_view_copies_on_write() {
        let d = toy(5);
        let mut v = d.subset(&[4, 2]);
        v.push(vec![9.0, 9.0], false, 1.0);
        assert_eq!(v.len(), 3);
        assert_eq!(v.row(0), &[4.0, 8.0]);
        assert_eq!(v.row(2), &[9.0, 9.0]);
        // The parent is untouched.
        assert_eq!(d.len(), 5);
        assert_eq!(d.row(4), &[4.0, 8.0]);
    }

    #[test]
    fn push_onto_empty_sets_dimension() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0, 3.0], true, 1.0);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.len(), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_wrong_dim_panics() {
        let mut d = toy(2);
        d.push(vec![7.0], true, 1.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]);
    }

    #[test]
    fn iter_yields_triples() {
        let d = Dataset::from_weighted_rows(vec![vec![1.0]], vec![true], vec![2.0]);
        let (row, label, weight) = d.iter().next().unwrap();
        assert_eq!(row, &[1.0]);
        assert!(label);
        assert_eq!(weight, 2.0);
    }
}
