//! Weighted, labeled tabular datasets.
//!
//! A [`Dataset`] owns feature rows (`Vec<f64>` per example), binary labels
//! and optional per-example importance weights. Weights matter here because
//! future models in `jit-temporal` are trained on *herded pseudo-samples*
//! whose importance weights come from the extrapolated distribution
//! embedding.

use jit_math::rng::Rng;

/// A labeled, optionally weighted tabular dataset for binary classification.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    rows: Vec<Vec<f64>>,
    labels: Vec<bool>,
    weights: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Creates a dataset from rows and labels with unit weights.
    ///
    /// # Panics
    /// Panics when lengths mismatch or rows are ragged.
    pub fn from_rows(rows: Vec<Vec<f64>>, labels: Vec<bool>) -> Self {
        let n = rows.len();
        let weights = vec![1.0; n];
        Self::from_weighted_rows(rows, labels, weights)
    }

    /// Creates a dataset with explicit example weights.
    ///
    /// # Panics
    /// Panics when lengths mismatch, rows are ragged, or any weight is
    /// negative/non-finite.
    pub fn from_weighted_rows(
        rows: Vec<Vec<f64>>,
        labels: Vec<bool>,
        weights: Vec<f64>,
    ) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        assert_eq!(rows.len(), weights.len(), "rows/weights length mismatch");
        if let Some(first) = rows.first() {
            let d = first.len();
            assert!(rows.iter().all(|r| r.len() == d), "ragged feature rows");
        }
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        Dataset { rows, labels, weights }
    }

    /// Appends one example.
    pub fn push(&mut self, row: Vec<f64>, label: bool, weight: f64) {
        if let Some(first) = self.rows.first() {
            assert_eq!(first.len(), row.len(), "feature dimension mismatch");
        }
        assert!(weight.is_finite() && weight >= 0.0, "invalid weight");
        self.rows.push(row);
        self.labels.push(label);
        self.weights.push(weight);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn dim(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Borrow of all feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Borrow of all labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Borrow of all weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// One feature row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// One label.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// Fraction of positive examples, weight-aware. Returns 0.0 when empty.
    pub fn positive_rate(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let pos: f64 = self
            .labels
            .iter()
            .zip(&self.weights)
            .filter(|(l, _)| **l)
            .map(|(_, w)| *w)
            .sum();
        pos / total
    }

    /// Extracts the sub-dataset at the given indices (weights preserved).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let rows = indices.iter().map(|&i| self.rows[i].clone()).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        let weights = indices.iter().map(|&i| self.weights[i]).collect();
        Dataset { rows, labels, weights }
    }

    /// Splits into (train, test) with `test_fraction` of examples held out,
    /// stratified by label so both splits keep the class balance.
    ///
    /// # Panics
    /// Panics when `test_fraction` is outside `(0, 1)`.
    pub fn stratified_split(
        &self,
        test_fraction: f64,
        rng: &mut Rng,
    ) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1)"
        );
        let mut pos: Vec<usize> = Vec::new();
        let mut neg: Vec<usize> = Vec::new();
        for (i, &l) in self.labels.iter().enumerate() {
            if l {
                pos.push(i)
            } else {
                neg.push(i)
            }
        }
        rng.shuffle(&mut pos);
        rng.shuffle(&mut neg);
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for class in [pos, neg] {
            let n_test = ((class.len() as f64) * test_fraction).round() as usize;
            let n_test = n_test.min(class.len());
            test_idx.extend_from_slice(&class[..n_test]);
            train_idx.extend_from_slice(&class[n_test..]);
        }
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Draws a bootstrap sample of the same size.
    ///
    /// When the dataset carries non-uniform weights the draw is
    /// weight-proportional, which is how future models are trained on
    /// herded pseudo-samples.
    pub fn bootstrap(&self, rng: &mut Rng) -> Dataset {
        assert!(!self.is_empty(), "bootstrap of empty dataset");
        let n = self.len();
        let uniform = self.weights.iter().all(|w| (*w - 1.0).abs() < 1e-12);
        let mut indices = Vec::with_capacity(n);
        if uniform {
            for _ in 0..n {
                indices.push(rng.below(n));
            }
        } else {
            for _ in 0..n {
                indices.push(rng.weighted_index(&self.weights));
            }
        }
        let mut out = self.subset(&indices);
        // Bootstrap resampling realizes the weights; reset them to 1.
        out.weights.iter_mut().for_each(|w| *w = 1.0);
        out
    }

    /// Iterator over `(row, label, weight)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], bool, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.labels)
            .zip(&self.weights)
            .map(|((r, l), w)| (r.as_slice(), *l, *w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![i as f64, (2 * i) as f64]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy(9);
        assert_eq!(d.len(), 9);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.row(2), &[2.0, 4.0]);
        assert!(d.label(0));
        assert!(!d.label(1));
    }

    #[test]
    fn positive_rate_weighted() {
        let d = Dataset::from_weighted_rows(
            vec![vec![0.0], vec![1.0]],
            vec![true, false],
            vec![3.0, 1.0],
        );
        assert!((d.positive_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn positive_rate_empty_is_zero() {
        assert_eq!(Dataset::new().positive_rate(), 0.0);
    }

    #[test]
    fn subset_preserves_rows() {
        let d = toy(5);
        let s = d.subset(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[4.0, 8.0]);
        assert_eq!(s.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn stratified_split_keeps_class_balance() {
        let n = 300;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let labels: Vec<bool> = (0..n).map(|i| i < 100).collect(); // 1/3 positive
        let d = Dataset::from_rows(rows, labels);
        let mut rng = Rng::seeded(1);
        let (train, test) = d.stratified_split(0.3, &mut rng);
        assert_eq!(train.len() + test.len(), n);
        assert!((train.positive_rate() - 1.0 / 3.0).abs() < 0.02);
        assert!((test.positive_rate() - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn stratified_split_disjoint_and_complete() {
        let d = toy(50);
        let mut rng = Rng::seeded(2);
        let (train, test) = d.stratified_split(0.2, &mut rng);
        // Reconstruct multiset of first coordinates.
        let mut all: Vec<i64> =
            train.rows().iter().chain(test.rows()).map(|r| r[0] as i64).collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<i64>>());
    }

    #[test]
    fn bootstrap_same_size_and_unit_weights() {
        let d = toy(40);
        let mut rng = Rng::seeded(3);
        let b = d.bootstrap(&mut rng);
        assert_eq!(b.len(), 40);
        assert!(b.weights().iter().all(|w| *w == 1.0));
    }

    #[test]
    fn weighted_bootstrap_prefers_heavy_rows() {
        let rows = vec![vec![0.0], vec![1.0]];
        let labels = vec![false, true];
        let weights = vec![1.0, 99.0];
        let d = Dataset::from_weighted_rows(rows, labels, weights);
        let mut rng = Rng::seeded(4);
        let mut heavy = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            let b = d.bootstrap(&mut rng);
            heavy += b.rows().iter().filter(|r| r[0] == 1.0).count();
            total += b.len();
        }
        assert!(heavy as f64 / total as f64 > 0.9);
    }

    #[test]
    fn push_checks_dimension() {
        let mut d = toy(2);
        d.push(vec![7.0, 8.0], true, 1.0);
        assert_eq!(d.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_wrong_dim_panics() {
        let mut d = toy(2);
        d.push(vec![7.0], true, 1.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]);
    }

    #[test]
    fn iter_yields_triples() {
        let d = Dataset::from_weighted_rows(vec![vec![1.0]], vec![true], vec![2.0]);
        let (row, label, weight) = d.iter().next().unwrap();
        assert_eq!(row, &[1.0]);
        assert!(label);
        assert_eq!(weight, 2.0);
    }
}
