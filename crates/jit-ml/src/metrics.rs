//! Classification quality metrics.
//!
//! Used by `jit-temporal` to compare predicted-future models against oracle
//! models (experiment E4) and by `threshold` to calibrate `δ_t`.

/// Confusion-matrix counts at a fixed decision threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies counts for `scores` vs `labels` at threshold `delta`
    /// (prediction positive iff score > delta, matching Definition II.3).
    pub fn at_threshold(scores: &[f64], labels: &[bool], delta: f64) -> Self {
        assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
        let mut c = Confusion::default();
        for (&s, &l) in scores.iter().zip(labels) {
            match (s > delta, l) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct decisions; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }

    /// TP / (TP + FP); 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// TP / (TP + FN); 0 when no positive labels.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Accuracy at threshold 0.5.
pub fn accuracy(scores: &[f64], labels: &[bool]) -> f64 {
    Confusion::at_threshold(scores, labels, 0.5).accuracy()
}

/// Area under the ROC curve by the rank statistic (handles score ties by
/// midranks). Returns 0.5 when either class is absent.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n_pos = labels.iter().filter(|l| **l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank scores ascending with midranks for ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("no NaN scores"));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let pos_rank_sum: f64 =
        ranks.iter().zip(labels).filter(|(_, l)| **l).map(|(r, _)| *r).sum();
    let u = pos_rank_sum - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Mean binary cross-entropy; probabilities are clipped away from {0, 1}.
pub fn log_loss(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(!scores.is_empty(), "log_loss of empty input");
    let eps = 1e-12;
    let total: f64 = scores
        .iter()
        .zip(labels)
        .map(|(&s, &l)| {
            let p = s.clamp(eps, 1.0 - eps);
            if l {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / scores.len() as f64
}

/// Brier score: mean squared error of the probability forecasts.
pub fn brier(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(!scores.is_empty(), "brier of empty input");
    let total: f64 = scores
        .iter()
        .zip(labels)
        .map(|(&s, &l)| {
            let y = if l { 1.0 } else { 0.0 };
            (s - y) * (s - y)
        })
        .sum();
    total / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let scores = [0.9, 0.8, 0.3, 0.2];
        let labels = [true, false, true, false];
        let c = Confusion::at_threshold(&scores, &labels, 0.5);
        assert_eq!(c, Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(c.accuracy(), 0.5);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
    }

    #[test]
    fn threshold_is_strict() {
        let c = Confusion::at_threshold(&[0.5], &[true], 0.5);
        // 0.5 > 0.5 is false => predicted negative => false negative.
        assert_eq!(c.fn_, 1);
        assert_eq!(c.tp, 0);
    }

    #[test]
    fn perfect_classifier_metrics() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [true, true, false, false];
        assert_eq!(accuracy(&scores, &labels), 1.0);
        assert_eq!(roc_auc(&scores, &labels), 1.0);
        assert!(log_loss(&scores, &labels) < 0.3);
        assert!(brier(&scores, &labels) < 0.05);
    }

    #[test]
    fn inverted_classifier_auc_zero() {
        let scores = [0.1, 0.2, 0.9, 0.8];
        let labels = [true, true, false, false];
        assert_eq!(roc_auc(&scores, &labels), 0.0);
    }

    #[test]
    fn random_scores_auc_half() {
        // Constant scores: all ties => AUC 0.5 by midranks.
        let scores = [0.5; 10];
        let labels: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_class_auc_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[0.1, 0.9], &[false, false]), 0.5);
    }

    #[test]
    fn auc_invariant_to_monotone_transform() {
        let scores = [0.1, 0.4, 0.35, 0.8];
        let labels = [false, true, false, true];
        let squashed: Vec<f64> = scores.iter().map(|s| s * s).collect();
        assert!(
            (roc_auc(&scores, &labels) - roc_auc(&squashed, &labels)).abs() < 1e-12
        );
    }

    #[test]
    fn log_loss_clips_extremes() {
        let v = log_loss(&[0.0, 1.0], &[true, false]);
        assert!(v.is_finite());
        assert!(v > 10.0, "confidently wrong should cost a lot");
    }

    #[test]
    fn brier_known_value() {
        // Forecast 0.8 on a positive: (0.8-1)^2 = 0.04.
        assert!((brier(&[0.8], &[true]) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion_metrics_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }
}
