//! Gradient-boosted trees (extension model family).
//!
//! The paper trains random forests; gradient boosting is implemented as the
//! natural "future work" model family and is exercised by the ablation
//! benches to show the candidates generator works across tree ensembles.
//! Boosting on the logistic loss: each round fits a small regression tree to
//! the negative gradient (residuals) and adds it with shrinkage.

use crate::dataset::Dataset;
use crate::model::{Model, ModelHints};
use jit_math::rng::Rng;

/// Hyperparameters for [`GradientBoosting::fit`].
#[derive(Clone, Debug)]
pub struct BoostingParams {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Depth of each regression tree.
    pub max_depth: usize,
    /// Minimum examples per leaf.
    pub min_leaf: usize,
}

impl Default for BoostingParams {
    fn default() -> Self {
        BoostingParams { n_rounds: 50, learning_rate: 0.2, max_depth: 3, min_leaf: 4 }
    }
}

#[derive(Clone, Debug)]
enum RNode {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A depth-limited least-squares regression tree on residuals.
#[derive(Clone, Debug)]
struct RegressionTree {
    nodes: Vec<RNode>,
}

impl RegressionTree {
    fn fit(
        rows: &[&[f64]],
        targets: &[f64],
        indices: &[usize],
        max_depth: usize,
        min_leaf: usize,
    ) -> Self {
        let mut nodes = Vec::new();
        Self::build(rows, targets, indices, max_depth, min_leaf, &mut nodes);
        RegressionTree { nodes }
    }

    fn mean(targets: &[f64], indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64
    }

    #[allow(clippy::needless_range_loop)] // feature-index loops mirror the math
    fn build(
        rows: &[&[f64]],
        targets: &[f64],
        indices: &[usize],
        depth: usize,
        min_leaf: usize,
        nodes: &mut Vec<RNode>,
    ) -> usize {
        let value = Self::mean(targets, indices);
        if depth == 0 || indices.len() < 2 * min_leaf {
            nodes.push(RNode::Leaf { value });
            return nodes.len() - 1;
        }
        // Best squared-error split.
        let d = rows[0].len();
        let total_sum: f64 = indices.iter().map(|&i| targets[i]).sum();
        let n = indices.len() as f64;
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let mut col: Vec<(f64, f64)> = Vec::with_capacity(indices.len());
        for f in 0..d {
            col.clear();
            for &i in indices {
                col.push((rows[i][f], targets[i]));
            }
            col.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN features"));
            let mut left_sum = 0.0;
            for w in 0..col.len() - 1 {
                left_sum += col[w].1;
                if col[w].0 == col[w + 1].0 {
                    continue;
                }
                let nl = (w + 1) as f64;
                let nr = n - nl;
                if (nl as usize) < min_leaf || (nr as usize) < min_leaf {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                // Variance-reduction gain (up to constants).
                let gain = left_sum * left_sum / nl + right_sum * right_sum / nr
                    - total_sum * total_sum / n;
                let threshold = 0.5 * (col[w].0 + col[w + 1].0);
                match best {
                    Some((_, _, bg)) if bg >= gain => {}
                    _ => best = Some((f, threshold, gain)),
                }
            }
        }
        let Some((feature, threshold, gain)) = best else {
            nodes.push(RNode::Leaf { value });
            return nodes.len() - 1;
        };
        if gain <= 1e-12 {
            nodes.push(RNode::Leaf { value });
            return nodes.len() - 1;
        }
        let (li, ri): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| rows[i][feature] <= threshold);
        let my = nodes.len();
        nodes.push(RNode::Leaf { value }); // placeholder
        let left = Self::build(rows, targets, &li, depth - 1, min_leaf, nodes);
        let right = Self::build(rows, targets, &ri, depth - 1, min_leaf, nodes);
        nodes[my] = RNode::Split { feature, threshold, left, right };
        my
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                RNode::Leaf { value } => return *value,
                RNode::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    fn split_thresholds(&self) -> Vec<(usize, f64)> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                RNode::Split { feature, threshold, .. } => Some((*feature, *threshold)),
                RNode::Leaf { .. } => None,
            })
            .collect()
    }
}

/// A fitted gradient-boosting classifier on the logistic loss.
#[derive(Clone, Debug)]
pub struct GradientBoosting {
    base_score: f64,
    trees: Vec<RegressionTree>,
    learning_rate: f64,
    dim: usize,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl GradientBoosting {
    /// Fits the ensemble. Example weights participate through a
    /// weight-proportional subsample per round (stochastic gradient
    /// boosting), so herded pseudo-samples train correctly.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, params: &BoostingParams, rng: &mut Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit boosting on empty dataset");
        let n = data.len();
        let rows: Vec<&[f64]> = data.rows().collect();
        let prior = data.positive_rate().clamp(1e-6, 1.0 - 1e-6);
        let base_score = (prior / (1.0 - prior)).ln();
        let mut raw = vec![base_score; n];
        let mut trees = Vec::with_capacity(params.n_rounds);
        let uniform_weights = data.weights().iter().all(|w| (*w - 1.0).abs() < 1e-12);

        for _ in 0..params.n_rounds {
            // Negative gradient of log-loss wrt raw score: y - p.
            let residuals: Vec<f64> = raw
                .iter()
                .zip(data.labels())
                .map(|(&r, &y)| (if y { 1.0 } else { 0.0 }) - sigmoid(r))
                .collect();
            let indices: Vec<usize> = if uniform_weights {
                (0..n).collect()
            } else {
                crate::dataset::weighted_draw_indices(data.weights(), n, rng)
            };
            let tree = RegressionTree::fit(
                &rows,
                &residuals,
                &indices,
                params.max_depth,
                params.min_leaf,
            );
            for (i, r) in raw.iter_mut().enumerate() {
                *r += params.learning_rate * tree.predict(rows[i]);
            }
            trees.push(tree);
        }
        GradientBoosting {
            base_score,
            trees,
            learning_rate: params.learning_rate,
            dim: data.dim(),
        }
    }

    /// Number of boosting rounds fitted.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Model for GradientBoosting {
    fn dim(&self) -> usize {
        self.dim
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        let mut raw = self.base_score;
        for t in &self.trees {
            raw += self.learning_rate * t.predict(x);
        }
        sigmoid(raw)
    }

    fn hints(&self) -> ModelHints {
        let mut per_feature = vec![Vec::new(); self.dim];
        for tree in &self.trees {
            for (f, t) in tree.split_thresholds() {
                per_feature[f].push(t);
            }
        }
        for ts in &mut per_feature {
            ts.sort_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
            ts.dedup();
        }
        ModelHints::Thresholds(per_feature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_moons(n: usize, rng: &mut Rng) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let upper = rng.bernoulli(0.5);
            let t = rng.uniform(0.0, std::f64::consts::PI);
            let (x, y) =
                if upper { (t.cos(), t.sin()) } else { (1.0 - t.cos(), 0.5 - t.sin()) };
            rows.push(vec![x + 0.05 * rng.normal(), y + 0.05 * rng.normal()]);
            labels.push(upper);
        }
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn boosting_learns_nonlinear_boundary() {
        let mut rng = Rng::seeded(1);
        let train = two_moons(400, &mut rng);
        let test = two_moons(200, &mut rng);
        let m = GradientBoosting::fit(&train, &BoostingParams::default(), &mut rng);
        let mut correct = 0;
        for (row, label, _) in test.iter() {
            if (m.predict_proba(row) > 0.5) == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.9, "boosting accuracy {acc} too low");
    }

    #[test]
    fn more_rounds_reduce_training_loss() {
        let mut rng = Rng::seeded(2);
        let d = two_moons(200, &mut rng);
        let small = GradientBoosting::fit(
            &d,
            &BoostingParams { n_rounds: 2, ..Default::default() },
            &mut Rng::seeded(3),
        );
        let large = GradientBoosting::fit(
            &d,
            &BoostingParams { n_rounds: 60, ..Default::default() },
            &mut Rng::seeded(3),
        );
        let loss = |m: &GradientBoosting| {
            let scores: Vec<f64> = d.rows().map(|r| m.predict_proba(r)).collect();
            crate::metrics::log_loss(&scores, d.labels())
        };
        assert!(loss(&large) < loss(&small));
    }

    #[test]
    fn zero_rounds_returns_prior() {
        let mut rng = Rng::seeded(4);
        let d = two_moons(50, &mut rng);
        let m = GradientBoosting::fit(
            &d,
            &BoostingParams { n_rounds: 0, ..Default::default() },
            &mut rng,
        );
        let p = m.predict_proba(&[0.0, 0.0]);
        assert!((p - d.positive_rate()).abs() < 1e-9);
    }

    #[test]
    fn hints_expose_thresholds() {
        let mut rng = Rng::seeded(5);
        let d = two_moons(100, &mut rng);
        let m = GradientBoosting::fit(&d, &BoostingParams::default(), &mut rng);
        match m.hints() {
            ModelHints::Thresholds(per_feature) => {
                assert_eq!(per_feature.len(), 2);
                assert!(per_feature.iter().any(|t| !t.is_empty()));
            }
            _ => panic!("boosting must expose threshold hints"),
        }
    }

    #[test]
    fn probabilities_bounded() {
        let mut rng = Rng::seeded(6);
        let d = two_moons(100, &mut rng);
        let m = GradientBoosting::fit(&d, &BoostingParams::default(), &mut rng);
        for (row, _, _) in d.iter() {
            let p = m.predict_proba(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
