//! Calibration of the decision threshold `δ_t`.
//!
//! The paper's models generator emits *pairs* `(M_t, δ_t)` — each future
//! model carries its own threshold (§II-B). In a lending setting the bank
//! tunes δ for a target precision ("approve only when we are this sure") or
//! for maximum F1; both policies are provided.

use crate::metrics::Confusion;

/// Threshold selection policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThresholdPolicy {
    /// Pick the threshold maximizing F1 on the calibration split.
    MaxF1,
    /// Pick the smallest threshold whose precision reaches the target;
    /// falls back to the highest-precision threshold when unreachable.
    TargetPrecision(f64),
    /// Use a fixed threshold (e.g. the conventional 0.5).
    Fixed(f64),
}

/// Calibrates `δ` on held-out `(scores, labels)` under the given policy.
///
/// Candidate thresholds are the midpoints between consecutive distinct
/// scores, plus the extremes, so every achievable confusion matrix is
/// examined.
///
/// # Panics
/// Panics when `scores` is empty (except for `Fixed`) or lengths mismatch.
pub fn calibrate(scores: &[f64], labels: &[bool], policy: ThresholdPolicy) -> f64 {
    if let ThresholdPolicy::Fixed(delta) = policy {
        return delta;
    }
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(!scores.is_empty(), "cannot calibrate on empty data");

    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN scores"));
    sorted.dedup();
    let mut candidates = Vec::with_capacity(sorted.len() + 1);
    candidates.push((sorted[0] - 1e-6).max(0.0));
    for w in sorted.windows(2) {
        candidates.push(0.5 * (w[0] + w[1]));
    }
    candidates.push(sorted[sorted.len() - 1]); // classify-all-negative extreme

    match policy {
        ThresholdPolicy::MaxF1 => {
            let mut best = (candidates[0], -1.0);
            for &c in &candidates {
                let f1 = Confusion::at_threshold(scores, labels, c).f1();
                if f1 > best.1 {
                    best = (c, f1);
                }
            }
            best.0
        }
        ThresholdPolicy::TargetPrecision(target) => {
            assert!((0.0..=1.0).contains(&target), "precision target out of range");
            // Smallest threshold that reaches the target keeps recall maximal.
            let mut reaching: Option<f64> = None;
            let mut best_precision = (candidates[0], -1.0);
            for &c in &candidates {
                let conf = Confusion::at_threshold(scores, labels, c);
                if conf.tp + conf.fp == 0 {
                    continue; // no positive predictions: precision undefined
                }
                let p = conf.precision();
                if p > best_precision.1 {
                    best_precision = (c, p);
                }
                if p >= target && reaching.is_none() {
                    reaching = Some(c);
                }
            }
            reaching.unwrap_or(best_precision.0)
        }
        ThresholdPolicy::Fixed(_) => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_passthrough() {
        assert_eq!(calibrate(&[], &[], ThresholdPolicy::Fixed(0.42)), 0.42);
    }

    #[test]
    fn max_f1_separable() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        let delta = calibrate(&scores, &labels, ThresholdPolicy::MaxF1);
        // Any threshold in (0.2, 0.8) achieves F1=1; check it lands there.
        assert!(delta > 0.2 && delta < 0.8, "delta {delta}");
        assert_eq!(Confusion::at_threshold(&scores, &labels, delta).f1(), 1.0);
    }

    #[test]
    fn target_precision_reachable() {
        // Overlapping scores; precision 1.0 requires threshold above 0.6.
        let scores = [0.3, 0.5, 0.6, 0.7, 0.9];
        let labels = [false, true, false, true, true];
        let delta = calibrate(&scores, &labels, ThresholdPolicy::TargetPrecision(1.0));
        let conf = Confusion::at_threshold(&scores, &labels, delta);
        assert_eq!(conf.precision(), 1.0);
        // Smallest such threshold keeps both true positives above it.
        assert_eq!(conf.tp, 2);
    }

    #[test]
    fn target_precision_unreachable_falls_back() {
        // Inverted labels: precision can never hit 0.99.
        let scores = [0.9, 0.8, 0.1];
        let labels = [false, false, true];
        let delta = calibrate(&scores, &labels, ThresholdPolicy::TargetPrecision(0.99));
        assert!(delta.is_finite());
    }

    #[test]
    fn max_f1_prefers_recall_when_all_positive() {
        let scores = [0.2, 0.6];
        let labels = [true, true];
        let delta = calibrate(&scores, &labels, ThresholdPolicy::MaxF1);
        // Predicting everything positive is optimal.
        let c = Confusion::at_threshold(&scores, &labels, delta);
        assert_eq!(c.fn_, 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_non_fixed_panics() {
        calibrate(&[], &[], ThresholdPolicy::MaxF1);
    }
}
