//! # jit-ml
//!
//! Machine-learning substrate for JustInTime.
//!
//! The paper's framework only requires a binary classifier
//! `M : R^d -> [0,1]` (Definition II.1) plus, for the candidates generator,
//! *model-dependent heuristics* describing how `M` can be nudged across its
//! decision boundary. The original system used H2O random forests; this
//! crate provides from-scratch implementations with exactly the surface the
//! rest of the workspace needs:
//!
//! * [`dataset::Dataset`] — weighted, labeled tabular data with splits and
//!   bootstraps.
//! * [`tree::DecisionTree`] — CART with Gini impurity, sample weights and
//!   feature subsampling.
//! * [`forest::RandomForest`] — bagged trees, the paper's model family.
//! * [`logistic::LogisticRegression`] — a linear baseline whose gradient
//!   feeds the gradient-guided move proposer.
//! * [`boosting::GradientBoosting`] — an extension model family
//!   (future-work surface; exercised by the ablation benches).
//! * [`metrics`] — accuracy, AUC, F1, log-loss, confusion counts.
//! * [`threshold`] — calibration of the per-model decision threshold `δ_t`.
//! * [`model::Model`] — the trait tying it together, including
//!   [`model::ModelHints`] consumed by the counterfactual search.

// Debt, tracked: training-time code leans on `partial_cmp(..).expect("no NaN")`
// invariants throughout. The serve path (jit-service, jit-db) holds the
// panic-freedom bar; sweeping training is future work.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![forbid(unsafe_code)]

pub mod boosting;
pub mod dataset;
pub mod forest;
pub mod logistic;
pub mod metrics;
pub mod model;
pub mod threshold;
pub mod tree;

pub use dataset::Dataset;
pub use forest::{RandomForest, RandomForestParams};
pub use logistic::{LogisticParams, LogisticRegression};
pub use model::{Model, ModelHints};
pub use tree::{DatasetPresort, DecisionTree, DecisionTreeParams};
