//! Random forests — the paper's model family (§III: "The models generator
//! trains a random forest classifier for each time span").
//!
//! Bagged CART trees with feature subsampling. The forest's
//! [`ModelHints::Thresholds`] aggregate every split threshold across all
//! trees, which is exactly the structure the candidates generator's
//! tree-heuristic exploits.

use crate::dataset::Dataset;
use crate::model::{Model, ModelHints};
use crate::tree::{DatasetPresort, DecisionTree, DecisionTreeParams};
use jit_math::rng::Rng;
use jit_runtime::{fork_streams, Runtime};

/// Hyperparameters for [`RandomForest::fit`].
#[derive(Clone, Debug)]
pub struct RandomForestParams {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum leaf weight per tree.
    pub min_leaf_weight: f64,
    /// Features examined per split; `None` = floor(sqrt(d)).max(1).
    pub feature_subsample: Option<usize>,
    /// Worker threads for tree training: `0` = one per core, `1` = serial.
    /// Results are bit-identical for every value (see `jit-runtime`).
    pub threads: usize,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            n_trees: 50,
            max_depth: 8,
            min_leaf_weight: 2.0,
            feature_subsample: None,
            threads: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    dim: usize,
}

impl RandomForest {
    /// Fits `params.n_trees` trees, each on a bootstrap resample of `data`.
    ///
    /// Weighted datasets resample weight-proportionally, which is how
    /// `jit-temporal` trains future models on herded pseudo-samples.
    ///
    /// Trees train in parallel on `params.threads` workers. Each tree's
    /// RNG stream is forked from `rng` *before* dispatch, so the fitted
    /// forest is bit-identical for every thread count (including serial).
    ///
    /// # Panics
    /// Panics on an empty dataset or zero trees.
    pub fn fit(data: &Dataset, params: &RandomForestParams, rng: &mut Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit forest on empty dataset");
        assert!(params.n_trees > 0, "forest needs at least one tree");
        let d = data.dim();
        let mtry = params
            .feature_subsample
            .unwrap_or_else(|| ((d as f64).sqrt().floor() as usize).max(1));
        let tree_params = DecisionTreeParams {
            max_depth: params.max_depth,
            min_leaf_weight: params.min_leaf_weight,
            feature_subsample: Some(mtry.min(d)),
        };
        let streams = fork_streams(rng, params.n_trees);
        let runtime = Runtime::new(params.threads);
        // Uniform (unweighted) bootstraps share one dataset-level presort
        // across all trees; each tree derives its root sort order from it
        // instead of re-sorting every feature. The uniformity predicate
        // and the per-draw RNG consumption replicate
        // `Dataset::bootstrap`'s uniform branch exactly, so the fitted
        // forest is bit-identical to the view-based path.
        let uniform = data.weights().iter().all(|w| (*w - 1.0).abs() < 1e-12);
        let trees = if uniform {
            let n = data.len();
            let presort = DatasetPresort::new(data);
            runtime.parallel_map(params.n_trees, |i| {
                let mut tree_rng = streams[i].clone();
                let indices: Vec<u32> =
                    (0..n).map(|_| tree_rng.below(n) as u32).collect();
                DecisionTree::fit_bootstrap(
                    &presort,
                    &indices,
                    &tree_params,
                    &mut tree_rng,
                )
            })
        } else {
            runtime.parallel_map(params.n_trees, |i| {
                let mut tree_rng = streams[i].clone();
                let sample = data.bootstrap(&mut tree_rng);
                DecisionTree::fit(&sample, &tree_params, &mut tree_rng)
            })
        };
        RandomForest { trees, dim: d }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Borrow of the fitted trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Split thresholds along each tree's decision path for `x`, merged and
    /// deduplicated per feature. This is the "locally relevant" threshold
    /// set the candidates generator perturbs first.
    pub fn path_thresholds(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut per_feature = vec![Vec::new(); self.dim];
        for tree in &self.trees {
            for (f, t) in tree.path_thresholds(x) {
                per_feature[f].push(t);
            }
        }
        for ts in &mut per_feature {
            ts.sort_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
            ts.dedup();
        }
        per_feature
    }
}

impl Model for RandomForest {
    fn dim(&self) -> usize {
        self.dim
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        let sum: f64 = self.trees.iter().map(|t| t.predict_proba_unchecked(x)).sum();
        sum / self.trees.len() as f64
    }

    fn hints(&self) -> ModelHints {
        let mut per_feature = vec![Vec::new(); self.dim];
        for tree in &self.trees {
            for (f, t) in tree.split_thresholds() {
                per_feature[f].push(t);
            }
        }
        for ts in &mut per_feature {
            ts.sort_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
            ts.dedup();
        }
        ModelHints::Thresholds(per_feature)
    }

    fn fingerprint(&self) -> Option<jit_math::Digest> {
        // Every prediction and hint is a pure function of the tree list
        // (in order) and the dimension; digest exactly those.
        let mut w = jit_math::DigestWriter::new("jit-ml/forest");
        w.write_usize(self.dim);
        w.write_usize(self.trees.len());
        for tree in &self.trees {
            tree.digest_into(&mut w);
        }
        Some(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data(n: usize, rng: &mut Rng) -> Dataset {
        // Positive inside the unit disc, negative outside radius 2 ring.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let inside = rng.bernoulli(0.5);
            let (r_lo, r_hi) = if inside { (0.0, 1.0) } else { (1.5, 2.5) };
            let r = rng.uniform(r_lo, r_hi);
            let th = rng.uniform(0.0, std::f64::consts::TAU);
            rows.push(vec![r * th.cos(), r * th.sin()]);
            labels.push(inside);
        }
        Dataset::from_rows(rows, labels)
    }

    #[test]
    fn forest_beats_chance_on_nonlinear_data() {
        let mut rng = Rng::seeded(1);
        let train = ring_data(400, &mut rng);
        let test = ring_data(200, &mut rng);
        let params = RandomForestParams { n_trees: 30, ..Default::default() };
        let f = RandomForest::fit(&train, &params, &mut rng);
        let mut correct = 0;
        for (row, label, _) in test.iter() {
            if (f.predict_proba(row) > 0.5) == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.9, "forest accuracy {acc} too low");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let mut rng = Rng::seeded(2);
        let d = ring_data(100, &mut rng);
        let f = RandomForest::fit(&d, &RandomForestParams::default(), &mut rng);
        for (row, _, _) in d.iter() {
            let p = f.predict_proba(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng_data = Rng::seeded(3);
        let d = ring_data(100, &mut rng_data);
        let params = RandomForestParams { n_trees: 10, ..Default::default() };
        let f1 = RandomForest::fit(&d, &params, &mut Rng::seeded(4));
        let f2 = RandomForest::fit(&d, &params, &mut Rng::seeded(4));
        for (row, _, _) in d.iter() {
            assert_eq!(f1.predict_proba(row), f2.predict_proba(row));
        }
    }

    #[test]
    fn hints_collect_all_tree_thresholds() {
        let mut rng = Rng::seeded(5);
        let d = ring_data(100, &mut rng);
        let params = RandomForestParams { n_trees: 5, ..Default::default() };
        let f = RandomForest::fit(&d, &params, &mut rng);
        let total_splits: usize =
            f.trees().iter().map(|t| t.split_thresholds().len()).sum();
        match f.hints() {
            ModelHints::Thresholds(per_feature) => {
                let n: usize = per_feature.iter().map(Vec::len).sum();
                assert!(n > 0);
                assert!(n <= total_splits, "dedup can only shrink");
                for ts in per_feature {
                    for w in ts.windows(2) {
                        assert!(w[0] < w[1]);
                    }
                }
            }
            _ => panic!("forest must expose threshold hints"),
        }
    }

    #[test]
    fn path_thresholds_are_relevant_subset() {
        let mut rng = Rng::seeded(6);
        let d = ring_data(100, &mut rng);
        let f = RandomForest::fit(&d, &RandomForestParams::default(), &mut rng);
        let x = [0.1, 0.2];
        let path = f.path_thresholds(&x);
        let ModelHints::Thresholds(all) = f.hints() else {
            panic!("expected thresholds")
        };
        for (feat, ts) in path.iter().enumerate() {
            for t in ts {
                assert!(
                    all[feat].iter().any(|a| (a - t).abs() < 1e-12),
                    "path threshold missing from global hint set"
                );
            }
        }
    }

    #[test]
    fn uniform_presort_path_matches_view_path() {
        use crate::tree::DecisionTreeParams;
        use jit_runtime::fork_streams;
        let mut rng_data = Rng::seeded(11);
        let d = ring_data(120, &mut rng_data);
        let params =
            RandomForestParams { n_trees: 8, threads: 1, ..Default::default() };
        let forest = RandomForest::fit(&d, &params, &mut Rng::seeded(42));
        // Reference: the pre-presort implementation — per-tree bootstrap
        // views with per-tree feature sorts.
        let mtry = ((d.dim() as f64).sqrt().floor() as usize).max(1);
        let tree_params = DecisionTreeParams {
            max_depth: params.max_depth,
            min_leaf_weight: params.min_leaf_weight,
            feature_subsample: Some(mtry),
        };
        let mut rng = Rng::seeded(42);
        let streams = fork_streams(&mut rng, params.n_trees);
        let reference: Vec<DecisionTree> = (0..params.n_trees)
            .map(|i| {
                let mut tree_rng = streams[i].clone();
                let sample = d.bootstrap(&mut tree_rng);
                DecisionTree::fit(&sample, &tree_params, &mut tree_rng)
            })
            .collect();
        for (a, b) in forest.trees().iter().zip(&reference) {
            assert_eq!(a.split_thresholds(), b.split_thresholds());
        }
        for (row, _, _) in d.iter() {
            let ref_pred: f64 =
                reference.iter().map(|t| t.predict_proba(row)).sum::<f64>()
                    / reference.len() as f64;
            assert_eq!(forest.predict_proba(row), ref_pred);
        }
    }

    #[test]
    fn n_trees_respected() {
        let mut rng = Rng::seeded(7);
        let d = ring_data(50, &mut rng);
        let params = RandomForestParams { n_trees: 7, ..Default::default() };
        let f = RandomForest::fit(&d, &params, &mut rng);
        assert_eq!(f.n_trees(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let mut rng = Rng::seeded(8);
        let d = ring_data(10, &mut rng);
        let params = RandomForestParams { n_trees: 0, ..Default::default() };
        RandomForest::fit(&d, &params, &mut rng);
    }
}
