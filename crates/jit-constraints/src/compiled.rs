//! Compiled-constraint caching for batch serving.
//!
//! The admin's *domain constraints* (schema bounds, §II-B) are identical
//! for every user, yet the serial pipeline used to re-clone, re-merge and
//! re-bind them per user per time point. [`CompiledDomain`] compiles the
//! domain set once per time point `t = 0..=T` and lets each user overlay
//! their personal preference set on top — the overlay produces a
//! [`BoundConstraint`] *structurally identical* to binding the merged
//! set, so batch serving stays bit-identical with serial sessions.

use crate::ast::{BoundConstraint, UnknownFeature};
use crate::set::ConstraintSet;
use jit_data::FeatureSchema;

/// Per-time-point compilations of a (domain) constraint set, shared
/// across all users of a trained system.
#[derive(Clone, Debug)]
pub struct CompiledDomain {
    per_time: Vec<BoundConstraint>,
    /// Content digests of `per_time`, computed once at compile time so
    /// the serving fingerprints of users with no preference overlays
    /// need no re-walk of the constraint trees.
    digests: Vec<jit_math::Digest>,
}

impl CompiledDomain {
    /// Compiles `set` against `schema` for every `t = 0..=horizon`.
    ///
    /// # Errors
    /// Returns the offending name when the set references a feature the
    /// schema does not define.
    pub fn compile(
        set: &ConstraintSet,
        schema: &FeatureSchema,
        horizon: usize,
    ) -> Result<Self, UnknownFeature> {
        let per_time: Vec<BoundConstraint> = (0..=horizon)
            .map(|t| set.compile_at(t, schema))
            .collect::<Result<Vec<_>, _>>()?;
        let digests = per_time.iter().map(BoundConstraint::content_digest).collect();
        Ok(CompiledDomain { per_time, digests })
    }

    /// The horizon `T` this cache was compiled for.
    pub fn horizon(&self) -> usize {
        self.per_time.len().saturating_sub(1)
    }

    /// The cached compilation for time point `t`.
    ///
    /// # Panics
    /// Panics when `t` exceeds the compiled horizon.
    pub fn at(&self, t: usize) -> &BoundConstraint {
        &self.per_time[t]
    }

    /// The content digest of the time-`t` compilation, equal to
    /// `self.at(t).content_digest()` but cached at compile time.
    ///
    /// # Panics
    /// Panics when `t` exceeds the compiled horizon.
    pub fn digest_at(&self, t: usize) -> jit_math::Digest {
        self.digests[t]
    }

    /// The time-`t` conjunction of the cached domain set with a user's
    /// preference set — equivalent to merging the two [`ConstraintSet`]s
    /// and compiling the result, without re-binding the domain part.
    ///
    /// # Errors
    /// Returns the offending name when a user constraint references an
    /// unknown feature.
    pub fn overlay(
        &self,
        t: usize,
        user: &ConstraintSet,
        schema: &FeatureSchema,
    ) -> Result<BoundConstraint, UnknownFeature> {
        if user.is_empty() {
            return Ok(self.at(t).clone());
        }
        let user_bound = user.compile_at(t, schema)?;
        Ok(self.at(t).conjoin(&user_bound))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::EvalContext;
    use crate::builder::*;
    use crate::set::domain_constraints;

    const X: [f64; 6] = [29.0, 0.0, 46_000.0, 2_300.0, 4.0, 24_000.0];

    fn eval(b: &BoundConstraint, candidate: &[f64]) -> bool {
        b.eval(&EvalContext { candidate, original: &X, confidence: 0.5 })
    }

    #[test]
    fn overlay_matches_merged_compilation() {
        let schema = FeatureSchema::lending_club();
        let (domain, _) = domain_constraints(&schema);
        let compiled = CompiledDomain::compile(&domain, &schema, 3).unwrap();
        assert_eq!(compiled.horizon(), 3);

        let mut user = ConstraintSet::new();
        user.add(feature("income").le(45_000.0));
        user.add_at(2, feature("debt").le(1_000.0));

        let mut merged = domain.clone();
        merged.merge(&user);
        for t in 0..=3 {
            let via_overlay = compiled.overlay(t, &user, &schema).unwrap();
            let via_merge = merged.compile_at(t, &schema).unwrap();
            // Same structure, hence same evaluation on probes straddling
            // each bound.
            assert_eq!(format!("{via_overlay:?}"), format!("{via_merge:?}"));
            let mut probes = vec![X.to_vec()];
            let mut rich = X.to_vec();
            rich[2] = 46_000.0;
            probes.push(rich);
            let mut indebted = X.to_vec();
            indebted[3] = 1_500.0;
            probes.push(indebted);
            for p in &probes {
                assert_eq!(eval(&via_overlay, p), eval(&via_merge, p), "t={t}");
            }
        }
    }

    #[test]
    fn cached_digests_match_recomputation_and_overlays() {
        let schema = FeatureSchema::lending_club();
        let (domain, _) = domain_constraints(&schema);
        let compiled = CompiledDomain::compile(&domain, &schema, 2).unwrap();
        for t in 0..=2 {
            assert_eq!(compiled.digest_at(t), compiled.at(t).content_digest());
        }
        // An overlay changes the digest; an empty overlay does not.
        let mut user = ConstraintSet::new();
        user.add(feature("income").le(45_000.0));
        let overlaid = compiled.overlay(1, &user, &schema).unwrap();
        assert_ne!(overlaid.content_digest(), compiled.digest_at(1));
        let empty = compiled.overlay(1, &ConstraintSet::new(), &schema).unwrap();
        assert_eq!(empty.content_digest(), compiled.digest_at(1));
    }

    #[test]
    fn empty_user_overlay_is_domain_only() {
        let schema = FeatureSchema::lending_club();
        let (domain, _) = domain_constraints(&schema);
        let compiled = CompiledDomain::compile(&domain, &schema, 1).unwrap();
        let b = compiled.overlay(0, &ConstraintSet::new(), &schema).unwrap();
        assert!(eval(&b, &X));
        let mut out_of_bounds = X.to_vec();
        out_of_bounds[0] = 150.0;
        assert!(!eval(&b, &out_of_bounds));
    }

    #[test]
    fn overlay_reports_unknown_user_feature() {
        let schema = FeatureSchema::lending_club();
        let (domain, _) = domain_constraints(&schema);
        let compiled = CompiledDomain::compile(&domain, &schema, 1).unwrap();
        let mut user = ConstraintSet::new();
        user.add(feature("fico").ge(700.0));
        let err = compiled.overlay(0, &user, &schema).unwrap_err();
        assert_eq!(err, UnknownFeature("fico".to_string()));
    }

    #[test]
    fn scoped_user_constraints_only_bind_in_scope() {
        let schema = FeatureSchema::lending_club();
        let (domain, _) = domain_constraints(&schema);
        let compiled = CompiledDomain::compile(&domain, &schema, 2).unwrap();
        let mut user = ConstraintSet::new();
        user.add_at(1, feature("loan_amount").le(10_000.0));
        // X has loan 24000: fails only at t=1.
        for (t, expect) in [(0, true), (1, false), (2, true)] {
            let b = compiled.overlay(t, &user, &schema).unwrap();
            assert_eq!(eval(&b, &X), expect, "t={t}");
        }
    }
}
