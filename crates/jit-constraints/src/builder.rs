//! Fluent programmatic construction of constraints.
//!
//! The demo UI's *Personal Preferences* screen produces exactly these
//! shapes: "income can rise at most 10%", "don't touch my address",
//! "at most two features changed". Example:
//!
//! ```
//! use jit_constraints::builder::*;
//!
//! let prefs = feature("income")
//!     .le(55_000.0)
//!     .and(gap().le(2.0))
//!     .and(feature("debt").ge(0.0).or(feature("household").eq(1.0)));
//! ```

use crate::ast::{CmpOp, Constraint, LinExpr};

/// Starts a linear expression from a feature name.
pub fn feature(name: &str) -> Expr {
    Expr(LinExpr::feature(name))
}

/// Starts a linear expression from a constant.
pub fn constant(v: f64) -> Expr {
    Expr(LinExpr::constant(v))
}

/// The `diff` special (l2 distance from the input).
pub fn diff() -> Expr {
    Expr(LinExpr::diff())
}

/// The `gap` special (number of modified attributes).
pub fn gap() -> Expr {
    Expr(LinExpr::gap())
}

/// The `confidence` special (model score).
pub fn confidence() -> Expr {
    Expr(LinExpr::confidence())
}

/// A linear expression under construction.
#[derive(Clone, Debug)]
pub struct Expr(LinExpr);

impl Expr {
    /// `self + other`.
    pub fn plus(self, other: impl IntoExpr) -> Expr {
        Expr(self.0.plus(other.into_expr().0))
    }

    /// `self - other`.
    pub fn minus(self, other: impl IntoExpr) -> Expr {
        Expr(self.0.minus(other.into_expr().0))
    }

    /// `c * self`.
    pub fn times(self, c: f64) -> Expr {
        Expr(self.0.times(c))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: impl IntoExpr) -> Constraint {
        self.cmp(CmpOp::Le, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: impl IntoExpr) -> Constraint {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: impl IntoExpr) -> Constraint {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: impl IntoExpr) -> Constraint {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self = rhs` (within tolerance).
    pub fn eq(self, rhs: impl IntoExpr) -> Constraint {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: impl IntoExpr) -> Constraint {
        self.cmp(CmpOp::Ne, rhs)
    }

    /// `lo <= self <= hi`.
    pub fn between(self, lo: f64, hi: f64) -> Constraint {
        self.clone().ge(lo).and(self.le(hi))
    }

    fn cmp(self, op: CmpOp, rhs: impl IntoExpr) -> Constraint {
        Constraint::Cmp { lhs: self.0, op, rhs: rhs.into_expr().0 }
    }
}

/// Anything convertible to an [`Expr`] — expressions themselves and bare
/// numbers.
pub trait IntoExpr {
    /// Performs the conversion.
    fn into_expr(self) -> Expr;
}

impl IntoExpr for Expr {
    fn into_expr(self) -> Expr {
        self
    }
}

impl IntoExpr for f64 {
    fn into_expr(self) -> Expr {
        constant(self)
    }
}

impl IntoExpr for i64 {
    fn into_expr(self) -> Expr {
        constant(self as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::EvalContext;
    use jit_data::FeatureSchema;

    const X: [f64; 6] = [29.0, 0.0, 46_000.0, 2_300.0, 4.0, 24_000.0];

    fn check(c: &Constraint, candidate: &[f64], conf: f64) -> bool {
        c.bind(&FeatureSchema::lending_club()).unwrap().eval(&EvalContext {
            candidate,
            original: &X,
            confidence: conf,
        })
    }

    #[test]
    fn builder_simple() {
        let c = feature("income").le(50_000.0);
        assert!(check(&c, &X, 0.5));
        let c = feature("income").gt(50_000.0);
        assert!(!check(&c, &X, 0.5));
    }

    #[test]
    fn builder_arithmetic() {
        // income - 10*debt >= 23000
        let c = feature("income").minus(feature("debt").times(10.0)).ge(23_000.0);
        assert!(check(&c, &X, 0.5));
    }

    #[test]
    fn builder_between() {
        let c = feature("age").between(25.0, 35.0);
        assert!(check(&c, &X, 0.5));
        let c = feature("age").between(30.0, 35.0);
        assert!(!check(&c, &X, 0.5));
    }

    #[test]
    fn builder_specials_and_logic() {
        let mut cand = X;
        cand[2] = 47_000.0;
        let c = gap()
            .le(1.0)
            .and(diff().le(1_500.0))
            .and(confidence().ge(0.6).or(feature("household").eq(0.0)));
        assert!(check(&c, &cand, 0.3)); // confidence low but household = 0
        cand[1] = 1.0;
        assert!(!check(&c, &cand, 0.3)); // gap now 2
    }

    #[test]
    fn builder_matches_parser() {
        let built = feature("income")
            .minus(feature("debt").times(2.0))
            .ge(1_000.0)
            .and(gap().le(2.0));
        let parsed =
            crate::parse::parse_constraint("income - 2 * debt >= 1000 and gap <= 2")
                .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn int_coercion() {
        let c = feature("age").ge(29);
        assert!(check(&c, &X, 0.5));
    }

    #[test]
    fn expr_plus_combines() {
        // income + 12*debt <= 80000: 46000 + 27600 = 73600.
        let c = feature("income").plus(feature("debt").times(12.0)).le(80_000.0);
        assert!(check(&c, &X, 0.5));
    }
}
