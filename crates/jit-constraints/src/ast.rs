//! Constraint abstract syntax and evaluation.
//!
//! A constraint is a boolean combination of comparisons between *linear
//! expressions*. Linear expressions range over feature names, the three
//! special properties (`diff`, `gap`, `confidence`) and constants. Name
//! resolution is deferred: a [`Constraint`] carries names and becomes a
//! [`BoundConstraint`] (carrying vector indices) once bound to a schema.

use jit_data::FeatureSchema;
use jit_math::distance::{l0_gap, l2_diff};
use std::collections::BTreeMap;
use std::fmt;

/// The paper's special candidate properties (§II-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Special {
    /// l2 distance of the candidate from the (time-updated) input.
    Diff,
    /// l0 distance: number of modified attributes.
    Gap,
    /// The model score `M(x')` of the candidate.
    Confidence,
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Special::Diff => write!(f, "diff"),
            Special::Gap => write!(f, "gap"),
            Special::Confidence => write!(f, "confidence"),
        }
    }
}

/// A variable reference inside a linear expression.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum VarRef {
    /// A feature, by name (unbound) — resolved against a schema.
    Feature(String),
    /// One of the special properties.
    Special(Special),
}

impl fmt::Display for VarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarRef::Feature(name) => write!(f, "{name}"),
            VarRef::Special(s) => write!(f, "{s}"),
        }
    }
}

/// A linear expression `Σ coeff·var + constant`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinExpr {
    /// Coefficients per variable; kept sorted by variable for canonical
    /// printing. Zero coefficients are pruned.
    coeffs: BTreeMap<VarRef, f64>,
    constant: f64,
}

impl LinExpr {
    /// The constant expression `c`.
    pub fn constant(c: f64) -> Self {
        LinExpr { coeffs: BTreeMap::new(), constant: c }
    }

    /// The expression `1·var`.
    pub fn var(v: VarRef) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, 1.0);
        LinExpr { coeffs, constant: 0.0 }
    }

    /// A single feature by name.
    pub fn feature(name: &str) -> Self {
        LinExpr::var(VarRef::Feature(name.to_string()))
    }

    /// The `diff` special.
    pub fn diff() -> Self {
        LinExpr::var(VarRef::Special(Special::Diff))
    }

    /// The `gap` special.
    pub fn gap() -> Self {
        LinExpr::var(VarRef::Special(Special::Gap))
    }

    /// The `confidence` special.
    pub fn confidence() -> Self {
        LinExpr::var(VarRef::Special(Special::Confidence))
    }

    /// Adds another linear expression.
    pub fn plus(mut self, other: LinExpr) -> Self {
        for (v, c) in other.coeffs {
            *self.coeffs.entry(v).or_insert(0.0) += c;
        }
        self.constant += other.constant;
        self.prune();
        self
    }

    /// Subtracts another linear expression.
    pub fn minus(self, other: LinExpr) -> Self {
        self.plus(other.times(-1.0))
    }

    /// Scales by a constant.
    pub fn times(mut self, s: f64) -> Self {
        for c in self.coeffs.values_mut() {
            *c *= s;
        }
        self.constant *= s;
        self.prune();
        self
    }

    /// Adds a constant offset.
    pub fn offset(mut self, c: f64) -> Self {
        self.constant += c;
        self
    }

    fn prune(&mut self) {
        self.coeffs.retain(|_, c| *c != 0.0);
    }

    /// The constant part.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Rebuilds an expression from raw `(var, coeff)` terms and a
    /// constant — the exact inverse of [`LinExpr::terms`] /
    /// [`LinExpr::constant_part`].
    ///
    /// Coefficients are inserted verbatim (no accumulation arithmetic),
    /// so a round trip through `terms`/`from_terms` is **bit-identical**:
    /// serialized constraint sets deserialize to structurally equal
    /// expressions with equal content digests. Zero coefficients are
    /// pruned, as everywhere else.
    pub fn from_terms(
        terms: impl IntoIterator<Item = (VarRef, f64)>,
        constant: f64,
    ) -> Self {
        let mut coeffs = BTreeMap::new();
        for (v, c) in terms {
            coeffs.insert(v, c);
        }
        let mut e = LinExpr { coeffs, constant };
        e.prune();
        e
    }

    /// Iterates `(var, coeff)` pairs in canonical order.
    pub fn terms(&self) -> impl Iterator<Item = (&VarRef, f64)> + '_ {
        self.coeffs.iter().map(|(v, c)| (v, *c))
    }

    /// Names of features mentioned in the expression.
    pub fn feature_names(&self) -> Vec<&str> {
        self.coeffs
            .keys()
            .filter_map(|v| match v {
                VarRef::Feature(name) => Some(name.as_str()),
                VarRef::Special(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                if c == &1.0 {
                    write!(f, "{v}")?;
                } else if c == &-1.0 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c} * {v}")?;
                }
                first = false;
            } else if *c >= 0.0 {
                if c == &1.0 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c} * {v}")?;
                }
            } else if c == &-1.0 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {} * {v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0.0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0.0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `=` (within tolerance)
    Eq,
    /// `!=`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// Tolerance for `=` / `!=` comparisons between floats.
pub const EQ_TOLERANCE: f64 = 1e-9;

impl CmpOp {
    /// Applies the comparison to evaluated sides.
    pub fn apply(&self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Le => lhs <= rhs + EQ_TOLERANCE,
            CmpOp::Lt => lhs < rhs - EQ_TOLERANCE,
            CmpOp::Ge => lhs >= rhs - EQ_TOLERANCE,
            CmpOp::Gt => lhs > rhs + EQ_TOLERANCE,
            CmpOp::Eq => (lhs - rhs).abs() <= EQ_TOLERANCE,
            CmpOp::Ne => (lhs - rhs).abs() > EQ_TOLERANCE,
        }
    }
}

/// A boolean combination of linear comparisons (paper §II-A: linear
/// inequalities joined by conjunctions and disjunctions).
#[derive(Clone, Debug, PartialEq)]
pub enum Constraint {
    /// Always satisfied.
    True,
    /// `lhs op rhs`.
    Cmp {
        /// Left-hand linear expression.
        lhs: LinExpr,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand linear expression.
        rhs: LinExpr,
    },
    /// Conjunction.
    And(Vec<Constraint>),
    /// Disjunction.
    Or(Vec<Constraint>),
    /// Negation.
    Not(Box<Constraint>),
}

impl Constraint {
    /// Conjunction of `self` and `other` (flattens nested Ands).
    pub fn and(self, other: Constraint) -> Constraint {
        match (self, other) {
            (Constraint::True, o) => o,
            (s, Constraint::True) => s,
            (Constraint::And(mut a), Constraint::And(b)) => {
                a.extend(b);
                Constraint::And(a)
            }
            (Constraint::And(mut a), o) => {
                a.push(o);
                Constraint::And(a)
            }
            (s, Constraint::And(mut b)) => {
                b.insert(0, s);
                Constraint::And(b)
            }
            (s, o) => Constraint::And(vec![s, o]),
        }
    }

    /// Disjunction of `self` and `other` (flattens nested Ors).
    pub fn or(self, other: Constraint) -> Constraint {
        match (self, other) {
            (Constraint::Or(mut a), Constraint::Or(b)) => {
                a.extend(b);
                Constraint::Or(a)
            }
            (Constraint::Or(mut a), o) => {
                a.push(o);
                Constraint::Or(a)
            }
            (s, Constraint::Or(mut b)) => {
                b.insert(0, s);
                Constraint::Or(b)
            }
            (s, o) => Constraint::Or(vec![s, o]),
        }
    }

    /// Logical negation.
    pub fn negate(self) -> Constraint {
        Constraint::Not(Box::new(self))
    }

    /// All feature names mentioned anywhere in the constraint.
    pub fn feature_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_names(&self, out: &mut Vec<String>) {
        match self {
            Constraint::True => {}
            Constraint::Cmp { lhs, rhs, .. } => {
                out.extend(lhs.feature_names().iter().map(|s| s.to_string()));
                out.extend(rhs.feature_names().iter().map(|s| s.to_string()));
            }
            Constraint::And(cs) | Constraint::Or(cs) => {
                for c in cs {
                    c.collect_names(out);
                }
            }
            Constraint::Not(c) => c.collect_names(out),
        }
    }

    /// Resolves feature names to schema indices, producing an evaluatable
    /// [`BoundConstraint`].
    ///
    /// # Errors
    /// Returns the offending name when it is not in the schema.
    pub fn bind(
        &self,
        schema: &FeatureSchema,
    ) -> Result<BoundConstraint, UnknownFeature> {
        Ok(BoundConstraint::from_node(self.bind_node(schema)?))
    }

    fn bind_node(&self, schema: &FeatureSchema) -> Result<BoundNode, UnknownFeature> {
        Ok(match self {
            Constraint::True => BoundNode::True,
            Constraint::Cmp { lhs, op, rhs } => BoundNode::Cmp {
                lhs: bind_expr(lhs, schema)?,
                op: *op,
                rhs: bind_expr(rhs, schema)?,
            },
            Constraint::And(cs) => BoundNode::And(
                cs.iter().map(|c| c.bind_node(schema)).collect::<Result<_, _>>()?,
            ),
            Constraint::Or(cs) => BoundNode::Or(
                cs.iter().map(|c| c.bind_node(schema)).collect::<Result<_, _>>()?,
            ),
            Constraint::Not(c) => BoundNode::Not(Box::new(c.bind_node(schema)?)),
        })
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::True => write!(f, "true"),
            Constraint::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Constraint::And(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| format!("({c})")).collect();
                write!(f, "{}", parts.join(" and "))
            }
            Constraint::Or(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| format!("({c})")).collect();
                write!(f, "{}", parts.join(" or "))
            }
            Constraint::Not(c) => write!(f, "not ({c})"),
        }
    }
}

/// Error: a constraint referenced a feature the schema does not define.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownFeature(pub String);

impl fmt::Display for UnknownFeature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown feature {:?}", self.0)
    }
}

impl std::error::Error for UnknownFeature {}

/// A bound variable: features resolved to indices.
#[derive(Clone, Debug)]
enum BoundVar {
    Feature(usize),
    Special(Special),
}

#[derive(Clone, Debug)]
struct BoundExpr {
    terms: Vec<(BoundVar, f64)>,
    constant: f64,
}

fn bind_expr(e: &LinExpr, schema: &FeatureSchema) -> Result<BoundExpr, UnknownFeature> {
    let mut terms = Vec::new();
    for (v, c) in e.terms() {
        let bv = match v {
            VarRef::Feature(name) => BoundVar::Feature(
                schema.index_of(name).ok_or_else(|| UnknownFeature(name.clone()))?,
            ),
            VarRef::Special(s) => BoundVar::Special(*s),
        };
        terms.push((bv, c));
    }
    Ok(BoundExpr { terms, constant: e.constant_part() })
}

#[derive(Clone, Debug)]
enum BoundNode {
    True,
    Cmp { lhs: BoundExpr, op: CmpOp, rhs: BoundExpr },
    And(Vec<BoundNode>),
    Or(Vec<BoundNode>),
    Not(Box<BoundNode>),
}

/// The evaluation context for a candidate modification at one time point.
#[derive(Clone, Copy, Debug)]
pub struct EvalContext<'a> {
    /// The candidate profile `x'`.
    pub candidate: &'a [f64],
    /// The (time-updated) original profile `x_t` that `diff`/`gap` are
    /// measured against.
    pub original: &'a [f64],
    /// The model score `M_t(x')`.
    pub confidence: f64,
}

impl<'a> EvalContext<'a> {
    fn special(&self, s: Special) -> f64 {
        match s {
            Special::Diff => l2_diff(self.candidate, self.original),
            Special::Gap => l0_gap(self.candidate, self.original) as f64,
            Special::Confidence => self.confidence,
        }
    }
}

/// One specialized conjunct `coeff·x[feature] + offset  OP  rhs`.
///
/// Schema-derived domain bounds (and most user preference caps) are
/// conjunctions of exactly this shape; evaluating them through a dense
/// table instead of the general [`BoundNode`] tree keeps the candidates
/// search — which checks feasibility thousands of times per session —
/// out of pointer-chasing territory.
#[derive(Clone, Copy, Debug)]
struct FastCmp {
    feature: u32,
    op: CmpOp,
    coeff: f64,
    offset: f64,
    rhs: f64,
}

impl FastCmp {
    /// Specializes a top-level conjunct when it has the simple shape.
    fn of(node: &BoundNode) -> Option<FastCmp> {
        let BoundNode::Cmp { lhs, op, rhs } = node else { return None };
        if !rhs.terms.is_empty() {
            return None;
        }
        let [(BoundVar::Feature(i), coeff)] = &lhs.terms[..] else { return None };
        Some(FastCmp {
            feature: u32::try_from(*i).ok()?,
            op: *op,
            coeff: *coeff,
            offset: lhs.constant,
            rhs: rhs.constant,
        })
    }

    fn eval(&self, candidate: &[f64]) -> bool {
        // `offset + coeff·x` matches `eval_expr`'s accumulation order
        // exactly (one product, one addition — bit-identical).
        let lhs = self.offset + self.coeff * candidate[self.feature as usize];
        self.op.apply(lhs, self.rhs)
    }
}

/// A schema-bound, evaluatable constraint.
#[derive(Clone, Debug)]
pub struct BoundConstraint {
    node: BoundNode,
    /// Specialized prefix of top-level `And` conjuncts (see [`FastCmp`]);
    /// `fast_resume` is the index of the first conjunct the table does
    /// not cover. Empty when the root is not a conjunction.
    fast: Vec<FastCmp>,
    fast_resume: usize,
}

impl BoundConstraint {
    fn from_node(node: BoundNode) -> Self {
        let (fast, fast_resume) = match &node {
            BoundNode::And(cs) => {
                let fast: Vec<FastCmp> = cs.iter().map_while(FastCmp::of).collect();
                let resume = fast.len();
                (fast, resume)
            }
            _ => (Vec::new(), 0),
        };
        BoundConstraint { node, fast, fast_resume }
    }

    /// The always-true constraint.
    pub fn always() -> Self {
        BoundConstraint::from_node(BoundNode::True)
    }

    /// The conjunction of two bound constraints, flattening nested `And`s
    /// exactly like [`Constraint::and`] does before binding — so
    /// `domain.bind(s).conjoin(&user.bind(s))` is structurally identical
    /// to binding the merged [`crate::ConstraintSet`] (the batch-serving
    /// overlay relies on this to stay bit-identical with serial
    /// compilation).
    pub fn conjoin(&self, other: &BoundConstraint) -> BoundConstraint {
        let node = match (self.node.clone(), other.node.clone()) {
            (BoundNode::True, o) => o,
            (s, BoundNode::True) => s,
            (BoundNode::And(mut a), BoundNode::And(b)) => {
                a.extend(b);
                BoundNode::And(a)
            }
            (BoundNode::And(mut a), o) => {
                a.push(o);
                BoundNode::And(a)
            }
            (s, BoundNode::And(mut b)) => {
                b.insert(0, s);
                BoundNode::And(b)
            }
            (s, o) => BoundNode::And(vec![s, o]),
        };
        BoundConstraint::from_node(node)
    }

    /// Evaluates the constraint for a candidate.
    pub fn eval(&self, ctx: &EvalContext<'_>) -> bool {
        self.eval_assuming_bounds(0, ctx)
    }

    /// Number of leading fast-path conjuncts that are implied by the
    /// schema's value bounds — i.e. tautological for any profile whose
    /// coordinates lie inside `[min, max]` (the postcondition of
    /// [`jit_data::FeatureSchema::sanitize_row`]).
    ///
    /// The candidates search computes this once per run and passes it to
    /// [`BoundConstraint::eval_assuming_bounds`] for its (sanitized)
    /// trial profiles; the schema-derived domain bounds then cost nothing
    /// per evaluation.
    pub fn bounds_implied_prefix(&self, schema: &FeatureSchema) -> usize {
        self.fast
            .iter()
            .take_while(|fc| {
                if fc.coeff != 1.0 || fc.offset != 0.0 {
                    return false;
                }
                let Some(meta) = schema.features().get(fc.feature as usize) else {
                    return false;
                };
                match fc.op {
                    // v >= min  ⇒  v >= rhs − tol  whenever rhs <= min.
                    CmpOp::Ge => fc.rhs <= meta.min,
                    // v <= max  ⇒  v <= rhs + tol  whenever rhs >= max.
                    CmpOp::Le => fc.rhs >= meta.max,
                    _ => false,
                }
            })
            .count()
    }

    /// Content digest of the bound constraint: the full node tree —
    /// operators, feature indices, special-property tags, coefficient
    /// and constant bits.
    ///
    /// Two bound constraints with equal digests accept exactly the same
    /// candidates (evaluation is a pure function of the digested
    /// structure; the fast-path tables are derived from it at
    /// construction). Incremental re-serving diffs these digests to
    /// decide whether a stored time point's constraint environment
    /// changed.
    pub fn content_digest(&self) -> jit_math::Digest {
        let mut w = jit_math::DigestWriter::new("jit-constraints/bound");
        digest_node(&self.node, &mut w);
        w.finish()
    }

    /// [`BoundConstraint::eval`] under the caller-guaranteed premise that
    /// the candidate satisfies the schema bounds: the first `skip` fast
    /// conjuncts (as counted by
    /// [`BoundConstraint::bounds_implied_prefix`]) are skipped. With
    /// `skip = 0` this is exactly `eval`.
    pub fn eval_assuming_bounds(&self, skip: usize, ctx: &EvalContext<'_>) -> bool {
        if let BoundNode::And(cs) = &self.node {
            if !self.fast.is_empty() {
                for fc in &self.fast[skip..] {
                    if !fc.eval(ctx.candidate) {
                        return false;
                    }
                }
                return cs[self.fast_resume..].iter().all(|c| eval_node(c, ctx));
            }
        }
        eval_node(&self.node, ctx)
    }
}

fn digest_expr(e: &BoundExpr, w: &mut jit_math::DigestWriter) {
    w.write_usize(e.terms.len());
    for (var, c) in &e.terms {
        match var {
            BoundVar::Feature(i) => {
                w.write_u64(0);
                w.write_usize(*i);
            }
            BoundVar::Special(s) => {
                w.write_u64(1);
                w.write_u64(match s {
                    Special::Diff => 0,
                    Special::Gap => 1,
                    Special::Confidence => 2,
                });
            }
        }
        w.write_f64(*c);
    }
    w.write_f64(e.constant);
}

fn digest_node(n: &BoundNode, w: &mut jit_math::DigestWriter) {
    match n {
        BoundNode::True => w.write_u64(0),
        BoundNode::Cmp { lhs, op, rhs } => {
            w.write_u64(1);
            w.write_u64(match op {
                CmpOp::Le => 0,
                CmpOp::Lt => 1,
                CmpOp::Ge => 2,
                CmpOp::Gt => 3,
                CmpOp::Eq => 4,
                CmpOp::Ne => 5,
            });
            digest_expr(lhs, w);
            digest_expr(rhs, w);
        }
        BoundNode::And(cs) => {
            w.write_u64(2);
            w.write_usize(cs.len());
            for c in cs {
                digest_node(c, w);
            }
        }
        BoundNode::Or(cs) => {
            w.write_u64(3);
            w.write_usize(cs.len());
            for c in cs {
                digest_node(c, w);
            }
        }
        BoundNode::Not(c) => {
            w.write_u64(4);
            digest_node(c, w);
        }
    }
}

fn eval_expr(e: &BoundExpr, ctx: &EvalContext<'_>) -> f64 {
    let mut v = e.constant;
    for (var, c) in &e.terms {
        let x = match var {
            BoundVar::Feature(i) => ctx.candidate[*i],
            BoundVar::Special(s) => ctx.special(*s),
        };
        v += c * x;
    }
    v
}

fn eval_node(n: &BoundNode, ctx: &EvalContext<'_>) -> bool {
    match n {
        BoundNode::True => true,
        BoundNode::Cmp { lhs, op, rhs } => {
            op.apply(eval_expr(lhs, ctx), eval_expr(rhs, ctx))
        }
        BoundNode::And(cs) => cs.iter().all(|c| eval_node(c, ctx)),
        BoundNode::Or(cs) => cs.iter().any(|c| eval_node(c, ctx)),
        BoundNode::Not(c) => !eval_node(c, ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> FeatureSchema {
        FeatureSchema::lending_club()
    }

    fn ctx<'a>(
        candidate: &'a [f64],
        original: &'a [f64],
        conf: f64,
    ) -> EvalContext<'a> {
        EvalContext { candidate, original, confidence: conf }
    }

    const ORIGINAL: [f64; 6] = [29.0, 0.0, 46_000.0, 2_300.0, 4.0, 24_000.0];

    #[test]
    fn simple_comparison() {
        let c = Constraint::Cmp {
            lhs: LinExpr::feature("income"),
            op: CmpOp::Le,
            rhs: LinExpr::constant(50_000.0),
        };
        let b = c.bind(&schema()).unwrap();
        assert!(b.eval(&ctx(&ORIGINAL, &ORIGINAL, 0.5)));
        let mut richer = ORIGINAL;
        richer[2] = 60_000.0;
        assert!(!b.eval(&ctx(&richer, &ORIGINAL, 0.5)));
    }

    #[test]
    fn linear_combination() {
        // income - 20 * debt >= 0
        let c = Constraint::Cmp {
            lhs: LinExpr::feature("income").minus(LinExpr::feature("debt").times(20.0)),
            op: CmpOp::Ge,
            rhs: LinExpr::constant(0.0),
        };
        let b = c.bind(&schema()).unwrap();
        assert!(b.eval(&ctx(&ORIGINAL, &ORIGINAL, 0.5))); // 46000-46000 >= 0
        let mut deeper = ORIGINAL;
        deeper[3] = 3_000.0;
        assert!(!b.eval(&ctx(&deeper, &ORIGINAL, 0.5)));
    }

    #[test]
    fn specials_evaluate() {
        let candidate = [29.0, 0.0, 50_000.0, 2_300.0, 4.0, 24_000.0];
        // gap = 1 (income changed), diff = 4000.
        let gap_le_1 = Constraint::Cmp {
            lhs: LinExpr::gap(),
            op: CmpOp::Le,
            rhs: LinExpr::constant(1.0),
        }
        .bind(&schema())
        .unwrap();
        let diff_le = Constraint::Cmp {
            lhs: LinExpr::diff(),
            op: CmpOp::Le,
            rhs: LinExpr::constant(4_500.0),
        }
        .bind(&schema())
        .unwrap();
        let conf_gt = Constraint::Cmp {
            lhs: LinExpr::confidence(),
            op: CmpOp::Gt,
            rhs: LinExpr::constant(0.6),
        }
        .bind(&schema())
        .unwrap();
        let c = ctx(&candidate, &ORIGINAL, 0.7);
        assert!(gap_le_1.eval(&c));
        assert!(diff_le.eval(&c));
        assert!(conf_gt.eval(&c));
        let c_low = ctx(&candidate, &ORIGINAL, 0.5);
        assert!(!conf_gt.eval(&c_low));
    }

    #[test]
    fn and_or_not_semantics() {
        let t = Constraint::True;
        let f = Constraint::Cmp {
            lhs: LinExpr::constant(1.0),
            op: CmpOp::Lt,
            rhs: LinExpr::constant(0.0),
        };
        let s = schema();
        let c = ctx(&ORIGINAL, &ORIGINAL, 0.5);
        assert!(t.clone().and(Constraint::True).bind(&s).unwrap().eval(&c));
        assert!(!t.clone().and(f.clone()).bind(&s).unwrap().eval(&c));
        assert!(f.clone().or(t.clone()).bind(&s).unwrap().eval(&c));
        assert!(!f.clone().or(f.clone()).bind(&s).unwrap().eval(&c));
        assert!(f.clone().negate().bind(&s).unwrap().eval(&c));
        assert!(!t.negate().bind(&s).unwrap().eval(&c));
    }

    #[test]
    fn and_flattening() {
        let leaf = || Constraint::Cmp {
            lhs: LinExpr::constant(0.0),
            op: CmpOp::Le,
            rhs: LinExpr::constant(1.0),
        };
        let c = leaf().and(leaf()).and(leaf());
        match c {
            Constraint::And(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn conjunction_subset_of_conjuncts() {
        // A conjunction can only be satisfied when every conjunct is.
        let a = Constraint::Cmp {
            lhs: LinExpr::feature("income"),
            op: CmpOp::Ge,
            rhs: LinExpr::constant(40_000.0),
        };
        let b = Constraint::Cmp {
            lhs: LinExpr::feature("debt"),
            op: CmpOp::Le,
            rhs: LinExpr::constant(2_000.0),
        };
        let s = schema();
        let both = a.clone().and(b.clone()).bind(&s).unwrap();
        let ba = a.bind(&s).unwrap();
        let bb = b.bind(&s).unwrap();
        let c = ctx(&ORIGINAL, &ORIGINAL, 0.5);
        if both.eval(&c) {
            assert!(ba.eval(&c) && bb.eval(&c));
        }
        // ORIGINAL has debt 2300 > 2000, so conjunction must fail.
        assert!(!both.eval(&c));
        assert!(ba.eval(&c));
    }

    #[test]
    fn conjoin_is_structurally_identical_to_unbound_and() {
        let s = schema();
        let income = Constraint::Cmp {
            lhs: LinExpr::feature("income"),
            op: CmpOp::Ge,
            rhs: LinExpr::constant(40_000.0),
        };
        let debt = Constraint::Cmp {
            lhs: LinExpr::feature("debt"),
            op: CmpOp::Le,
            rhs: LinExpr::constant(2_000.0),
        };
        let gap = Constraint::Cmp {
            lhs: LinExpr::gap(),
            op: CmpOp::Le,
            rhs: LinExpr::constant(2.0),
        };
        let cases: Vec<(Constraint, Constraint)> = vec![
            (Constraint::True, income.clone()),
            (income.clone(), Constraint::True),
            (income.clone(), debt.clone()),
            (income.clone().and(debt.clone()), gap.clone()),
            (income.clone(), debt.clone().and(gap.clone())),
            (income.clone().and(debt.clone()), gap.clone().and(income.clone())),
        ];
        for (a, b) in cases {
            let merged = a.clone().and(b.clone()).bind(&s).unwrap();
            let conjoined = a.bind(&s).unwrap().conjoin(&b.bind(&s).unwrap());
            assert_eq!(format!("{merged:?}"), format!("{conjoined:?}"));
        }
    }

    #[test]
    fn fast_path_agrees_with_general_eval() {
        let s = schema();
        // A conjunction whose prefix is specializable (feature-vs-const)
        // and whose tail is not (special property, disjunction).
        let c = Constraint::Cmp {
            lhs: LinExpr::feature("income"),
            op: CmpOp::Ge,
            rhs: LinExpr::constant(30_000.0),
        }
        .and(Constraint::Cmp {
            lhs: LinExpr::feature("debt").times(2.0).offset(-10.0),
            op: CmpOp::Le,
            rhs: LinExpr::constant(10_000.0),
        })
        .and(Constraint::Cmp {
            lhs: LinExpr::gap(),
            op: CmpOp::Le,
            rhs: LinExpr::constant(3.0),
        });
        let b = c.bind(&s).unwrap();
        // Probes on both sides of every bound.
        let mut cases = vec![ORIGINAL.to_vec()];
        let mut poor = ORIGINAL.to_vec();
        poor[2] = 10_000.0;
        cases.push(poor);
        let mut indebted = ORIGINAL.to_vec();
        indebted[3] = 9_000.0;
        cases.push(indebted);
        let mut changed = ORIGINAL.to_vec();
        for v in changed.iter_mut() {
            *v += 1.0;
        }
        cases.push(changed); // gap 6 > 3
        for cand in &cases {
            // Reference: evaluate each conjunct individually (no fast
            // prefix is built for a lone comparison's And-free root).
            let ctx = ctx(cand, &ORIGINAL, 0.5);
            let general: bool = match &c {
                Constraint::And(parts) => {
                    parts.iter().all(|p| p.bind(&s).unwrap().eval(&ctx))
                }
                _ => unreachable!(),
            };
            assert_eq!(b.eval(&ctx), general);
        }
    }

    #[test]
    fn content_digest_stable_and_sensitive() {
        let s = schema();
        let mk = |cap: f64| {
            Constraint::Cmp {
                lhs: LinExpr::feature("income"),
                op: CmpOp::Le,
                rhs: LinExpr::constant(cap),
            }
            .and(Constraint::Cmp {
                lhs: LinExpr::gap(),
                op: CmpOp::Le,
                rhs: LinExpr::constant(2.0),
            })
            .bind(&s)
            .unwrap()
        };
        // Rebinding the same constraint digests identically.
        assert_eq!(mk(50_000.0).content_digest(), mk(50_000.0).content_digest());
        // One ULP of one constant changes the digest.
        let bumped = f64::from_bits(50_000.0f64.to_bits() + 1);
        assert_ne!(mk(50_000.0).content_digest(), mk(bumped).content_digest());
        // Conjoining is observable.
        let base = mk(50_000.0);
        assert_ne!(base.content_digest(), base.conjoin(&mk(50_000.0)).content_digest());
        // Conjoin ≡ merged And, structurally — digests must agree too.
        let income = Constraint::Cmp {
            lhs: LinExpr::feature("income"),
            op: CmpOp::Ge,
            rhs: LinExpr::constant(40_000.0),
        };
        let debt = Constraint::Cmp {
            lhs: LinExpr::feature("debt"),
            op: CmpOp::Le,
            rhs: LinExpr::constant(2_000.0),
        };
        let merged = income.clone().and(debt.clone()).bind(&s).unwrap();
        let conjoined = income.bind(&s).unwrap().conjoin(&debt.bind(&s).unwrap());
        assert_eq!(merged.content_digest(), conjoined.content_digest());
    }

    #[test]
    fn unknown_feature_error() {
        let c = Constraint::Cmp {
            lhs: LinExpr::feature("credit_score"),
            op: CmpOp::Le,
            rhs: LinExpr::constant(1.0),
        };
        let err = c.bind(&schema()).unwrap_err();
        assert_eq!(err, UnknownFeature("credit_score".to_string()));
    }

    #[test]
    fn eq_uses_tolerance() {
        assert!(CmpOp::Eq.apply(1.0, 1.0 + 1e-12));
        assert!(!CmpOp::Eq.apply(1.0, 1.1));
        assert!(CmpOp::Ne.apply(1.0, 1.1));
    }

    #[test]
    fn strict_ops_exclude_equality() {
        assert!(!CmpOp::Lt.apply(1.0, 1.0));
        assert!(!CmpOp::Gt.apply(1.0, 1.0));
        assert!(CmpOp::Le.apply(1.0, 1.0));
        assert!(CmpOp::Ge.apply(1.0, 1.0));
    }

    #[test]
    fn feature_names_collected() {
        let c = Constraint::Cmp {
            lhs: LinExpr::feature("income").plus(LinExpr::feature("debt")),
            op: CmpOp::Le,
            rhs: LinExpr::feature("income"), // duplicate on purpose
        }
        .and(Constraint::Cmp {
            lhs: LinExpr::gap(),
            op: CmpOp::Le,
            rhs: LinExpr::constant(2.0),
        });
        assert_eq!(c.feature_names(), vec!["debt".to_string(), "income".to_string()]);
    }

    #[test]
    fn display_roundtrips_visually() {
        let c = Constraint::Cmp {
            lhs: LinExpr::feature("income").minus(LinExpr::feature("debt").times(2.0)),
            op: CmpOp::Ge,
            rhs: LinExpr::constant(1_000.0),
        };
        let s = format!("{c}");
        assert!(s.contains("income"), "{s}");
        assert!(s.contains(">="), "{s}");
        assert!(s.contains("2 * debt"), "{s}");
    }

    #[test]
    fn linexpr_algebra() {
        let e = LinExpr::feature("a")
            .plus(LinExpr::feature("a"))
            .plus(LinExpr::constant(3.0))
            .times(2.0);
        // 2*(a + a + 3) = 4a + 6
        let terms: Vec<(String, f64)> =
            e.terms().map(|(v, c)| (format!("{v}"), c)).collect();
        assert_eq!(terms, vec![("a".to_string(), 4.0)]);
        assert_eq!(e.constant_part(), 6.0);
    }

    #[test]
    fn linexpr_cancellation_prunes() {
        let e = LinExpr::feature("a").minus(LinExpr::feature("a"));
        assert_eq!(e.terms().count(), 0);
        assert_eq!(format!("{e}"), "0");
    }
}
