//! # jit-constraints
//!
//! The constraints language of JustInTime (paper Definition II.2).
//!
//! A *constraints function* `C` maps an input profile `x` to the set
//! `C(x) ⊆ R^d` of modifications the user/domain considers valid. In the
//! paper, constraints are "any number of linear inequalities joined by
//! conjunctions and disjunctions, over any subset of attributes", plus
//! three special properties of a candidate `x'`:
//!
//! * `diff` — the l2 distance `‖x' − x‖₂`,
//! * `gap` — the l0 distance (number of modified attributes),
//! * `confidence` — the model score `M(x')`.
//!
//! This crate provides:
//!
//! * an [`ast`] of linear expressions and boolean combinations;
//! * a [`parse`]r for a human-friendly textual form
//!   (`"income <= 80000 and (gap <= 2 or diff <= 1500)"`);
//! * a [`builder`] API for programmatic construction;
//! * [`set`] — time-scoped constraint collections
//!   ([`set::ConstraintSet`]), the admin/user conjunction of §II-B, and
//!   derivation of *domain constraints* from a feature schema (bounds and
//!   immutability);
//! * [`compiled`] — [`CompiledDomain`], the per-time-point compiled cache
//!   of the admin's domain set that batch serving shares across users,
//!   with per-user preference overlays.
//!
//! Constraints are written over feature *names* and bound to vector indices
//! against a [`jit_data::FeatureSchema`] before evaluation.

#![forbid(unsafe_code)]

pub mod ast;
pub mod builder;
pub mod compiled;
pub mod parse;
pub mod set;

pub use ast::{
    BoundConstraint, CmpOp, Constraint, EvalContext, LinExpr, Special, UnknownFeature,
    VarRef,
};
pub use compiled::CompiledDomain;
pub use parse::{parse_constraint, ParseError};
pub use set::{ConstraintSet, ScopedConstraint, TimeScope};
