//! Textual constraint parser.
//!
//! Grammar (whitespace-insensitive, keywords case-insensitive):
//!
//! ```text
//! constraint := or_expr
//! or_expr    := and_expr ( "or" and_expr )*
//! and_expr   := unary ( "and" unary )*
//! unary      := "not" unary | "(" constraint ")" | comparison | "true"
//! comparison := linexpr cmp linexpr
//! cmp        := "<=" | "<" | ">=" | ">" | "=" | "==" | "!="
//! linexpr    := ["-"] term ( ("+"|"-") term )*
//! term       := NUMBER [ "*" var ] | var [ "*" NUMBER ]
//! var        := IDENT            -- feature name or diff/gap/confidence
//! ```
//!
//! Parentheses always group *constraints*, never arithmetic; coefficients
//! are written `c * feature` (the paper's constraint class is linear, so
//! nothing more is needed). Examples accepted:
//!
//! ```text
//! income <= 80000
//! income - 0.2 * debt >= 1000 and gap <= 2
//! not (diff > 5000) or confidence >= 0.8
//! ```

use crate::ast::{CmpOp, Constraint, LinExpr, Special, VarRef};
use std::fmt;

/// A parse failure, with byte offset into the source text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the problem was noticed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Plus,
    Minus,
    Star,
    LParen,
    RParen,
    Cmp(CmpOp),
    And,
    Or,
    Not,
    True,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn tokenize(mut self) -> Result<Vec<(usize, Tok)>, ParseError> {
        let bytes = self.src.as_bytes();
        let mut out = Vec::new();
        while self.pos < bytes.len() {
            let c = bytes[self.pos] as char;
            let start = self.pos;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += 1;
                }
                '+' => {
                    out.push((start, Tok::Plus));
                    self.pos += 1;
                }
                '-' => {
                    out.push((start, Tok::Minus));
                    self.pos += 1;
                }
                '*' => {
                    out.push((start, Tok::Star));
                    self.pos += 1;
                }
                '(' => {
                    out.push((start, Tok::LParen));
                    self.pos += 1;
                }
                ')' => {
                    out.push((start, Tok::RParen));
                    self.pos += 1;
                }
                '<' => {
                    if bytes.get(self.pos + 1) == Some(&b'=') {
                        out.push((start, Tok::Cmp(CmpOp::Le)));
                        self.pos += 2;
                    } else {
                        out.push((start, Tok::Cmp(CmpOp::Lt)));
                        self.pos += 1;
                    }
                }
                '>' => {
                    if bytes.get(self.pos + 1) == Some(&b'=') {
                        out.push((start, Tok::Cmp(CmpOp::Ge)));
                        self.pos += 2;
                    } else {
                        out.push((start, Tok::Cmp(CmpOp::Gt)));
                        self.pos += 1;
                    }
                }
                '=' => {
                    if bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                    }
                    out.push((start, Tok::Cmp(CmpOp::Eq)));
                }
                '!' => {
                    if bytes.get(self.pos + 1) == Some(&b'=') {
                        out.push((start, Tok::Cmp(CmpOp::Ne)));
                        self.pos += 2;
                    } else {
                        return Err(self.error("expected '=' after '!'"));
                    }
                }
                '0'..='9' | '.' => {
                    let mut end = self.pos;
                    let mut seen_e = false;
                    while end < bytes.len() {
                        let d = bytes[end] as char;
                        if d.is_ascii_digit() || d == '.' || d == '_' {
                            end += 1;
                        } else if (d == 'e' || d == 'E') && !seen_e {
                            seen_e = true;
                            end += 1;
                            if end < bytes.len()
                                && (bytes[end] == b'+' || bytes[end] == b'-')
                            {
                                end += 1;
                            }
                        } else {
                            break;
                        }
                    }
                    let text: String =
                        self.src[self.pos..end].chars().filter(|c| *c != '_').collect();
                    let value: f64 = text
                        .parse()
                        .map_err(|e| self.error(format!("bad number {text:?}: {e}")))?;
                    out.push((start, Tok::Number(value)));
                    self.pos = end;
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut end = self.pos;
                    while end < bytes.len() {
                        let d = bytes[end] as char;
                        if d.is_ascii_alphanumeric() || d == '_' {
                            end += 1;
                        } else {
                            break;
                        }
                    }
                    let word = &self.src[self.pos..end];
                    let tok = match word.to_ascii_lowercase().as_str() {
                        "and" => Tok::And,
                        "or" => Tok::Or,
                        "not" => Tok::Not,
                        "true" => Tok::True,
                        _ => Tok::Ident(word.to_string()),
                    };
                    out.push((start, tok));
                    self.pos = end;
                }
                other => {
                    return Err(self.error(format!("unexpected character {other:?}")));
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.src_len, |(o, _)| *o)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.offset(), message: message.into() }
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn constraint(&mut self) -> Result<Constraint, ParseError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(Tok::Or)) {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Constraint, ParseError> {
        let mut lhs = self.unary()?;
        while matches!(self.peek(), Some(Tok::And)) {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Constraint, ParseError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.pos += 1;
                Ok(self.unary()?.negate())
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.constraint()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            Some(Tok::True) => {
                self.pos += 1;
                Ok(Constraint::True)
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<Constraint, ParseError> {
        let lhs = self.linexpr()?;
        let op = match self.bump() {
            Some(Tok::Cmp(op)) => op,
            other => {
                return Err(ParseError {
                    offset: self.offset(),
                    message: format!("expected comparison operator, found {other:?}"),
                })
            }
        };
        let rhs = self.linexpr()?;
        Ok(Constraint::Cmp { lhs, op, rhs })
    }

    fn linexpr(&mut self) -> Result<LinExpr, ParseError> {
        let mut negate_first = false;
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.pos += 1;
            negate_first = true;
        }
        let mut expr = self.term()?;
        if negate_first {
            expr = expr.times(-1.0);
        }
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let t = self.term()?;
                    expr = expr.plus(t);
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let t = self.term()?;
                    expr = expr.minus(t);
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    /// One term: `NUMBER`, `NUMBER * var`, `var`, or `var * NUMBER`.
    fn term(&mut self) -> Result<LinExpr, ParseError> {
        match self.bump() {
            Some(Tok::Number(n)) => {
                if matches!(self.peek(), Some(Tok::Star)) {
                    self.pos += 1;
                    let v = self.variable()?;
                    Ok(LinExpr::var(v).times(n))
                } else {
                    Ok(LinExpr::constant(n))
                }
            }
            Some(Tok::Ident(name)) => {
                let v = resolve_var(&name);
                if matches!(self.peek(), Some(Tok::Star)) {
                    self.pos += 1;
                    match self.bump() {
                        Some(Tok::Number(n)) => Ok(LinExpr::var(v).times(n)),
                        other => Err(ParseError {
                            offset: self.offset(),
                            message: format!(
                                "expected number after '*', found {other:?}"
                            ),
                        }),
                    }
                } else {
                    Ok(LinExpr::var(v))
                }
            }
            other => Err(ParseError {
                offset: self.offset(),
                message: format!("expected number or identifier, found {other:?}"),
            }),
        }
    }

    fn variable(&mut self) -> Result<VarRef, ParseError> {
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(resolve_var(&name)),
            other => Err(ParseError {
                offset: self.offset(),
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }
}

fn resolve_var(name: &str) -> VarRef {
    match name.to_ascii_lowercase().as_str() {
        "diff" => VarRef::Special(Special::Diff),
        "gap" => VarRef::Special(Special::Gap),
        "confidence" => VarRef::Special(Special::Confidence),
        _ => VarRef::Feature(name.to_string()),
    }
}

/// Parses a constraint from text.
pub fn parse_constraint(src: &str) -> Result<Constraint, ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    if tokens.is_empty() {
        return Err(ParseError { offset: 0, message: "empty constraint".to_string() });
    }
    let mut parser = Parser { tokens, pos: 0, src_len: src.len() };
    let c = parser.constraint()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.error("trailing input after constraint"));
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::EvalContext;
    use jit_data::FeatureSchema;

    fn eval(src: &str, candidate: &[f64], original: &[f64], conf: f64) -> bool {
        let c = parse_constraint(src).unwrap();
        let b = c.bind(&FeatureSchema::lending_club()).unwrap();
        b.eval(&EvalContext { candidate, original, confidence: conf })
    }

    const X: [f64; 6] = [29.0, 0.0, 46_000.0, 2_300.0, 4.0, 24_000.0];

    #[test]
    fn parses_simple_inequality() {
        assert!(eval("income <= 50000", &X, &X, 0.5));
        assert!(!eval("income > 50000", &X, &X, 0.5));
    }

    #[test]
    fn parses_coefficients_both_orders() {
        // income - 10*debt = 46000 - 23000 = 23000
        assert!(eval("income - 10 * debt >= 23000", &X, &X, 0.5));
        assert!(eval("income - debt * 10 >= 23000", &X, &X, 0.5));
        assert!(!eval("income - debt * 10 > 23000", &X, &X, 0.5));
    }

    #[test]
    fn parses_and_or_precedence() {
        // and binds tighter than or.
        let c = parse_constraint("income > 0 or income > 1 and income < 0").unwrap();
        match c {
            Constraint::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Constraint::And(_)));
            }
            other => panic!("expected Or at top, got {other:?}"),
        }
        assert!(eval("income > 0 or income > 1 and income < 0", &X, &X, 0.5));
    }

    #[test]
    fn parses_parens_and_not() {
        assert!(!eval("not (income <= 50000)", &X, &X, 0.5));
        assert!(eval("not (income <= 50000) or true", &X, &X, 0.5));
        assert!(eval("(income <= 50000 or debt > 9000) and age >= 29", &X, &X, 0.5));
    }

    #[test]
    fn parses_specials() {
        let mut cand = X;
        cand[2] = 48_000.0;
        assert!(eval("gap <= 1 and diff <= 2500", &cand, &X, 0.5));
        assert!(!eval("gap = 0", &cand, &X, 0.5));
        assert!(eval("confidence >= 0.7", &cand, &X, 0.7));
        assert!(eval("CONFIDENCE >= 0.7", &cand, &X, 0.7), "case-insensitive");
    }

    #[test]
    fn parses_negative_leading_term() {
        assert!(eval("-income <= 0", &X, &X, 0.5));
        assert!(eval("- 2 * income <= -46000", &X, &X, 0.5));
    }

    #[test]
    fn parses_equality_variants() {
        assert!(eval("age = 29", &X, &X, 0.5));
        assert!(eval("age == 29", &X, &X, 0.5));
        assert!(eval("age != 30", &X, &X, 0.5));
    }

    #[test]
    fn parses_numbers_with_underscores_and_exponents() {
        assert!(eval("income <= 50_000", &X, &X, 0.5));
        assert!(eval("income <= 5e4", &X, &X, 0.5));
        assert!(eval("income <= 0.5e6", &X, &X, 0.5));
    }

    #[test]
    fn error_on_garbage() {
        for bad in [
            "",
            "income <=",
            "<= 5",
            "income <= 5 extra",
            "income @ 5",
            "income ! 5",
            "(income <= 5",
            "income <= 5 and",
            "5 * <= 3",
        ] {
            assert!(parse_constraint(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = parse_constraint("income @@ 5").unwrap_err();
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(eval("income <= 50000 AND debt >= 0", &X, &X, 0.5));
        assert!(eval("income > 99999 OR TRUE", &X, &X, 0.5));
        assert!(eval("NOT (income > 99999)", &X, &X, 0.5));
    }

    #[test]
    fn double_negation() {
        assert!(eval("not not (income <= 50000)", &X, &X, 0.5));
    }

    #[test]
    fn constant_only_comparison() {
        assert!(eval("1 <= 2", &X, &X, 0.5));
        assert!(!eval("2 + 2 = 5", &X, &X, 0.5));
    }

    #[test]
    fn display_parse_roundtrip() {
        let sources = [
            "income <= 50000",
            "income - 2 * debt >= 1000 and gap <= 2",
            "not (diff > 5000) or confidence >= 0.8",
            "(age >= 30 and debt <= 1000) or household = 1",
        ];
        let schema = FeatureSchema::lending_club();
        for src in sources {
            let c1 = parse_constraint(src).unwrap();
            let printed = format!("{c1}");
            let c2 = parse_constraint(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            // Semantic equivalence on a probe set.
            let b1 = c1.bind(&schema).unwrap();
            let b2 = c2.bind(&schema).unwrap();
            for conf in [0.1, 0.9] {
                for cand in [X, [35.0, 1.0, 80_000.0, 500.0, 10.0, 10_000.0]] {
                    let ctx = EvalContext {
                        candidate: &cand,
                        original: &X,
                        confidence: conf,
                    };
                    assert_eq!(b1.eval(&ctx), b2.eval(&ctx), "mismatch for {src}");
                }
            }
        }
    }
}
