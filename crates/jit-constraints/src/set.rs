//! Time-scoped constraint sets and the admin ∧ user conjunction.
//!
//! §II-B: "Constraints may refer to a single point in time or all of them".
//! The per-time-point constraints function `C_t` handed to each candidates
//! generator is the conjunction of:
//!
//! * **domain constraints** (admin-defined, database-integrity-style) —
//!   derived here from the feature schema: value bounds and immutability;
//! * **user constraints** (preferences and limitations), possibly scoped to
//!   specific time points.

use crate::ast::{BoundConstraint, CmpOp, Constraint, EvalContext, LinExpr};
use jit_data::{FeatureSchema, Mutability};

/// When a constraint applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeScope {
    /// Applies at every time point.
    AllTimes,
    /// Applies only at the given time index `t`.
    At(usize),
    /// Applies for `t` in the inclusive range.
    Between(usize, usize),
}

impl TimeScope {
    /// Whether the scope covers time point `t`.
    pub fn covers(&self, t: usize) -> bool {
        match self {
            TimeScope::AllTimes => true,
            TimeScope::At(at) => *at == t,
            TimeScope::Between(lo, hi) => (*lo..=*hi).contains(&t),
        }
    }
}

/// A constraint plus the time points it binds at.
#[derive(Clone, Debug)]
pub struct ScopedConstraint {
    /// The constraint.
    pub constraint: Constraint,
    /// When it applies.
    pub scope: TimeScope,
}

/// A collection of scoped constraints with helpers to compile the
/// conjunction applicable at a given time point.
#[derive(Clone, Debug, Default)]
pub struct ConstraintSet {
    items: Vec<ScopedConstraint>,
}

impl ConstraintSet {
    /// An empty set (equivalent to `C(x) = R^d`).
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Adds a constraint at every time point.
    pub fn add(&mut self, constraint: Constraint) -> &mut Self {
        self.items.push(ScopedConstraint { constraint, scope: TimeScope::AllTimes });
        self
    }

    /// Adds a constraint at one time point.
    pub fn add_at(&mut self, t: usize, constraint: Constraint) -> &mut Self {
        self.items.push(ScopedConstraint { constraint, scope: TimeScope::At(t) });
        self
    }

    /// Adds a constraint over an inclusive time range.
    pub fn add_between(
        &mut self,
        lo: usize,
        hi: usize,
        constraint: Constraint,
    ) -> &mut Self {
        assert!(lo <= hi, "time range out of order");
        self.items
            .push(ScopedConstraint { constraint, scope: TimeScope::Between(lo, hi) });
        self
    }

    /// Number of scoped constraints.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no constraints are present.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrow of the scoped items.
    pub fn items(&self) -> &[ScopedConstraint] {
        &self.items
    }

    /// Merges another set into this one (used to conjoin the admin's domain
    /// set with the user's preference set).
    pub fn merge(&mut self, other: &ConstraintSet) -> &mut Self {
        self.items.extend(other.items.iter().cloned());
        self
    }

    /// The conjunction of all constraints that bind at time `t`, unbound.
    pub fn at_time(&self, t: usize) -> Constraint {
        let mut acc = Constraint::True;
        for item in &self.items {
            if item.scope.covers(t) {
                acc = acc.and(item.constraint.clone());
            }
        }
        acc
    }

    /// Compiles the time-`t` conjunction against a schema.
    pub fn compile_at(
        &self,
        t: usize,
        schema: &FeatureSchema,
    ) -> Result<BoundConstraint, crate::ast::UnknownFeature> {
        self.at_time(t).bind(schema)
    }
}

/// Derives the admin's *domain constraints* from the feature schema:
///
/// * every feature within `[min, max]`;
/// * immutable features pinned to their (time-updated) input value —
///   expressed as `gap`-style equality `feature = value` is impossible
///   without knowing `x_t`, so immutability is returned separately as the
///   list of pinned feature indices and enforced by the candidates
///   generator when it proposes moves.
///
/// Returns `(bounds_constraint_set, immutable_feature_indices)`.
pub fn domain_constraints(schema: &FeatureSchema) -> (ConstraintSet, Vec<usize>) {
    let mut set = ConstraintSet::new();
    let mut immutable = Vec::new();
    for (i, meta) in schema.features().iter().enumerate() {
        let f = LinExpr::feature(&meta.name);
        set.add(Constraint::Cmp {
            lhs: f.clone(),
            op: CmpOp::Ge,
            rhs: LinExpr::constant(meta.min),
        });
        set.add(Constraint::Cmp {
            lhs: f,
            op: CmpOp::Le,
            rhs: LinExpr::constant(meta.max),
        });
        if meta.mutability == Mutability::Immutable {
            immutable.push(i);
        }
    }
    (set, immutable)
}

/// Convenience: evaluates a bound constraint over a candidate.
pub fn satisfies(
    bound: &BoundConstraint,
    candidate: &[f64],
    original: &[f64],
    confidence: f64,
) -> bool {
    bound.eval(&EvalContext { candidate, original, confidence })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use jit_data::FeatureSchema;

    const X: [f64; 6] = [29.0, 0.0, 46_000.0, 2_300.0, 4.0, 24_000.0];

    #[test]
    fn scope_coverage() {
        assert!(TimeScope::AllTimes.covers(0));
        assert!(TimeScope::AllTimes.covers(99));
        assert!(TimeScope::At(3).covers(3));
        assert!(!TimeScope::At(3).covers(2));
        assert!(TimeScope::Between(1, 4).covers(1));
        assert!(TimeScope::Between(1, 4).covers(4));
        assert!(!TimeScope::Between(1, 4).covers(5));
    }

    #[test]
    fn at_time_conjunction_scoping() {
        let mut set = ConstraintSet::new();
        set.add(feature("income").ge(0.0)); // all times
        set.add_at(2, feature("debt").le(1_000.0)); // only t=2
        set.add_between(3, 5, feature("loan_amount").le(30_000.0));

        let schema = FeatureSchema::lending_club();
        let check = |t: usize, cand: &[f64]| {
            let b = set.compile_at(t, &schema).unwrap();
            satisfies(&b, cand, &X, 0.5)
        };
        // At t=0 only the income bound binds: X satisfies it.
        assert!(check(0, &X));
        // At t=2 the debt cap binds: X has debt 2300 -> fails.
        assert!(!check(2, &X));
        // At t=4 the loan cap binds: X has loan 24000 -> passes.
        assert!(check(4, &X));
        let mut big_loan = X;
        big_loan[5] = 40_000.0;
        assert!(!check(4, &big_loan));
    }

    #[test]
    fn empty_set_is_permissive() {
        let set = ConstraintSet::new();
        assert!(set.is_empty());
        let schema = FeatureSchema::lending_club();
        let b = set.compile_at(0, &schema).unwrap();
        assert!(satisfies(&b, &X, &X, 0.0));
    }

    #[test]
    fn merge_conjoins() {
        let mut admin = ConstraintSet::new();
        admin.add(feature("income").ge(0.0));
        let mut user = ConstraintSet::new();
        user.add(feature("income").le(45_000.0));
        admin.merge(&user);
        assert_eq!(admin.len(), 2);
        let schema = FeatureSchema::lending_club();
        let b = admin.compile_at(0, &schema).unwrap();
        // X has income 46000 which violates the user cap.
        assert!(!satisfies(&b, &X, &X, 0.5));
    }

    #[test]
    fn domain_constraints_enforce_bounds() {
        let schema = FeatureSchema::lending_club();
        let (set, immutable) = domain_constraints(&schema);
        // Two constraints (min+max) per feature.
        assert_eq!(set.len(), 2 * schema.dim());
        // Age and seniority are immutable in the lending schema.
        assert_eq!(immutable, vec![0, 4]);

        let b = set.compile_at(0, &schema).unwrap();
        assert!(satisfies(&b, &X, &X, 0.5));
        let mut bad = X;
        bad[0] = 150.0; // age above max 100
        assert!(!satisfies(&b, &bad, &X, 0.5));
        let mut neg = X;
        neg[2] = -5.0; // negative income
        assert!(!satisfies(&b, &neg, &X, 0.5));
    }

    #[test]
    fn satisfies_passes_confidence_through() {
        let schema = FeatureSchema::lending_club();
        let mut set = ConstraintSet::new();
        set.add(confidence().gt(0.8));
        let b = set.compile_at(0, &schema).unwrap();
        assert!(satisfies(&b, &X, &X, 0.9));
        assert!(!satisfies(&b, &X, &X, 0.5));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn bad_range_panics() {
        ConstraintSet::new().add_between(5, 3, Constraint::True);
    }
}
