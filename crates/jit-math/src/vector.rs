//! Elementwise vector operations over plain `&[f64]` slices.
//!
//! The workspace represents user profiles and feature rows as `Vec<f64>`;
//! these helpers keep the call sites in `jit-ml`/`jit-core` free of manual
//! index loops. All functions panic if slice lengths mismatch — a length
//! mismatch is always a programming error, never a data error.

/// Adds `b` into `a` elementwise, in place.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Returns `a + b` as a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = a.to_vec();
    add_assign(&mut out, b);
    out
}

/// Returns `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scales `a` by `s` in place.
pub fn scale_assign(a: &mut [f64], s: f64) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

/// Returns `s * a` as a new vector.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// `a += s * b`, the classic axpy kernel.
pub fn axpy(a: &mut [f64], s: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += s * y;
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Sum of all elements.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean; returns 0.0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Index of the maximum element (first one on ties); `None` when empty or
/// when every element is NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element (first one on ties); `None` when empty or
/// when every element is NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    argmax(&a.iter().map(|v| -v).collect::<Vec<_>>())
}

/// Clamps every coordinate of `a` into `[lo[i], hi[i]]`, in place.
pub fn clamp_box(a: &mut [f64], lo: &[f64], hi: &[f64]) {
    assert_eq!(a.len(), lo.len(), "vector length mismatch");
    assert_eq!(a.len(), hi.len(), "vector length mismatch");
    for i in 0..a.len() {
        a[i] = a[i].clamp(lo[i], hi[i]);
    }
}

/// Linear interpolation `(1-t)*a + t*b`.
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (1.0 - t) * x + t * y).collect()
}

/// Returns `true` when every element of `a` is finite.
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -1.0, 4.0];
        let s = add(&a, &b);
        let back = sub(&s, &b);
        for (x, y) in back.iter().zip(&a) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!(approx_eq(norm(&[3.0, 4.0]), 5.0, 1e-12));
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, 2.0, &[3.0, -1.0]);
        assert_eq!(a, vec![7.0, -1.0]);
    }

    #[test]
    fn argmax_ignores_nan_and_breaks_ties_first() {
        assert_eq!(argmax(&[f64::NAN, 2.0, 2.0, 1.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN]), None);
        assert_eq!(argmin(&[3.0, -1.0, 0.0]), Some(1));
    }

    #[test]
    fn clamp_box_respects_bounds() {
        let mut a = vec![-5.0, 0.5, 9.0];
        clamp_box(&mut a, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(a, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 10.0];
        let b = [1.0, 20.0];
        assert_eq!(lerp(&a, &b, 0.0), vec![0.0, 10.0]);
        assert_eq!(lerp(&a, &b, 1.0), vec![1.0, 20.0]);
        assert_eq!(lerp(&a, &b, 0.5), vec![0.5, 15.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
