//! # jit-math
//!
//! Self-contained numerical substrate for the JustInTime workspace.
//!
//! The crate deliberately has **zero external dependencies**: every algorithm
//! downstream (random forests, kernel mean embeddings, counterfactual beam
//! search) must be reproducible bit-for-bit across runs, so randomness,
//! linear algebra and statistics all live here under explicit seeds.
//!
//! Modules:
//!
//! * [`vector`] — elementwise operations over `&[f64]` slices.
//! * [`matrix`] — a dense row-major [`matrix::Matrix`] with the solvers the
//!   workspace needs (Cholesky, ridge regression).
//! * [`kernel`] — positive-definite kernels and kernel/Gram matrices used by
//!   the distribution-embedding machinery of `jit-temporal`.
//! * [`stats`] — descriptive statistics, Welford online accumulators and a
//!   feature [`stats::Standardizer`] (whitening).
//! * [`distance`] — the paper's candidate metrics: `gap` (l0), `diff` (l2)
//!   and friends.
//! * [`rng`] — a SplitMix64 deterministic RNG with the samplers the
//!   workspace needs (uniform, normal, Bernoulli, choice, shuffle).
//! * [`digest`] — 128-bit content digests for trained artifacts, the
//!   change-detection primitive behind incremental re-serving.

#![forbid(unsafe_code)]

pub mod digest;
pub mod distance;
pub mod kernel;
pub mod matrix;
pub mod rng;
pub mod stats;
pub mod vector;

pub use digest::{Digest, DigestWriter};
pub use distance::{l0_gap, l1, l2_diff, l2_squared, linf, weighted_l2};
pub use kernel::{Kernel, LinearKernel, PolyKernel, RbfKernel};
pub use matrix::Matrix;
pub use rng::Rng;
pub use stats::{OnlineStats, Standardizer};

/// Numerical tolerance used across the workspace when comparing floats.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` are within `tol` of each other.
///
/// Uses a combined absolute/relative criterion so it behaves sensibly for
/// both tiny and large magnitudes.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let largest = a.abs().max(b.abs());
    diff <= largest * tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_magnitudes() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.1e12, 1e-9));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-9));
        assert!(approx_eq(0.0, 1e-10, 1e-9));
    }
}
