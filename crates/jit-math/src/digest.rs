//! Content digests for trained artifacts.
//!
//! Serving a *returning* user efficiently requires deciding whether the
//! artifacts a stored session was computed from — future models,
//! compiled constraints, temporal inputs — are still the ones the system
//! holds today. Pointer identity cannot answer that (the system may have
//! been retrained, reloaded, or rebuilt from the same data), so trained
//! artifacts expose a **content digest**: a 128-bit hash over every byte
//! that influences their observable behaviour.
//!
//! The contract consumers rely on:
//!
//! * **Deterministic.** Digesting the same content twice — in the same
//!   process or after a rebuild from identical bytes — yields the same
//!   [`Digest`]. No pointers, capacities or other incidental state may
//!   be written.
//! * **Sensitive.** Any change to any written byte (a single f64 bit, a
//!   reordered element, a length) changes the digest, up to hash
//!   collisions.
//! * **Domain separated.** Writers are created with a domain tag so that
//!   structurally identical artifacts of different kinds (say, a weight
//!   vector and a threshold list) cannot collide by construction.
//!
//! The implementation chains two independent SplitMix64-style lanes over
//! the written words. 128 bits keep accidental collisions out of reach
//! for any realistic artifact census; the digest is **not**
//! cryptographic and must not be used against adversarial inputs.

use std::fmt;

/// A 128-bit content digest (see the module docs for the contract).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u64; 2]);

impl Digest {
    /// Hex rendering, stable across processes (used by snapshots and
    /// logs; [`Digest::from_hex`] round-trips it).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }

    /// Parses the 32-hex-digit form produced by [`Digest::to_hex`].
    pub fn from_hex(s: &str) -> Option<Digest> {
        // from_str_radix alone would also accept a leading sign; only
        // exactly 32 hex digits round-trip with `to_hex`.
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Digest([hi, lo]))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// SplitMix64 finalizer: full-avalanche mixing of one word.
///
/// Public because it is the workspace's shared cheap mixer — the
/// candidates search keys its dedup sets and cell caches with it
/// instead of re-declaring the constants.
#[inline]
pub fn splitmix64(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Streaming writer producing a [`Digest`].
///
/// All numeric writes funnel through [`DigestWriter::write_u64`]; floats
/// are written as their exact IEEE-754 bit patterns, so two artifacts
/// digest equal **iff** they are bit-identical in every written field.
#[derive(Clone, Debug)]
pub struct DigestWriter {
    a: u64,
    b: u64,
}

impl DigestWriter {
    /// Creates a writer for the given domain tag (e.g.
    /// `"jit-ml/forest"`). The tag participates in the digest.
    pub fn new(domain: &str) -> Self {
        // Two lanes with unrelated seeds; the domain tag is folded into
        // both so cross-domain collisions need a 128-bit coincidence.
        let mut w = DigestWriter { a: 0x243f_6a88_85a3_08d3, b: 0x1319_8a2e_0370_7344 };
        w.write_bytes(domain.as_bytes());
        w
    }

    /// Writes one word into both lanes.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.a = splitmix64(self.a ^ v);
        // The second lane sees the word under a different whitening so
        // the lanes never degenerate into copies of each other.
        self.b = splitmix64(self.b ^ v.rotate_left(23) ^ 0xa076_1d64_78bd_642f);
    }

    /// Writes a float as its exact bit pattern (`-0.0 != 0.0`, NaN
    /// payloads preserved — content equality, not numeric equality).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a length/index.
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Writes a boolean.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Writes a byte string, length-prefixed (so `"ab","c"` and
    /// `"a","bc"` digest differently).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Writes a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Writes a slice of floats, length-prefixed.
    pub fn write_f64s(&mut self, vs: &[f64]) {
        self.write_usize(vs.len());
        for v in vs {
            self.write_f64(*v);
        }
    }

    /// Folds an already-finished digest in (for composing artifact
    /// digests out of part digests).
    pub fn write_digest(&mut self, d: Digest) {
        self.write_u64(d.0[0]);
        self.write_u64(d.0[1]);
    }

    /// Finalizes the digest.
    pub fn finish(self) -> Digest {
        // One last avalanche per lane so trailing zero-ish writes still
        // disperse.
        Digest([splitmix64(self.a), splitmix64(self.b ^ self.a.rotate_left(32))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(words: &[u64]) -> Digest {
        let mut w = DigestWriter::new("test");
        for &v in words {
            w.write_u64(v);
        }
        w.finish()
    }

    #[test]
    fn deterministic_across_writers() {
        assert_eq!(digest_of(&[1, 2, 3]), digest_of(&[1, 2, 3]));
    }

    #[test]
    fn sensitive_to_every_word_and_order() {
        let base = digest_of(&[1, 2, 3]);
        assert_ne!(base, digest_of(&[1, 2, 4]));
        assert_ne!(base, digest_of(&[0, 2, 3]));
        assert_ne!(base, digest_of(&[1, 3, 2]), "order must matter");
        assert_ne!(base, digest_of(&[1, 2]), "length must matter");
    }

    #[test]
    fn domain_separation() {
        let a = DigestWriter::new("domain-a").finish();
        let b = DigestWriter::new("domain-b").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn float_bits_not_numeric_equality() {
        let mut w1 = DigestWriter::new("f");
        w1.write_f64(0.0);
        let mut w2 = DigestWriter::new("f");
        w2.write_f64(-0.0);
        assert_ne!(w1.finish(), w2.finish());
    }

    #[test]
    fn string_prefixing_blocks_concat_ambiguity() {
        let mut w1 = DigestWriter::new("s");
        w1.write_str("ab");
        w1.write_str("c");
        let mut w2 = DigestWriter::new("s");
        w2.write_str("a");
        w2.write_str("bc");
        assert_ne!(w1.finish(), w2.finish());
    }

    #[test]
    fn hex_round_trip() {
        let d = digest_of(&[42, 7]);
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"0".repeat(31)), None);
        // from_str_radix would tolerate a sign; from_hex must not.
        assert_eq!(Digest::from_hex(&format!("+{}", "0".repeat(31))), None);
    }

    #[test]
    fn lanes_are_independent() {
        // A single-word digest must not have equal lanes (they would
        // then be a 64-bit digest in disguise).
        let d = digest_of(&[0xdead_beef]);
        assert_ne!(d.0[0], d.0[1]);
    }
}
