//! Descriptive statistics and feature standardization.
//!
//! The kernel mean embedding of `jit-temporal` and the move proposers of the
//! candidates generator both operate in *whitened* feature space — otherwise
//! an income measured in dollars dominates an age measured in years. The
//! [`Standardizer`] learns per-feature location/scale on training data and
//! maps profiles back and forth.

use crate::matrix::Matrix;

/// Welford's online mean/variance accumulator.
///
/// Numerically stable for long streams and mergeable (see [`OnlineStats::merge`]),
/// which the parallel candidate generators rely on.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// variance formula).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `values` by linear interpolation
/// between order statistics.
///
/// # Panics
/// Panics when `values` is empty or `q` is outside `[0,1]`.
#[allow(clippy::expect_used)] // guarded by the NaN-free contract the assert above enforces on q; values are validated by callers
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Pearson correlation coefficient of two equal-length samples; `0.0` when
/// either side is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sample length mismatch");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Per-feature affine whitening: `z = (x - mean) / std`.
///
/// Constant features (std == 0) are mapped with scale 1 so transform stays
/// invertible.
#[derive(Clone, Debug)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations on the rows of `x`.
    ///
    /// # Panics
    /// Panics when `x` has no rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit standardizer on empty data");
        let d = x.cols();
        let mut stats = vec![OnlineStats::new(); d];
        for i in 0..x.rows() {
            for (j, stat) in stats.iter_mut().enumerate() {
                stat.push(x[(i, j)]);
            }
        }
        let means = stats.iter().map(|s| s.mean()).collect();
        let stds = stats
            .iter()
            .map(|s| {
                let sd = s.std_dev();
                if sd > 0.0 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        Standardizer { means, stds }
    }

    /// Builds a standardizer from explicit parameters.
    pub fn from_params(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "parameter length mismatch");
        assert!(stds.iter().all(|s| *s > 0.0), "stds must be positive");
        Standardizer { means, stds }
    }

    /// Number of features this standardizer was fit on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Learned per-feature means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Learned per-feature standard deviations (1.0 for constant features).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Whitens a single row.
    pub fn transform_row(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "feature dimension mismatch");
        x.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Inverse of [`Standardizer::transform_row`].
    pub fn inverse_row(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.dim(), "feature dimension mismatch");
        z.iter().zip(&self.means).zip(&self.stds).map(|((v, m), s)| v * s + m).collect()
    }

    /// Whitens every row of a matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            let z = self.transform_row(x.row(i));
            out.row_mut(i).copy_from_slice(&z);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!(approx_eq(s.mean(), 5.0, 1e-12));
        assert!(approx_eq(s.variance(), 4.0, 1e-12));
        assert!(approx_eq(s.std_dev(), 2.0, 1e-12));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn welford_merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!(approx_eq(left.mean(), whole.mean(), 1e-10));
        assert!(approx_eq(left.variance(), whole.variance(), 1e-10));
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before_mean = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before_mean);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before_mean);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!(approx_eq(quantile(&xs, 0.5), 2.5, 1e-12));
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let a = [1.0, 2.0, 3.0];
        assert!(approx_eq(pearson(&a, &[2.0, 4.0, 6.0]), 1.0, 1e-12));
        assert!(approx_eq(pearson(&a, &[-1.0, -2.0, -3.0]), -1.0, 1e-12));
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn standardizer_roundtrip() {
        let x =
            Matrix::from_rows(&[vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]]);
        let s = Standardizer::fit(&x);
        let row = [2.5, 150.0];
        let z = s.transform_row(&row);
        let back = s.inverse_row(&z);
        for (a, b) in back.iter().zip(&row) {
            assert!(approx_eq(*a, *b, 1e-10));
        }
    }

    #[test]
    fn standardizer_whitens_to_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[vec![10.0], vec![20.0], vec![30.0], vec![40.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        let vals = z.col(0);
        let mut acc = OnlineStats::new();
        for v in vals {
            acc.push(v);
        }
        assert!(acc.mean().abs() < 1e-10);
        assert!(approx_eq(acc.variance(), 1.0, 1e-10));
    }

    #[test]
    fn standardizer_handles_constant_feature() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform_row(&[5.0]);
        assert_eq!(z, vec![0.0]);
        assert_eq!(s.inverse_row(&z), vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }
}
