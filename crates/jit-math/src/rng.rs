//! Deterministic random number generation.
//!
//! Everything stochastic in the workspace — synthetic Lending-Club data,
//! random forest bootstraps, beam-search tie-breaking, herding restarts —
//! flows through this SplitMix64 generator so that a single `u64` seed makes
//! an entire experiment reproducible.

/// A SplitMix64 pseudo-random generator.
///
/// SplitMix64 passes BigCrush, needs only one `u64` of state, and is fast
/// enough that it never shows up in profiles. It is *not* cryptographically
/// secure, which is fine: we only need statistical quality and determinism.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
    /// Cached second output of the Box-Muller transform.
    cached_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        Rng { state: seed, cached_normal: None }
    }

    /// Derives an independent child generator; used to hand each
    /// per-time-point candidates generator its own stream.
    pub fn fork(&mut self) -> Rng {
        Rng::seeded(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds out of order");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Lemire-style rejection to avoid modulo bias.
        let n = n as u64;
        loop {
            let r = self.next_u64();
            let hi = ((r as u128 * n as u128) >> 64) as u64;
            let lo = (r as u128 * n as u128) as u64;
            if lo >= n || hi < u64::MAX / n {
                return hi as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range bounds out of order");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal sample via the Box-Muller transform.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // Avoid log(0) by mapping u1 into (0,1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        mean + std_dev * self.normal()
    }

    /// Samples an index from an (unnormalized, non-negative) weight vector.
    ///
    /// # Panics
    /// Panics when weights are empty or all zero/negative.
    #[allow(clippy::expect_used)] // documented invariant: callers pass at least one positive weight
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        assert!(total > 0.0, "weighted_index needs positive total weight");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return i;
            }
            target -= w;
        }
        // Floating point slack: return last positive-weight index.
        weights.iter().rposition(|w| *w > 0.0).expect("at least one positive weight")
    }

    /// Uniformly picks one element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher-Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (floyd's algorithm keeps
    /// this O(k) in expectation for k << n).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample more indices than available");
        if k == 0 {
            return Vec::new();
        }
        // For dense requests just shuffle a full index vector.
        if k * 3 >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            self.shuffle(&mut idx);
            idx.truncate(k);
            return idx;
        }
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below(j + 1);
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            out.push(pick);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = Rng::seeded(42);
        let mut b = Rng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng::seeded(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Rng::seeded(7);
        for _ in 0..1000 {
            let v = r.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Rng::seeded(11);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.below(4)] += 1;
        }
        for c in counts {
            // Expected 10_000 each; allow 5% deviation.
            assert!((9_500..10_500).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seeded(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut r = Rng::seeded(17);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seeded(19);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Rng::seeded(23);
        for &(n, k) in &[(100usize, 5usize), (10, 10), (50, 40), (7, 0)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "indices must be distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng::seeded(3);
        let mut child = a.fork();
        // The child stream should not simply mirror the parent.
        let parent_next = a.next_u64();
        let child_next = child.next_u64();
        assert_ne!(parent_next, child_next);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::seeded(1).below(0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Rng::seeded(29);
        assert!((0..100).all(|_| !r.bernoulli(0.0)));
        assert!((0..100).all(|_| r.bernoulli(1.0)));
    }
}
