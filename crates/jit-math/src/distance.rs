//! Distance measures between user profiles.
//!
//! The paper attaches three "special properties" to every candidate
//! modification (§II-A): `diff` — the l2 distance from the original input,
//! `gap` — the l0 distance (number of modified attributes), and
//! `confidence` — the model score. The first two live here; confidence is a
//! model concern (`jit-ml`).

/// Tolerance under which two coordinates are treated as equal by [`l0_gap`].
///
/// The candidates generator proposes floating-point nudges; a coordinate
/// that moved by less than this is "unchanged" for gap-counting purposes.
pub const GAP_TOLERANCE: f64 = 1e-9;

/// l0 "gap": number of coordinates in which `a` and `b` differ by more than
/// [`GAP_TOLERANCE`].
pub fn l0_gap(a: &[f64], b: &[f64]) -> usize {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).filter(|(x, y)| (*x - *y).abs() > GAP_TOLERANCE).count()
}

/// l1 (Manhattan) distance.
pub fn l1(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Squared l2 distance (avoids the sqrt when only ordering matters).
pub fn l2_squared(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// l2 "diff": Euclidean distance, the paper's primary modification cost.
pub fn l2_diff(a: &[f64], b: &[f64]) -> f64 {
    l2_squared(a, b).sqrt()
}

/// l∞ (Chebyshev) distance.
pub fn linf(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Weighted l2 distance `sqrt(Σ w_i (a_i - b_i)²)`.
///
/// Downstream code uses inverse-variance weights so that "increase income by
/// $5k" and "increase seniority by 5 years" are commensurable.
pub fn weighted_l2(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    assert_eq!(a.len(), w.len(), "weight length mismatch");
    a.iter()
        .zip(b)
        .zip(w)
        .map(|((x, y), wi)| wi * (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn gap_counts_changed_coordinates() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 3.0];
        assert_eq!(l0_gap(&a, &b), 1);
        assert_eq!(l0_gap(&a, &a), 0);
    }

    #[test]
    fn gap_ignores_sub_tolerance_noise() {
        let a = [1.0];
        let b = [1.0 + GAP_TOLERANCE / 2.0];
        assert_eq!(l0_gap(&a, &b), 0);
    }

    #[test]
    fn diff_is_euclidean() {
        assert!(approx_eq(l2_diff(&[0.0, 0.0], &[3.0, 4.0]), 5.0, 1e-12));
        assert_eq!(l2_diff(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn l1_and_linf_known_values() {
        let a = [0.0, 0.0];
        let b = [3.0, -4.0];
        assert_eq!(l1(&a, &b), 7.0);
        assert_eq!(linf(&a, &b), 4.0);
    }

    #[test]
    fn weighted_l2_reduces_to_l2_with_unit_weights() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        let w = [1.0, 1.0];
        assert!(approx_eq(weighted_l2(&a, &b, &w), l2_diff(&a, &b), 1e-12));
    }

    #[test]
    fn weighted_l2_scales_coordinates() {
        // weight 4 on the first coordinate doubles its contribution.
        let d = weighted_l2(&[0.0, 0.0], &[1.0, 0.0], &[4.0, 1.0]);
        assert!(approx_eq(d, 2.0, 1e-12));
    }

    #[test]
    fn metric_axioms_spot_checks() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 3.0, 2.0];
        // Symmetry.
        assert!(approx_eq(l2_diff(&a, &b), l2_diff(&b, &a), 1e-12));
        assert!(approx_eq(l1(&a, &b), l1(&b, &a), 1e-12));
        // Identity.
        assert_eq!(l2_diff(&a, &a), 0.0);
        // Triangle inequality via a third point.
        let c = [2.0, 2.0, 2.0];
        assert!(l2_diff(&a, &b) <= l2_diff(&a, &c) + l2_diff(&c, &b) + 1e-12);
    }
}
