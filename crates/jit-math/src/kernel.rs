//! Positive-definite kernels and Gram matrices.
//!
//! `jit-temporal` follows Lampert (CVPR'15): each time slice's data
//! distribution is represented by its *kernel mean embedding*
//! `μ_t = (1/n) Σ k(x_i, ·)` in the RKHS of a chosen kernel. Everything that
//! machinery needs from a kernel is the pairwise evaluation `k(a, b)`, which
//! is what this module provides.

use crate::distance::l2_squared;
use crate::matrix::Matrix;

/// A symmetric positive-definite kernel `k(a, b)`.
pub trait Kernel {
    /// Evaluates the kernel on a pair of points.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Gram matrix `K[i][j] = k(xs[i], ys[j])`.
    fn gram(&self, xs: &[Vec<f64>], ys: &[Vec<f64>]) -> Matrix {
        let mut k = Matrix::zeros(xs.len(), ys.len());
        for (i, x) in xs.iter().enumerate() {
            for (j, y) in ys.iter().enumerate() {
                k[(i, j)] = self.eval(x, y);
            }
        }
        k
    }

    /// Symmetric Gram matrix `K[i][j] = k(xs[i], xs[j])`; computes only the
    /// upper triangle and mirrors it.
    fn gram_symmetric(&self, xs: &[Vec<f64>]) -> Matrix {
        let n = xs.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.eval(&xs[i], &xs[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }
}

/// Gaussian RBF kernel `exp(-||a-b||² / (2σ²))`.
#[derive(Clone, Debug)]
pub struct RbfKernel {
    gamma: f64,
}

impl RbfKernel {
    /// Builds an RBF kernel from bandwidth `sigma` (σ > 0).
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0, "rbf bandwidth must be positive");
        RbfKernel { gamma: 1.0 / (2.0 * sigma * sigma) }
    }

    /// Builds an RBF kernel directly from `gamma` where
    /// `k(a,b) = exp(-gamma ||a-b||²)`.
    pub fn from_gamma(gamma: f64) -> Self {
        assert!(gamma > 0.0, "rbf gamma must be positive");
        RbfKernel { gamma }
    }

    /// The `gamma` coefficient in `exp(-gamma ||a-b||²)`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Median heuristic: sets σ to the median pairwise distance of a sample,
    /// the standard bandwidth choice for mean embeddings.
    ///
    /// Falls back to σ = 1 when fewer than two distinct points exist.
    pub fn median_heuristic(xs: &[Vec<f64>]) -> Self {
        let mut dists = Vec::new();
        // Cap the quadratic pairwise scan; the median is stable on a subsample.
        let step = (xs.len() / 64).max(1);
        for i in (0..xs.len()).step_by(step) {
            for j in ((i + step)..xs.len()).step_by(step) {
                let d2 = l2_squared(&xs[i], &xs[j]);
                if d2 > 0.0 {
                    dists.push(d2.sqrt());
                }
            }
        }
        if dists.is_empty() {
            return RbfKernel::new(1.0);
        }
        let sigma = crate::stats::quantile(&dists, 0.5);
        RbfKernel::new(sigma.max(1e-6))
    }
}

impl Kernel for RbfKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        (-self.gamma * l2_squared(a, b)).exp()
    }
}

/// Linear kernel `k(a,b) = aᵀb`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinearKernel;

impl Kernel for LinearKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        crate::vector::dot(a, b)
    }
}

/// Polynomial kernel `k(a,b) = (aᵀb + c)^degree`.
#[derive(Clone, Debug)]
pub struct PolyKernel {
    degree: u32,
    offset: f64,
}

impl PolyKernel {
    /// Builds a polynomial kernel; `degree >= 1`, `offset >= 0` keeps it PD.
    pub fn new(degree: u32, offset: f64) -> Self {
        assert!(degree >= 1, "polynomial degree must be >= 1");
        assert!(offset >= 0.0, "polynomial offset must be non-negative");
        PolyKernel { degree, offset }
    }
}

impl Kernel for PolyKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        (crate::vector::dot(a, b) + self.offset).powi(self.degree as i32)
    }
}

/// Squared RKHS distance between the mean embeddings of two samples
/// (the squared Maximum Mean Discrepancy, biased V-statistic form):
///
/// `MMD²(X, Y) = mean(K_xx) - 2 mean(K_xy) + mean(K_yy)`.
///
/// `jit-temporal` uses it to validate extrapolated embeddings and the test
/// suite uses it to check that herded pseudo-samples approximate their
/// target distribution.
pub fn mmd_squared<K: Kernel>(kernel: &K, xs: &[Vec<f64>], ys: &[Vec<f64>]) -> f64 {
    assert!(!xs.is_empty() && !ys.is_empty(), "mmd of empty sample");
    let mean_of = |m: &Matrix| -> f64 {
        m.data().iter().sum::<f64>() / (m.rows() * m.cols()) as f64
    };
    let kxx = kernel.gram_symmetric(xs);
    let kyy = kernel.gram_symmetric(ys);
    let kxy = kernel.gram(xs, ys);
    mean_of(&kxx) - 2.0 * mean_of(&kxy) + mean_of(&kyy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::rng::Rng;

    #[test]
    fn rbf_is_one_at_zero_distance() {
        let k = RbfKernel::new(1.0);
        let x = vec![1.0, 2.0];
        assert!(approx_eq(k.eval(&x, &x), 1.0, 1e-12));
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = RbfKernel::new(1.0);
        let o = vec![0.0];
        assert!(k.eval(&o, &[1.0]) > k.eval(&o, &[2.0]));
        assert!(k.eval(&o, &[2.0]) > k.eval(&o, &[5.0]));
    }

    #[test]
    fn rbf_known_value() {
        // sigma=1 => k = exp(-d²/2); d=1 => exp(-0.5).
        let k = RbfKernel::new(1.0);
        assert!(approx_eq(k.eval(&[0.0], &[1.0]), (-0.5f64).exp(), 1e-12));
    }

    #[test]
    fn linear_kernel_is_dot() {
        let k = LinearKernel;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn poly_kernel_known_value() {
        let k = PolyKernel::new(2, 1.0);
        // (1*1 + 1)² = 4
        assert_eq!(k.eval(&[1.0], &[1.0]), 4.0);
    }

    #[test]
    fn gram_symmetric_matches_gram() {
        let xs = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]];
        let k = RbfKernel::new(0.7);
        let a = k.gram(&xs, &xs);
        let b = k.gram_symmetric(&xs);
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(a[(i, j)], b[(i, j)], 1e-12));
            }
        }
        assert!(b.is_symmetric(1e-12));
    }

    #[test]
    fn gram_is_positive_semidefinite() {
        // K + eps*I should be Cholesky-factorizable for an RBF Gram matrix.
        let mut rng = Rng::seeded(5);
        let xs: Vec<Vec<f64>> =
            (0..10).map(|_| vec![rng.normal(), rng.normal()]).collect();
        let mut k = RbfKernel::new(1.0).gram_symmetric(&xs);
        k.add_diagonal(1e-9);
        assert!(k.cholesky().is_ok());
    }

    #[test]
    fn median_heuristic_reasonable_scale() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let k = RbfKernel::median_heuristic(&xs);
        // Median pairwise distance of 0..19 is ~7; gamma = 1/(2σ²).
        assert!(k.gamma() > 0.0 && k.gamma() < 1.0);
    }

    #[test]
    fn median_heuristic_degenerate_sample() {
        let xs = vec![vec![1.0], vec![1.0]];
        let k = RbfKernel::median_heuristic(&xs);
        assert!(k.gamma().is_finite());
    }

    #[test]
    fn mmd_zero_for_identical_samples() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let k = RbfKernel::new(1.0);
        let m = mmd_squared(&k, &xs, &xs);
        assert!(m.abs() < 1e-12);
    }

    #[test]
    fn mmd_larger_for_shifted_distribution() {
        let mut rng = Rng::seeded(9);
        let xs: Vec<Vec<f64>> = (0..50).map(|_| vec![rng.normal()]).collect();
        let near: Vec<Vec<f64>> = (0..50).map(|_| vec![rng.normal() + 0.1]).collect();
        let far: Vec<Vec<f64>> = (0..50).map(|_| vec![rng.normal() + 3.0]).collect();
        let k = RbfKernel::new(1.0);
        assert!(mmd_squared(&k, &xs, &far) > mmd_squared(&k, &xs, &near));
    }
}
