//! Dense row-major matrix with the factorizations the workspace needs.
//!
//! This is not a general-purpose BLAS: it implements exactly what
//! `jit-temporal` (kernel ridge / vector-valued regression) and `jit-ml`
//! (logistic regression) require — multiplication, transpose, Cholesky
//! factorization of SPD matrices, and linear solves built on it.

use crate::{approx_eq, vector};

/// A dense row-major matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors produced by matrix factorizations and solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix was expected to be square.
    NotSquare,
    /// Cholesky hit a non-positive pivot: input not positive definite.
    NotPositiveDefinite,
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch,
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::NotSquare => write!(f, "matrix is not square"),
            MatrixError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            MatrixError::ShapeMismatch => write!(f, "matrix shape mismatch"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics when rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// Uses the classic i-k-j loop order so the inner loop streams over
    /// contiguous rows of `other` (cache friendly for row-major storage).
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != other.rows {
            return Err(MatrixError::ShapeMismatch);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                vector::axpy(out_row, a, orow);
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if self.cols != v.len() {
            return Err(MatrixError::ShapeMismatch);
        }
        Ok((0..self.rows).map(|i| vector::dot(self.row(i), v)).collect())
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MatrixError::ShapeMismatch);
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Scales every entry by `s`, returning a new matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Adds `v` to the diagonal in place (used for ridge regularization).
    ///
    /// # Panics
    /// Panics when the matrix is not square.
    pub fn add_diagonal(&mut self, v: f64) {
        assert_eq!(self.rows, self.cols, "add_diagonal requires square matrix");
        for i in 0..self.rows {
            self[(i, i)] += v;
        }
    }

    /// Returns `true` when the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if !approx_eq(self[(i, j)], self[(j, i)], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Cholesky factorization of a symmetric positive-definite matrix:
    /// returns lower-triangular `L` with `self = L * Lᵀ`.
    pub fn cholesky(&self) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::NotSquare);
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(MatrixError::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `self * x = b` for SPD `self` via Cholesky.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        let l = self.cholesky()?;
        Ok(l.cholesky_solve(b))
    }

    /// Given `self == L` (lower triangular Cholesky factor), solves
    /// `L Lᵀ x = b` by forward then backward substitution.
    pub fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self[(i, k)] * y[k];
            }
            y[i] = s / self[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self[(k, i)] * x[k];
            }
            x[i] = s / self[(i, i)];
        }
        x
    }

    /// Solves `self * X = B` column-by-column for SPD `self`.
    pub fn solve_spd_matrix(&self, b: &Matrix) -> Result<Matrix, MatrixError> {
        if self.rows != b.rows {
            return Err(MatrixError::ShapeMismatch);
        }
        let l = self.cholesky()?;
        let mut out = Matrix::zeros(b.rows, b.cols);
        for j in 0..b.cols {
            let col = b.col(j);
            let x = l.cholesky_solve(&col);
            for i in 0..b.rows {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the ridge regression problem `min_w ||X w - y||² + lambda ||w||²`
/// through the normal equations `(XᵀX + lambda I) w = Xᵀ y`.
///
/// `lambda` must be positive: it both regularizes and guarantees the normal
/// matrix is SPD so Cholesky applies.
pub fn ridge_regression(
    x: &Matrix,
    y: &[f64],
    lambda: f64,
) -> Result<Vec<f64>, MatrixError> {
    assert!(lambda > 0.0, "ridge lambda must be positive");
    if x.rows() != y.len() {
        return Err(MatrixError::ShapeMismatch);
    }
    let xt = x.transpose();
    let mut xtx = xt.matmul(x)?;
    xtx.add_diagonal(lambda);
    let xty = xt.matvec(y)?;
    xtx.solve_spd(&xty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(approx_eq(*x, *y, tol), "{x} != {y}");
        }
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(3);
        let v = vec![1.0, -2.0, 3.0];
        assert_eq!(i.matvec(&v).unwrap(), v);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert_eq!(a.matmul(&b).unwrap_err(), MatrixError::ShapeMismatch);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn cholesky_reconstructs() {
        // SPD matrix built as B Bᵀ + I.
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.0, -1.0],
            vec![2.0, 0.3, 1.0],
        ]);
        let mut spd = b.matmul(&b.transpose()).unwrap();
        spd.add_diagonal(1.0);
        let l = spd.cholesky().unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            assert_vec_close(recon.row(i), spd.row(i), 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(m.cholesky().unwrap_err(), MatrixError::NotPositiveDefinite);
        let r = Matrix::zeros(2, 3);
        assert_eq!(r.cholesky().unwrap_err(), MatrixError::NotSquare);
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x_true = vec![1.0, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve_spd(&b).unwrap();
        assert_vec_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn solve_spd_matrix_solves_columns() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x_true = Matrix::from_rows(&[vec![1.0, 0.5], vec![-2.0, 2.0]]);
        let b = a.matmul(&x_true).unwrap();
        let x = a.solve_spd_matrix(&b).unwrap();
        for i in 0..2 {
            assert_vec_close(x.row(i), x_true.row(i), 1e-10);
        }
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        // y = 2*x exactly; tiny lambda recovers w ~ 2, huge lambda shrinks.
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![2.0, 4.0, 6.0];
        let w_small = ridge_regression(&x, &y, 1e-9).unwrap();
        assert!(approx_eq(w_small[0], 2.0, 1e-6));
        let w_big = ridge_regression(&x, &y, 1e6).unwrap();
        assert!(w_big[0].abs() < 0.01);
    }

    #[test]
    fn is_symmetric_detects_asymmetry() {
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 3.0]]);
        assert!(s.is_symmetric(1e-12));
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.5, 3.0]]);
        assert!(!a.is_symmetric(1e-12));
        assert!(!Matrix::zeros(1, 2).is_symmetric(1e-12));
    }

    #[test]
    fn col_extracts_column() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(&[vec![4.0, 6.0]]));
        assert_eq!(a.scaled(2.0), Matrix::from_rows(&[vec![2.0, 4.0]]));
        assert_eq!(
            a.add(&Matrix::zeros(2, 2)).unwrap_err(),
            MatrixError::ShapeMismatch
        );
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!(approx_eq(a.frobenius_norm(), 5.0, 1e-12));
    }
}
