//! E1: the paper's motivating claim (Example I.1) quantified — plans made
//! against the *predicted future* models beat static plans replayed under
//! drift.
//!
//! Protocol: for a cohort of rejected applicants,
//!
//! * **static** — take the minimal-diff plan against the present model
//!   (t=0), replay the same absolute changes at t = 2 on the temporally
//!   updated profile, and score it with the *true* (oracle) 2021 rule;
//! * **temporal** — take JustInTime's minimal-diff plan *for t = 2* and
//!   score that with the same oracle.
//!
//! The metric is oracle approval rate; the temporal plan should win or tie
//! (it can't lose structurally: it optimizes the right target — the paper's
//! entire point).
//!
//! Run with: `cargo bench -p jit-bench --bench temporal_advantage`

// Bench code: panics are the correct failure mode for a broken harness.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use jit_bench::{bench_config, year_slices};
use jit_constraints::ConstraintSet;
use jit_core::JustInTime;

use std::hint::black_box;

fn bench_temporal_vs_static(c: &mut Criterion) {
    use jit_data::{LendingClubGenerator, LendingClubParams};
    // E4 shows the learned models sit at the Bayes ceiling of the default
    // workload — label noise swamps the drift signal. E1 demonstrates the
    // *mechanism*, so it runs in a lower-noise regime (sharper oracle);
    // EXPERIMENTS.md reports both regimes.
    let gen = LendingClubGenerator::new(LendingClubParams {
        records_per_year: 400,
        oracle_sharpness: 5.0,
        ..Default::default()
    });
    let slices = year_slices(&gen);
    let schema = gen.schema().clone();
    let system =
        JustInTime::train(bench_config(3, false), &schema, &slices).expect("train");
    // Realistic rejected applicants from the latest historical year,
    // restricted to the "John cohort": 28-29 year olds, who cross the
    // over-30 boundary during the horizon — exactly the population whose
    // effective criteria drift (Example I.1). A larger sampling generator
    // (same distribution, fresh draws) fills the cohort.
    let cohort_gen = LendingClubGenerator::new(LendingClubParams {
        records_per_year: 4_000,
        oracle_sharpness: 5.0,
        ..Default::default()
    });
    let applicants: Vec<Vec<f64>> =
        jit_bench::rejected_cohort(&cohort_gen, 2018, usize::MAX)
            .into_iter()
            .filter(|p| (28.0..=29.0).contains(&p[0]))
            .take(20)
            .collect();
    // t=2 maps to calendar 2018+2 = 2020 in oracle terms (the oracle's
    // drift keeps extending past the generated years).
    let eval_year = 2020u32;
    let replay_t = 2usize;

    /// Per-strategy tallies: approvals and summed oracle probability.
    #[derive(Default, Clone, Copy)]
    struct Tally {
        ok: usize,
        p_sum: f64,
    }

    // Two plan choices per strategy: the fragile minimal-diff plan and the
    // robust maximal-confidence plan (paper Q4 vs Q5).
    let run_cohort = || -> ([Tally; 2], [Tally; 2], Tally, usize) {
        let mut static_t = [Tally::default(); 2];
        let mut temporal_t = [Tally::default(); 2];
        let mut none_t = Tally::default();
        let mut total = 0usize;
        let plans = [
            "SELECT * FROM candidates WHERE time = 0 ORDER BY diff LIMIT 1",
            "SELECT * FROM candidates WHERE time = 0 ORDER BY p DESC LIMIT 1",
        ];
        let temporal_plans = [
            "SELECT * FROM candidates WHERE time = 2 ORDER BY diff LIMIT 1",
            "SELECT * FROM candidates WHERE time = 2 ORDER BY p DESC LIMIT 1",
        ];
        for profile in &applicants {
            let Ok(session) = system.session(profile, &ConstraintSet::new(), None)
            else {
                continue;
            };
            total += 1;
            let update = system.default_update_fn();
            let projected = update.project(profile, replay_t);
            // Baseline: just wait and reapply unmodified at t=2.
            let p_none = gen.oracle_probability(&projected, eval_year);
            none_t.p_sum += p_none;
            if p_none > 0.5 {
                none_t.ok += 1;
            }

            for (i, sql) in plans.iter().enumerate() {
                // Static: the t=0 plan's absolute changes replayed at t=2.
                if let Ok(rs) = session.sql(sql) {
                    if let Some(cand) = rs.rows.first().and_then(|r| {
                        jit_core::tables::candidate_from_row(&schema, &rs.columns, r)
                    }) {
                        let mut replayed = projected.clone();
                        for f in 0..schema.dim() {
                            replayed[f] += cand.profile[f] - profile[f];
                        }
                        let replayed = schema.sanitize_row(&replayed);
                        let p = gen.oracle_probability(&replayed, eval_year);
                        static_t[i].p_sum += p;
                        if p > 0.5 {
                            static_t[i].ok += 1;
                        }
                    }
                }
            }
            for (i, sql) in temporal_plans.iter().enumerate() {
                // Temporal: the plan optimized for t=2 directly.
                if let Ok(rs) = session.sql(sql) {
                    if let Some(cand) = rs.rows.first().and_then(|r| {
                        jit_core::tables::candidate_from_row(&schema, &rs.columns, r)
                    }) {
                        let p = gen.oracle_probability(&cand.profile, eval_year);
                        temporal_t[i].p_sum += p;
                        if p > 0.5 {
                            temporal_t[i].ok += 1;
                        }
                    }
                }
            }
        }
        (static_t, temporal_t, none_t, total)
    };

    let (static_t, temporal_t, none_t, total) = run_cohort();
    eprintln!("\n[E1] static vs temporal plans, oracle-scored at t=2 ({eval_year})");
    eprintln!("cohort: {total} rejected applicants");
    eprintln!("{:<28} {:>10} {:>14}", "plan", "approved", "mean_oracle_p");
    for (label, t) in [
        ("no plan (wait + reapply)", none_t),
        ("static  min-diff (Q4)", static_t[0]),
        ("temporal min-diff (Q4)", temporal_t[0]),
        ("static  max-conf (Q5)", static_t[1]),
        ("temporal max-conf (Q5)", temporal_t[1]),
    ] {
        eprintln!(
            "{:<28} {:>7}/{:<3} {:>13.3}",
            label,
            t.ok,
            total,
            t.p_sum / total.max(1) as f64
        );
    }

    let mut group = c.benchmark_group("e1_temporal_vs_static");
    group.sample_size(10);
    group.bench_function("cohort_20", |b| b.iter(|| black_box(run_cohort())));
    group.finish();
}

criterion_group!(benches, bench_temporal_vs_static);
criterion_main!(benches);
