//! F1 (Figure 1) + E3: end-to-end pipeline timing and the parallel
//! candidate-generator speedup claim (§II-B: "The generators are
//! independent of each other, and thus they can be executed in parallel").
//!
//! Run with: `cargo bench -p jit-bench --bench pipeline`

// Bench code: panics are the correct failure mode for a broken harness.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jit_bench::{bench_config, bench_generator, john_session, year_slices};
use jit_constraints::ConstraintSet;
use jit_core::JustInTime;
use jit_data::LendingClubGenerator;
use std::hint::black_box;
use std::time::Instant;

/// F1: admin-side training (models generator) at demo scale.
fn bench_training(c: &mut Criterion) {
    let gen = bench_generator(200);
    let slices = year_slices(&gen);
    let schema = gen.schema().clone();
    let mut group = c.benchmark_group("f1_pipeline");
    group.sample_size(10);
    group.bench_function("train_models_T4", |b| {
        b.iter(|| {
            let system =
                JustInTime::train(bench_config(4, false), &schema, black_box(&slices))
                    .expect("train");
            black_box(system.models().len())
        })
    });
    group.finish();
}

/// F1: user-side session (candidate generation + DB population).
fn bench_session(c: &mut Criterion) {
    let gen = bench_generator(200);
    let slices = year_slices(&gen);
    let schema = gen.schema().clone();
    let system =
        JustInTime::train(bench_config(4, false), &schema, &slices).expect("train");
    let mut group = c.benchmark_group("f1_pipeline");
    group.sample_size(10);
    group.bench_function("user_session_T4", |b| {
        b.iter(|| {
            let session = john_session(black_box(&system));
            black_box(session.candidates().len())
        })
    });
    group.bench_function("canned_catalogue_T4", |b| {
        let session = john_session(&system);
        b.iter(|| black_box(session.run_all().expect("queries run").len()))
    });
    group.finish();
}

/// E3: serial vs parallel per-time-point generators, T ∈ {4, 8}.
fn bench_parallel_generators(c: &mut Criterion) {
    let gen = bench_generator(200);
    let slices = year_slices(&gen);
    let schema = gen.schema().clone();

    // Shape table printed once for EXPERIMENTS.md.
    eprintln!("\n[E3] per-time-point generators: serial vs parallel wall-clock");
    eprintln!("{:<6} {:>12} {:>12} {:>8}", "T", "serial_ms", "parallel_ms", "ratio");
    for horizon in [4usize, 8] {
        let serial = JustInTime::train(bench_config(horizon, false), &schema, &slices)
            .expect("train");
        let parallel = JustInTime::train(bench_config(horizon, true), &schema, &slices)
            .expect("train");
        let john = LendingClubGenerator::john();
        let time_it = |system: &JustInTime| {
            let start = Instant::now();
            for _ in 0..3 {
                let s = system
                    .session(&john, &ConstraintSet::new(), None)
                    .expect("session");
                black_box(s.candidates().len());
            }
            start.elapsed().as_secs_f64() * 1000.0 / 3.0
        };
        let t_serial = time_it(&serial);
        let t_parallel = time_it(&parallel);
        eprintln!(
            "{:<6} {:>12.1} {:>12.1} {:>8.2}",
            horizon,
            t_serial,
            t_parallel,
            t_serial / t_parallel
        );
    }

    let mut group = c.benchmark_group("e3_parallel_generators");
    group.sample_size(10);
    for horizon in [4usize, 8] {
        for (label, par) in [("serial", false), ("parallel", true)] {
            let system =
                JustInTime::train(bench_config(horizon, par), &schema, &slices)
                    .expect("train");
            group.bench_with_input(
                BenchmarkId::new(label, horizon),
                &system,
                |b, system| {
                    b.iter(|| black_box(john_session(system).candidates().len()))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_session, bench_parallel_generators);
criterion_main!(benches);
