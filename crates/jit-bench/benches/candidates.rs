//! E2 + E5 + E6: the candidates generator itself.
//!
//! * **E2** — convergence: the paper claims the iterative algorithm
//!   "converges after a small number of iterations"; we sweep beam width
//!   `k ∈ {1, 4, 8, 16}` and report iterations-to-first-candidate and
//!   success at a fixed iteration cap.
//! * **E5** — diversity ablation: diverse vs greedy top-k and its effect
//!   on canned-answer quality (§II-B's "diversity ensures … no
//!   degradation").
//! * **E6** — baselines: beam search vs random search vs greedy
//!   coordinate ascent at a fixed model-evaluation budget.
//!
//! Run with: `cargo bench -p jit-bench --bench candidates`

// Bench code: panics are the correct failure mode for a broken harness.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jit_bench::{bench_generator, year_slices};
use jit_constraints::set::domain_constraints;
use jit_core::baselines::{greedy_coordinate, random_search, BaselineProblem};
use jit_core::{CandidateParams, CandidatesGenerator, Objective};
use jit_data::LendingClubGenerator;
use jit_math::rng::Rng;
use jit_math::Standardizer;
use jit_ml::{Model, RandomForest, RandomForestParams};
use std::hint::black_box;

struct Fixture {
    schema: jit_data::FeatureSchema,
    model: RandomForest,
    scales: Vec<f64>,
    origin: Vec<f64>,
    constraint: jit_constraints::BoundConstraint,
}

fn fixture() -> Fixture {
    let gen = bench_generator(400);
    let slices = year_slices(&gen);
    let present = slices.last().unwrap();
    let mut rng = Rng::seeded(11);
    let model = RandomForest::fit(
        present,
        &RandomForestParams { n_trees: 20, ..Default::default() },
        &mut rng,
    );
    let scales = Standardizer::fit(&present.matrix()).stds().to_vec();
    let schema = gen.schema().clone();
    let (set, _) = domain_constraints(&schema);
    let constraint = set.compile_at(0, &schema).unwrap();
    Fixture { schema, model, scales, origin: LendingClubGenerator::john(), constraint }
}

fn generator<'a>(fx: &'a Fixture) -> CandidatesGenerator<'a> {
    CandidatesGenerator {
        model: &fx.model,
        delta: 0.5,
        origin: &fx.origin,
        constraint: &fx.constraint,
        schema: &fx.schema,
        scales: &fx.scales,
        time_index: 0,
    }
}

/// E2: beam width sweep with a convergence shape table.
fn bench_convergence(c: &mut Criterion) {
    let fx = fixture();
    let g = generator(&fx);

    eprintln!("\n[E2] beam search convergence (d=6, lending forest)");
    eprintln!(
        "{:<6} {:>18} {:>12} {:>10}",
        "k", "iters_to_first", "n_altering", "best_diff"
    );
    for k in [1usize, 4, 8, 16] {
        // Find iterations-to-first-candidate by growing the cap.
        let mut iters_to_first = None;
        for iters in 1..=8 {
            let params = CandidateParams {
                beam_width: k,
                max_iters: iters,
                top_k: 8,
                early_stop_after: 1,
                ..Default::default()
            };
            if !g.generate(&params).is_empty() {
                iters_to_first = Some(iters);
                break;
            }
        }
        let params = CandidateParams {
            beam_width: k,
            max_iters: 6,
            top_k: 64,
            early_stop_after: 0,
            ..Default::default()
        };
        let all = g.generate(&params);
        let best_diff = all
            .iter()
            .filter(|c| c.gap > 0)
            .map(|c| c.diff)
            .fold(f64::INFINITY, f64::min);
        eprintln!(
            "{:<6} {:>18} {:>12} {:>10.1}",
            k,
            iters_to_first.map_or("-".to_string(), |i| i.to_string()),
            all.len(),
            best_diff
        );
    }

    let mut group = c.benchmark_group("e2_convergence");
    group.sample_size(10);
    for k in [1usize, 4, 8, 16] {
        let params = CandidateParams { beam_width: k, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("beam_width", k), &params, |b, p| {
            b.iter(|| black_box(g.generate(p).len()))
        });
    }
    group.finish();
}

/// E5: diverse vs greedy top-k.
fn bench_diversity(c: &mut Criterion) {
    let fx = fixture();
    let g = generator(&fx);

    eprintln!("\n[E5] diversity ablation (top_k=8)");
    eprintln!(
        "{:<10} {:>12} {:>16} {:>14}",
        "selection", "n", "mean_pair_dist", "best_diff"
    );
    for (label, lambda) in [("greedy", 0.0), ("diverse", 0.5)] {
        let params = CandidateParams {
            diversity_lambda: lambda,
            top_k: 8,
            ..Default::default()
        };
        let cands = g.generate(&params);
        let mut dist = 0.0;
        let mut pairs = 0usize;
        for i in 0..cands.len() {
            for j in (i + 1)..cands.len() {
                dist +=
                    jit_math::distance::l2_diff(&cands[i].profile, &cands[j].profile);
                pairs += 1;
            }
        }
        let mean = if pairs == 0 { 0.0 } else { dist / pairs as f64 };
        let best = cands
            .iter()
            .filter(|c| c.gap > 0)
            .map(|c| c.diff)
            .fold(f64::INFINITY, f64::min);
        eprintln!("{:<10} {:>12} {:>16.1} {:>14.1}", label, cands.len(), mean, best);
    }

    let mut group = c.benchmark_group("e5_diversity");
    group.sample_size(10);
    for (label, lambda) in [("greedy", 0.0), ("diverse", 0.5)] {
        let params = CandidateParams {
            diversity_lambda: lambda,
            top_k: 8,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("selection", label),
            &params,
            |b, p| b.iter(|| black_box(g.generate(p).len())),
        );
    }
    group.finish();
}

/// E6: beam vs random vs greedy-coordinate at a fixed evaluation budget.
fn bench_baselines(c: &mut Criterion) {
    let fx = fixture();
    let g = generator(&fx);
    let problem = BaselineProblem {
        model: &fx.model,
        delta: 0.5,
        origin: &fx.origin,
        constraint: &fx.constraint,
        schema: &fx.schema,
        scales: &fx.scales,
        time_index: 0,
    };
    const BUDGET: usize = 600;

    eprintln!("\n[E6] counterfactual search baselines (budget {BUDGET} evals)");
    eprintln!("{:<18} {:>8} {:>12} {:>12}", "method", "found", "best_diff", "gap");
    {
        let params = CandidateParams {
            objective: Objective::MinDiff,
            diversity_lambda: 0.0,
            ..Default::default()
        };
        let beam = g.generate(&params);
        let beam_best = beam.iter().find(|c| c.gap > 0);
        eprintln!(
            "{:<18} {:>8} {:>12} {:>12}",
            "beam(ours)",
            !beam.is_empty(),
            beam_best.map_or("-".to_string(), |c| format!("{:.1}", c.diff)),
            beam_best.map_or("-".to_string(), |c| c.gap.to_string()),
        );
        let mut rng = Rng::seeded(4);
        let rand = random_search(&problem, BUDGET, &mut rng);
        eprintln!(
            "{:<18} {:>8} {:>12} {:>12}",
            "random",
            rand.best.is_some(),
            rand.best.as_ref().map_or("-".to_string(), |c| format!("{:.1}", c.diff)),
            rand.best.as_ref().map_or("-".to_string(), |c| c.gap.to_string()),
        );
        let greedy = greedy_coordinate(&problem, BUDGET);
        eprintln!(
            "{:<18} {:>8} {:>12} {:>12}",
            "greedy-coordinate",
            greedy.best.is_some(),
            greedy.best.as_ref().map_or("-".to_string(), |c| format!("{:.1}", c.diff)),
            greedy.best.as_ref().map_or("-".to_string(), |c| c.gap.to_string()),
        );
    }

    let mut group = c.benchmark_group("e6_baselines");
    group.sample_size(10);
    group.bench_function("beam", |b| {
        let params = CandidateParams { diversity_lambda: 0.0, ..Default::default() };
        b.iter(|| black_box(g.generate(&params).len()))
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            let mut rng = Rng::seeded(4);
            black_box(random_search(&problem, BUDGET, &mut rng).best.is_some())
        })
    });
    group.bench_function("greedy_coordinate", |b| {
        b.iter(|| black_box(greedy_coordinate(&problem, BUDGET).best.is_some()))
    });
    group.finish();

    // Sanity: the model must actually reject the origin, or E6 is vacuous.
    assert!(fx.model.predict_proba(&fx.origin) <= 0.5);
}

criterion_group!(benches, bench_convergence, bench_diversity, bench_baselines);
criterion_main!(benches);
