//! E4: quality of predicted future models.
//!
//! The paper adopts Lampert's EDD to predict future models; this bench
//! quantifies the choice on the drifting lending workload. For each
//! lead time `t ∈ {1, 2, 3}`, models are trained on 2007..2015 and
//! evaluated on the *actual* 2015+t slice (which the generator can
//! produce because the synthetic drift extends past the training window):
//!
//! * **oracle** — a forest trained on the true future slice (upper bound),
//! * **edd** — the paper's method,
//! * **param** — parameter extrapolation (Kumagai & Iwata-style),
//! * **frozen** — the present model reused (the baseline to beat).
//!
//! Run with: `cargo bench -p jit-bench --bench future_models`

// Bench code: panics are the correct failure mode for a broken harness.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jit_bench::bench_generator;
use jit_data::LendingClubGenerator;
use jit_math::rng::Rng;
use jit_ml::metrics::roc_auc;
use jit_ml::{Dataset, Model, RandomForest, RandomForestParams};
use jit_temporal::future::{
    FutureModelsGenerator, FutureModelsParams, FuturePredictor,
};
use std::hint::black_box;

fn auc_on(model: &dyn Model, data: &Dataset) -> f64 {
    let scores: Vec<f64> = data.rows().map(|r| model.predict_proba(r)).collect();
    roc_auc(&scores, data.labels())
}

fn params_for(predictor: FuturePredictor, horizon: usize) -> FutureModelsParams {
    FutureModelsParams {
        horizon,
        predictor,
        n_landmarks: 60,
        pool_slices: 4,
        forest: RandomForestParams { n_trees: 20, ..Default::default() },
        seed: 7,
        ..Default::default()
    }
}

fn bench_future_model_quality(c: &mut Criterion) {
    let gen = bench_generator(400);
    // History 2007..=2015; evaluation slices 2016..=2018.
    let history: Vec<Dataset> = (2007..=2015)
        .map(|y| LendingClubGenerator::to_dataset(&gen.records_for_year(y)))
        .collect();
    let horizon = 3usize;

    let edd = FutureModelsGenerator::new(params_for(FuturePredictor::Edd, horizon))
        .generate(&history)
        .expect("edd generation");
    let param = FutureModelsGenerator::new(params_for(
        FuturePredictor::ParamExtrapolation,
        horizon,
    ))
    .generate(&history)
    .expect("param generation");
    let frozen =
        FutureModelsGenerator::new(params_for(FuturePredictor::Frozen, horizon))
            .generate(&history)
            .expect("frozen generation");

    eprintln!("\n[E4] future model AUC on the *actual* future slice");
    eprintln!(
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "lead_t", "bayes", "edd", "param", "frozen"
    );
    for t in 1..=horizon {
        let year = 2015 + t as u32;
        let future = LendingClubGenerator::to_dataset(&gen.records_for_year(year));
        // The Bayes ceiling: the generator's own approval probability
        // scored against the sampled labels (irreducible label noise).
        let bayes_scores: Vec<f64> =
            future.rows().map(|r| gen.oracle_probability(r, year)).collect();
        let bayes = roc_auc(&bayes_scores, future.labels());
        eprintln!(
            "{:<8} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            t,
            bayes,
            auc_on(edd[t].model.as_ref(), &future),
            auc_on(param[t].model.as_ref(), &future),
            auc_on(frozen[t].model.as_ref(), &future),
        );
    }

    let mut group = c.benchmark_group("e4_future_models");
    group.sample_size(10);
    for (label, predictor) in [
        ("edd", FuturePredictor::Edd),
        ("param", FuturePredictor::ParamExtrapolation),
        ("frozen", FuturePredictor::Frozen),
    ] {
        group.bench_with_input(
            BenchmarkId::new("generate", label),
            &predictor,
            |b, &p| {
                b.iter(|| {
                    let models = FutureModelsGenerator::new(params_for(p, horizon))
                        .generate(black_box(&history))
                        .expect("generation");
                    black_box(models.len())
                })
            },
        );
    }
    group.finish();
}

/// Substrate microbenches: forest training and embedding computation.
fn bench_substrates(c: &mut Criterion) {
    let gen = bench_generator(400);
    let data = LendingClubGenerator::to_dataset(&gen.records_for_year(2015));
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.bench_function("forest_fit_4800x6", |b| {
        b.iter(|| {
            let mut rng = Rng::seeded(3);
            let f = RandomForest::fit(
                black_box(&data),
                &RandomForestParams { n_trees: 10, ..Default::default() },
                &mut rng,
            );
            black_box(f.n_trees())
        })
    });
    group.bench_function("forest_predict_1k", |b| {
        let mut rng = Rng::seeded(3);
        let f = RandomForest::fit(
            &data,
            &RandomForestParams { n_trees: 20, ..Default::default() },
            &mut rng,
        );
        b.iter(|| {
            let mut acc = 0.0;
            for row in data.rows().take(1000) {
                acc += f.predict_proba(black_box(row));
            }
            black_box(acc)
        })
    });
    group.bench_function("embedding_slice_400", |b| {
        use jit_temporal::embedding::EmbeddingSpace;
        let mut rng = Rng::seeded(5);
        let slices = vec![data.clone()];
        let space = EmbeddingSpace::fit(&slices, 60, &mut rng);
        b.iter(|| black_box(space.embed(&data).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_future_model_quality, bench_substrates);
criterion_main!(benches);
