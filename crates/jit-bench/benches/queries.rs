//! F2 (Figure 2): the six canned queries — result shapes and latency over
//! a populated candidates database.
//!
//! Run with: `cargo bench -p jit-bench --bench queries`

// Bench code: panics are the correct failure mode for a broken harness.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jit_bench::{john_session, trained_system};
use jit_core::CannedQuery;
use std::hint::black_box;

fn bench_canned_queries(c: &mut Criterion) {
    let (system, _) = trained_system(200, 4, false);
    let session = john_session(&system);

    // Shape table: each query's answer on the John database.
    eprintln!("\n[F2] canned queries over John's candidates database");
    eprintln!(
        "(candidates: {}, temporal inputs: {})",
        session.db().row_count("candidates").unwrap(),
        session.db().row_count("temporal_inputs").unwrap()
    );
    for q in CannedQuery::catalogue() {
        match session.run(&q) {
            Ok(insight) => eprintln!("  {}: {}", q.id(), insight.headline),
            Err(e) => eprintln!("  {}: ERROR {e}", q.id()),
        }
    }

    let mut group = c.benchmark_group("f2_canned_queries");
    for q in CannedQuery::catalogue() {
        group.bench_with_input(BenchmarkId::new("sql", q.id()), &q, |b, q| {
            let sql = q.sql();
            b.iter(|| black_box(session.sql(&sql).expect("query runs").len()))
        });
    }
    group.finish();
}

/// Scaling: Q3 (the correlated-EXISTS join query) vs candidates-table size.
fn bench_q3_scaling(c: &mut Criterion) {
    use jit_core::tables;
    use jit_core::Candidate;
    use jit_data::FeatureSchema;
    use jit_db::Database;
    use jit_math::rng::Rng;

    let schema = FeatureSchema::lending_club();
    let q3 = CannedQuery::DominantFeature { feature: "income".to_string() };
    let mut group = c.benchmark_group("f2_q3_scaling");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let db = Database::new();
        tables::create_tables(&db, &schema).unwrap();
        let horizon = 9usize;
        let mut rng = Rng::seeded(42);
        let inputs: Vec<Vec<f64>> = (0..=horizon)
            .map(|t| vec![29.0 + t as f64, 0.0, 46_000.0, 2_300.0, 4.0, 24_000.0])
            .collect();
        tables::insert_temporal_inputs(&db, &inputs).unwrap();
        let candidates: Vec<Candidate> = (0..n)
            .map(|i| {
                let t = i % (horizon + 1);
                let gap = rng.below(3);
                Candidate {
                    time_index: t,
                    profile: vec![
                        29.0 + t as f64,
                        0.0,
                        46_000.0 + rng.uniform(-2_000.0, 8_000.0),
                        2_300.0,
                        4.0,
                        24_000.0,
                    ],
                    gap,
                    diff: rng.uniform(0.0, 5_000.0),
                    confidence: rng.uniform(0.4, 0.95),
                }
            })
            .collect();
        tables::insert_candidates(&db, &candidates).unwrap();
        group.bench_with_input(BenchmarkId::new("rows", n), &db, |b, db| {
            let sql = q3.sql();
            b.iter(|| black_box(db.execute(&sql).expect("query runs").len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_canned_queries, bench_q3_scaling);
criterion_main!(benches);
