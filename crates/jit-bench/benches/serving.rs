//! Batch serving vs serial sessions: the amortization claim of the
//! serving layer (`JustInTime::serve_batch`).
//!
//! A batch of N users shares per-time-point move-hint extraction, the
//! training-time compiled domain constraints and the DDL-initialized
//! database template; serial sessions repeat the per-call share of that
//! work N times. On a multi-core host the `PerUser` fan-out adds the
//! parallel win on top (bit-identical output either way).
//!
//! Run with: `cargo bench -p jit-bench --bench serving`

// Bench code: panics are the correct failure mode for a broken harness.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use jit_bench::{bench_generator, serving_cohort, trained_system};
use std::hint::black_box;

fn bench_serving(c: &mut Criterion) {
    let (system, _) = trained_system(200, 2, true);
    let gen = bench_generator(200);
    let cohort = serving_cohort(&system, &gen, 8);
    assert_eq!(cohort.len(), 8, "cohort fixture must fill up");

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("serial_sessions_8xT2", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for request in &cohort {
                let session = system
                    .session(&request.profile, &request.constraints, None)
                    .expect("session");
                total += session.candidates().len();
            }
            black_box(total)
        })
    });
    group.bench_function("batch_sessions_8xT2", |b| {
        b.iter(|| {
            let sessions = system.serve_batch(black_box(&cohort)).expect("batch");
            black_box(sessions.iter().map(|s| s.candidates().len()).sum::<usize>())
        })
    });
    // Returning users: the fingerprint diff replays unchanged time
    // points from stored snapshots instead of re-searching.
    let no_drift = jit_bench::returning_cohort(&system, &cohort);
    group.bench_function("reserve_no_drift_8xT2", |b| {
        b.iter(|| {
            let sessions = system.reserve_batch(black_box(&no_drift)).expect("reserve");
            black_box(sessions.iter().map(|s| s.candidates().len()).sum::<usize>())
        })
    });
    let drifted = jit_bench::drifted_returning_cohort(&system, &cohort);
    group.bench_function("reserve_drift25_8xT2", |b| {
        b.iter(|| {
            let sessions = system.reserve_batch(black_box(&drifted)).expect("reserve");
            black_box(sessions.iter().map(|s| s.candidates().len()).sum::<usize>())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
