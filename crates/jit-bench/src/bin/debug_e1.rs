//! Diagnostic for the E1 bench: prints the static and temporal plans of a
//! few John-cohort applicants with their oracle transfer scores.

// CLI tool: top-level unwraps abort with a message, which is the intended UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use jit_bench::{bench_config, year_slices};
use jit_constraints::ConstraintSet;
use jit_core::JustInTime;
use jit_data::{LendingClubGenerator, LendingClubParams};

fn main() {
    let gen = LendingClubGenerator::new(LendingClubParams {
        records_per_year: 400,
        oracle_sharpness: 5.0,
        ..Default::default()
    });
    let slices = year_slices(&gen);
    let schema = gen.schema().clone();
    let system = JustInTime::train(bench_config(3, false), &schema, &slices).unwrap();

    let cohort_gen = LendingClubGenerator::new(LendingClubParams {
        records_per_year: 4_000,
        oracle_sharpness: 5.0,
        ..Default::default()
    });
    let applicants: Vec<Vec<f64>> =
        jit_bench::rejected_cohort(&cohort_gen, 2018, usize::MAX)
            .into_iter()
            .filter(|p| (28.0..=29.0).contains(&p[0]))
            .take(6)
            .collect();

    let fmt = |p: &[f64]| -> String {
        format!(
            "age={} own={} inc={:.0} debt={:.0} sen={} loan={:.0}",
            p[0], p[1], p[2], p[3], p[4], p[5]
        )
    };

    for profile in &applicants {
        let session = system.session(profile, &ConstraintSet::new(), None).unwrap();
        let update = system.default_update_fn();
        let projected = update.project(profile, 2);
        println!("applicant: {}", fmt(profile));
        println!("  oracle p(2018) = {:.3}", gen.oracle_probability(profile, 2018));
        println!("  projected t=2:  {}", fmt(&projected));
        println!(
            "  oracle p(2020) unmodified projected = {:.3}",
            gen.oracle_probability(&projected, 2020)
        );

        for (label, sql) in [
            (
                "static q5",
                "SELECT * FROM candidates WHERE time = 0 ORDER BY p DESC LIMIT 1",
            ),
            (
                "temporal q5",
                "SELECT * FROM candidates WHERE time = 2 ORDER BY p DESC LIMIT 1",
            ),
        ] {
            let rs = session.sql(sql).unwrap();
            let Some(cand) = rs.rows.first().and_then(|r| {
                jit_core::tables::candidate_from_row(&schema, &rs.columns, r)
            }) else {
                println!("  {label}: no candidate");
                continue;
            };
            let eval_profile = if label.starts_with("static") {
                let mut replayed = projected.clone();
                for f in 0..schema.dim() {
                    replayed[f] += cand.profile[f] - profile[f];
                }
                schema.sanitize_row(&replayed)
            } else {
                cand.profile.clone()
            };
            println!(
                "  {label}: plan {} | model_p={:.2} -> oracle p(2020)={:.3}",
                fmt(&eval_profile),
                cand.confidence,
                gen.oracle_probability(&eval_profile, 2020)
            );
        }
        println!();
    }
}
