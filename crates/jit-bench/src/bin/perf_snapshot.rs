//! Machine-readable perf snapshot for the `BENCH_*.json` trajectory files.
//!
//! Times the three hot-path workloads the perf acceptance criteria track —
//! models-generator training (`future_models`), the end-to-end pipeline
//! (`pipeline`) and the candidates search (`candidates`) — and prints one
//! JSON object to stdout, so snapshots are reproducible with:
//!
//! ```text
//! cargo run --release -p jit-bench --bin perf_snapshot            # full
//! cargo run --release -p jit-bench --bin perf_snapshot -- --scale smoke
//! ```
//!
//! `--scale smoke` shrinks every workload (fewer records, trees, reps) so
//! CI can *run* the benches — not just compile them — in seconds.

use jit_bench::{bench_config, bench_generator, john_session, year_slices};
use jit_core::JustInTime;
use jit_data::LendingClubGenerator;
use jit_ml::{Dataset, RandomForestParams};
use jit_temporal::future::{
    FutureModelsGenerator, FutureModelsParams, FuturePredictor,
};
use std::hint::black_box;
use std::time::Instant;

struct Scale {
    name: &'static str,
    records_per_year: usize,
    n_trees: usize,
    horizon: usize,
    reps: usize,
}

const FULL: Scale =
    Scale { name: "full", records_per_year: 400, n_trees: 20, horizon: 4, reps: 5 };

const SMOKE: Scale =
    Scale { name: "smoke", records_per_year: 60, n_trees: 6, horizon: 2, reps: 2 };

/// Times `f` (`reps` samples after one warm-up); returns (mean_ms, min_ms).
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> (f64, f64) {
    f();
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        total += ms;
        min = min.min(ms);
    }
    (total / reps as f64, min)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = match args.iter().position(|a| a == "--scale") {
        Some(i) if args.get(i + 1).map(String::as_str) == Some("smoke") => SMOKE,
        Some(i) if args.get(i + 1).map(String::as_str) == Some("full") => FULL,
        Some(_) => {
            eprintln!("usage: perf_snapshot [--scale full|smoke]");
            std::process::exit(2);
        }
        None => FULL,
    };
    let mut entries: Vec<(String, f64, f64)> = Vec::new();

    // --- future_models: models-generator training per predictor --------
    let gen = bench_generator(scale.records_per_year);
    let history: Vec<Dataset> = (2007..=2015)
        .map(|y| LendingClubGenerator::to_dataset(&gen.records_for_year(y)))
        .collect();
    for (label, predictor) in [
        ("edd", FuturePredictor::Edd),
        ("param", FuturePredictor::ParamExtrapolation),
        ("frozen", FuturePredictor::Frozen),
    ] {
        let params = FutureModelsParams {
            horizon: scale.horizon,
            predictor,
            n_landmarks: 60,
            pool_slices: 4,
            forest: RandomForestParams { n_trees: scale.n_trees, ..Default::default() },
            seed: 7,
            ..Default::default()
        };
        let (mean, min) = time_ms(scale.reps, || {
            let models = FutureModelsGenerator::new(params.clone())
                .generate(black_box(&history))
                .expect("generation");
            black_box(models.len());
        });
        entries.push((
            format!("future_models/generate_{label}_T{}", scale.horizon),
            mean,
            min,
        ));
    }

    // --- pipeline: admin training + user session -----------------------
    let gen = bench_generator(scale.records_per_year.min(200));
    let slices = year_slices(&gen);
    let schema = gen.schema().clone();
    let config = bench_config(scale.horizon, true);
    let (mean, min) = time_ms(scale.reps, || {
        let system = JustInTime::train(config.clone(), &schema, black_box(&slices))
            .expect("train");
        black_box(system.models().len());
    });
    entries.push((format!("pipeline/train_models_T{}", scale.horizon), mean, min));

    let system = JustInTime::train(config, &schema, &slices).expect("train");
    let (mean, min) = time_ms(scale.reps, || {
        let session = john_session(black_box(&system));
        black_box(session.candidates().len());
    });
    entries.push((format!("pipeline/user_session_T{}", scale.horizon), mean, min));

    // --- candidates: one generator run over the present model ----------
    let (mean, min) = time_ms(scale.reps, || {
        let session = john_session(black_box(&system));
        black_box(session.run_all().expect("queries").len());
    });
    entries.push(("candidates/session_canned_queries".to_string(), mean, min));

    // --- JSON out -------------------------------------------------------
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!("{{");
    println!("  \"schema_version\": 1,");
    println!("  \"scale\": \"{}\",", scale.name);
    println!("  \"reps\": {},", scale.reps);
    println!("  \"threads_available\": {threads},");
    println!("  \"timings_ms\": {{");
    let n = entries.len();
    for (i, (name, mean, min)) in entries.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        println!("    \"{name}\": {{ \"mean\": {mean:.2}, \"min\": {min:.2} }}{comma}");
    }
    println!("  }}");
    println!("}}");
}
