//! Machine-readable perf snapshot for the `BENCH_*.json` trajectory
//! files, plus the CI perf-regression gate.
//!
//! Times the hot-path workloads the perf acceptance criteria track —
//! models-generator training (`future_models`), the end-to-end pipeline
//! (`pipeline`), the candidates search (`candidates`), multi-user
//! serving (`serve`), returning-user re-serving under the fingerprint
//! diff (`reserve`, no-drift and 25%-drift cohorts), the TCP serving
//! tier under a closed-loop load burst (`net`) and the synthetic
//! population workloads — a 1000-user cohort batch-served through the
//! sharded tier (shared cell cache vs the legacy per-user-cache path),
//! the recourse-invalidation refresh/classify loop and the
//! retrain → refresh-ahead → returning-user pass (`synth`) — and prints
//! one JSON object to stdout, so snapshots are reproducible with:
//!
//! ```text
//! cargo run --release -p jit-bench --bin perf_snapshot            # full
//! cargo run --release -p jit-bench --bin perf_snapshot -- --scale smoke
//! ```
//!
//! `--scale smoke` shrinks every workload (fewer records, trees, reps) so
//! CI can *run* the benches — not just compile them — in seconds.
//!
//! ## Threads sweep
//!
//! ```text
//! perf_snapshot --scale smoke --threads 1,2,4
//! ```
//!
//! re-runs the scaling-sensitive workloads (training, batch serving,
//! synthetic generation) once per requested thread count and emits a
//! sweep-only snapshot whose entries carry an `@tN` suffix, plus a
//! `"threads_sweep"` field. The sweep is a scaling-curve *artifact* —
//! thread counts above the runner's cores measure oversubscription, not
//! regressions — so it cannot be combined with `--check`.
//!
//! ## Regression gate
//!
//! ```text
//! perf_snapshot --scale smoke --check BENCH_3.json --tolerance 1.25
//! ```
//!
//! compares the fresh snapshot against the `"timings_ms"` block of the
//! given baseline file and **exits non-zero** when any benchmark present
//! in both regresses past `tolerance` (fresh `min` > baseline `min` ×
//! tolerance). `min`-of-reps is compared because it is the
//! noise-robust statistic on shared CI runners; baselines below the
//! `--floor` (default 1 ms) are reported but not gated, since sub-ms
//! timings are timer-noise dominated across runner generations. The
//! report goes to stderr so stdout stays valid snapshot JSON for
//! artifact upload.

// CLI tool: top-level unwraps abort with a message, which is the intended UX.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use jit_bench::{
    bench_config, bench_generator, drifted_returning_cohort, john_session,
    returning_cohort, serving_cohort, year_slices,
};
use jit_core::{JustInTime, TimePointServe, UserRequest};
use jit_data::scenario::ScenarioSpec;
use jit_data::{LendingClubGenerator, SyntheticGenerator};
use jit_db::{DurableDatabase, MemFile, WalConfig};
use jit_ml::{Dataset, RandomForestParams};
use jit_service::invalidation::insight_digests;
use jit_service::loadgen::{self, LoadMode, LoadPlan};
use jit_service::net::{NetServer, NetServerConfig, ServeBackend};
use jit_service::{
    shard_index, CohortMember, DbSnapshotStore, JitService, MemorySnapshotStore,
    RefreshAheadOptions, ServeRequest, ShardedService, SnapshotStore,
};
use jit_temporal::future::{
    FutureModelsGenerator, FutureModelsParams, FuturePredictor,
};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone, Copy)]
struct Scale {
    name: &'static str,
    records_per_year: usize,
    n_trees: usize,
    horizon: usize,
    reps: usize,
    batch_users: usize,
}

const FULL: Scale = Scale {
    name: "full",
    records_per_year: 400,
    n_trees: 20,
    horizon: 4,
    reps: 5,
    batch_users: 8,
};

const SMOKE: Scale = Scale {
    name: "smoke",
    records_per_year: 60,
    n_trees: 6,
    horizon: 2,
    reps: 3,
    batch_users: 8,
};

/// Times `f` (`reps` samples after one warm-up); returns (mean_ms, min_ms).
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> (f64, f64) {
    f();
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        // jit-analyze: allow(no-wall-clock) — this binary exists to measure wall time; timings feed the perf report, not digests
        let start = Instant::now();
        f();
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        total += ms;
        min = min.min(ms);
    }
    (total / reps as f64, min)
}

struct Args {
    scale: Scale,
    check: Option<String>,
    tolerance: f64,
    floor_ms: f64,
    threads_sweep: Option<Vec<usize>>,
}

fn usage() -> ! {
    eprintln!(
        "usage: perf_snapshot [--scale full|smoke] \
         [--check BASELINE.json [--tolerance RATIO] [--floor MS]] \
         [--threads N,N,...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = Args {
        scale: FULL,
        check: None,
        tolerance: 1.25,
        floor_ms: 1.0,
        threads_sweep: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                match argv.get(i + 1).map(String::as_str) {
                    Some("full") => out.scale = FULL,
                    Some("smoke") => out.scale = SMOKE,
                    _ => usage(),
                }
                i += 2;
            }
            "--check" => {
                let Some(path) = argv.get(i + 1) else { usage() };
                out.check = Some(path.clone());
                i += 2;
            }
            "--tolerance" => {
                let Some(t) = argv.get(i + 1).and_then(|t| t.parse::<f64>().ok())
                else {
                    usage()
                };
                if !(t.is_finite() && t >= 1.0) {
                    usage()
                }
                out.tolerance = t;
                i += 2;
            }
            "--floor" => {
                let Some(f) = argv.get(i + 1).and_then(|f| f.parse::<f64>().ok())
                else {
                    usage()
                };
                if !(f.is_finite() && f >= 0.0) {
                    usage()
                }
                out.floor_ms = f;
                i += 2;
            }
            "--threads" => {
                let Some(list) = argv.get(i + 1) else { usage() };
                let counts: Vec<usize> = list
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .unwrap_or_else(|_| usage());
                if counts.is_empty() || counts.contains(&0) {
                    usage()
                }
                out.threads_sweep = Some(counts);
                i += 2;
            }
            _ => usage(),
        }
    }
    // The sweep measures scaling curves, not regressions; gating one
    // against a flat baseline would be meaningless.
    if out.threads_sweep.is_some() && out.check.is_some() {
        usage()
    }
    out
}

/// Extracts `name -> min_ms` from the first `"timings_ms"` object of a
/// snapshot-shaped JSON file. A deliberately tiny scanner (the workspace
/// is dependency-free): entries look like
/// `"bench/name": { "mean": 1.23, "min": 1.11 }`.
fn parse_baseline_timings(text: &str) -> Vec<(String, f64)> {
    let Some(anchor) = text.find("\"timings_ms\"") else { return Vec::new() };
    let rest = &text[anchor..];
    let Some(open) = rest.find('{') else { return Vec::new() };
    let body = &rest[open + 1..];
    // The block ends at the first `}` that closes it; entry objects nest
    // exactly one level deep.
    let mut out = Vec::new();
    let mut depth = 1usize;
    let mut cursor = body;
    while depth > 0 {
        let Some(q) = cursor.find(['"', '{', '}']) else { break };
        match &cursor[q..=q] {
            "{" => {
                depth += 1;
                cursor = &cursor[q + 1..];
            }
            "}" => {
                depth -= 1;
                cursor = &cursor[q + 1..];
            }
            _ => {
                let after = &cursor[q + 1..];
                let Some(endq) = after.find('"') else { break };
                let key = &after[..endq];
                cursor = &after[endq + 1..];
                if depth == 1 && key.contains('/') {
                    // Benchmark entry: scan its object for "min".
                    if let Some(obj_end) = cursor.find('}') {
                        let obj = &cursor[..obj_end];
                        if let Some(min) = scan_number_field(obj, "\"min\"") {
                            out.push((key.to_string(), min));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Finds `"field": <number>` inside a flat object body.
fn scan_number_field(obj: &str, field: &str) -> Option<f64> {
    let at = obj.find(field)?;
    let after = &obj[at + field.len()..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Compares fresh entries against a baseline; returns the number of
/// regressions past tolerance and prints the gate report to stderr.
fn check_regressions(
    entries: &[(String, f64, f64)],
    baseline_path: &str,
    tolerance: f64,
    floor_ms: f64,
) -> usize {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf gate: cannot read {baseline_path}: {e}");
            return 1;
        }
    };
    let baseline = parse_baseline_timings(&text);
    if baseline.is_empty() {
        eprintln!("perf gate: no \"timings_ms\" entries found in {baseline_path}");
        return 1;
    }
    let mut regressions = 0usize;
    let mut compared = 0usize;
    eprintln!(
        "perf gate: baseline {baseline_path}, tolerance {tolerance}x, \
         floor {floor_ms} ms"
    );
    for (name, _, fresh_min) in entries {
        let Some((_, base_min)) =
            baseline.iter().find(|(base_name, _)| base_name == name)
        else {
            eprintln!("  [skip] {name} (not in baseline)");
            continue;
        };
        // Sub-floor baselines are timer-noise dominated (and magnify
        // cross-runner constant factors); report them without gating.
        if *base_min < floor_ms {
            eprintln!(
                "  [skip] {name} (baseline {base_min:.2} ms below the \
                 {floor_ms:.2} ms gate floor)"
            );
            continue;
        }
        compared += 1;
        let ratio = fresh_min / base_min;
        let verdict = if *fresh_min > base_min * tolerance {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        eprintln!(
            "  [{verdict}] {name}: {fresh_min:.2} ms vs baseline {base_min:.2} ms \
             ({ratio:.2}x)"
        );
    }
    if compared == 0 {
        eprintln!("perf gate: no overlapping benchmarks — gate is vacuous, failing");
        return 1;
    }
    eprintln!(
        "perf gate: {compared} compared, {regressions} regressed past {tolerance}x"
    );
    regressions
}

/// Prints the snapshot JSON document to stdout.
fn print_snapshot(
    scale: Scale,
    entries: &[(String, f64, f64)],
    sweep: Option<&[usize]>,
) {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!("{{");
    println!("  \"schema_version\": 1,");
    println!("  \"scale\": \"{}\",", scale.name);
    println!("  \"reps\": {},", scale.reps);
    println!("  \"threads_available\": {threads},");
    if let Some(counts) = sweep {
        let list: Vec<String> = counts.iter().map(usize::to_string).collect();
        println!("  \"threads_sweep\": [{}],", list.join(", "));
    }
    println!("  \"timings_ms\": {{");
    let n = entries.len();
    for (i, (name, mean, min)) in entries.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        println!("    \"{name}\": {{ \"mean\": {mean:.2}, \"min\": {min:.2} }}{comma}");
    }
    println!("  }}");
    println!("}}");
}

/// The `--threads` sweep: the scaling-sensitive workloads — forest
/// training, the amortized batch-serving layer and parallel synthetic
/// generation — once per requested thread count, with entries suffixed
/// `@tN` so a scaling curve can be read straight off the snapshot.
fn run_sweep(scale: Scale, thread_counts: &[usize]) {
    let mut entries: Vec<(String, f64, f64)> = Vec::new();
    let gen = bench_generator(scale.records_per_year.min(200));
    let slices = year_slices(&gen);
    let schema = gen.schema().clone();
    let h = scale.horizon;
    // Generation is microseconds per row; sweep a slice big enough for
    // the parallel dispatch to matter.
    let synth_rows =
        if scale.records_per_year >= FULL.records_per_year { 100_000 } else { 20_000 };
    let spec = ScenarioSpec::credit(0x5eed).with_rows_per_slice(synth_rows);
    for &t in thread_counts {
        let mut config = bench_config(h, true);
        config.threads = t;
        config.batch_threads = t;

        let (mean, min) = time_ms(scale.reps, || {
            let system = JustInTime::train(config.clone(), &schema, black_box(&slices))
                .expect("sweep training must succeed");
            black_box(system.models().len());
        });
        entries.push((format!("sweep/train_models_T{h}@t{t}"), mean, min));

        let system = JustInTime::train(config.clone(), &schema, &slices)
            .expect("sweep training must succeed");
        let n = 2 * scale.batch_users;
        let cohort = serving_cohort(&system, &gen, n);
        let (mean, min) = time_ms(scale.reps, || {
            let sessions = system.serve_batch(black_box(&cohort)).expect("sweep batch");
            black_box(sessions.iter().map(|s| s.candidates().len()).sum::<usize>());
        });
        entries.push((format!("sweep/batch_sessions_{n}xT{h}@t{t}"), mean, min));

        let synth = SyntheticGenerator::new(&spec, t);
        let present = synth.present_slice();
        let (mean, min) = time_ms(scale.reps, || {
            black_box(synth.slice(black_box(present)).len());
        });
        entries.push((format!("sweep/synth_slice_{synth_rows}x@t{t}"), mean, min));
    }
    print_snapshot(scale, &entries, Some(thread_counts));
}

fn main() {
    let args = parse_args();
    let scale = args.scale;
    if let Some(counts) = &args.threads_sweep {
        run_sweep(scale, counts);
        return;
    }
    let mut entries: Vec<(String, f64, f64)> = Vec::new();

    // --- future_models: models-generator training per predictor --------
    let gen = bench_generator(scale.records_per_year);
    let history: Vec<Dataset> = (2007..=2015)
        .map(|y| LendingClubGenerator::to_dataset(&gen.records_for_year(y)))
        .collect();
    for (label, predictor) in [
        ("edd", FuturePredictor::Edd),
        ("param", FuturePredictor::ParamExtrapolation),
        ("frozen", FuturePredictor::Frozen),
    ] {
        let params = FutureModelsParams {
            horizon: scale.horizon,
            predictor,
            n_landmarks: 60,
            pool_slices: 4,
            forest: RandomForestParams { n_trees: scale.n_trees, ..Default::default() },
            seed: 7,
            ..Default::default()
        };
        let (mean, min) = time_ms(scale.reps, || {
            let models = FutureModelsGenerator::new(params.clone())
                .generate(black_box(&history))
                .expect("generation");
            black_box(models.len());
        });
        entries.push((
            format!("future_models/generate_{label}_T{}", scale.horizon),
            mean,
            min,
        ));
    }

    // --- pipeline: admin training + user session -----------------------
    let gen = bench_generator(scale.records_per_year.min(200));
    let slices = year_slices(&gen);
    let schema = gen.schema().clone();
    let config = bench_config(scale.horizon, true);
    let (mean, min) = time_ms(scale.reps, || {
        let system = JustInTime::train(config.clone(), &schema, black_box(&slices))
            .expect("train");
        black_box(system.models().len());
    });
    entries.push((format!("pipeline/train_models_T{}", scale.horizon), mean, min));

    let system_arc =
        Arc::new(JustInTime::train(config, &schema, &slices).expect("train"));
    let system = &*system_arc;
    let (mean, min) = time_ms(scale.reps, || {
        let session = john_session(black_box(system));
        black_box(session.candidates().len());
    });
    entries.push((format!("pipeline/user_session_T{}", scale.horizon), mean, min));

    // --- candidates: one generator run over the present model ----------
    let (mean, min) = time_ms(scale.reps, || {
        let session = john_session(black_box(system));
        black_box(session.run_all().expect("queries").len());
    });
    entries.push(("candidates/session_canned_queries".to_string(), mean, min));

    // --- serve: serial sessions vs the amortized batch layer -----------
    let cohort = serving_cohort(system, &gen, scale.batch_users);
    let n = cohort.len();
    let (mean, min) = time_ms(scale.reps, || {
        let mut total = 0usize;
        for request in &cohort {
            let session = system
                .session(&request.profile, &request.constraints, None)
                .expect("session");
            total += session.candidates().len();
        }
        black_box(total);
    });
    entries.push((format!("serve/serial_sessions_{n}xT{}", scale.horizon), mean, min));
    let (mean, min) = time_ms(scale.reps, || {
        let sessions = system.serve_batch(black_box(&cohort)).expect("batch");
        black_box(sessions.iter().map(|s| s.candidates().len()).sum::<usize>());
    });
    entries.push((format!("serve/batch_sessions_{n}xT{}", scale.horizon), mean, min));

    // --- reserve: returning users against the fingerprint diff ---------
    // No drift: every time point replays from the snapshots (the pure
    // refresh path). 25% drift: every fourth user returns with a changed
    // profile, so a quarter of the cohort's (user, t) pairs recompute.
    let no_drift = returning_cohort(system, &cohort);
    let (mean, min) = time_ms(scale.reps, || {
        let sessions = system.reserve_batch(black_box(&no_drift)).expect("reserve");
        black_box(sessions.iter().map(|s| s.candidates().len()).sum::<usize>());
    });
    entries.push((format!("reserve/no_drift_{n}xT{}", scale.horizon), mean, min));
    let drifted = drifted_returning_cohort(system, &cohort);
    let (mean, min) = time_ms(scale.reps, || {
        let sessions = system.reserve_batch(black_box(&drifted)).expect("reserve");
        black_box(sessions.iter().map(|s| s.candidates().len()).sum::<usize>());
    });
    entries.push((format!("reserve/drift25_{n}xT{}", scale.horizon), mean, min));

    // --- service: the typed front end (sharded dispatch + persisted
    //     snapshot refresh) ----------------------------------------------
    // Sharded mixed workload: a 2n-user population split across 4 shard
    // workers; each rep serves n fresh users (cold batch) and refreshes
    // the n returning ones from the per-shard stores in the same pass.
    let population: Vec<CohortMember> = serving_cohort(system, &gen, 2 * n)
        .into_iter()
        .enumerate()
        .map(|(i, request)| CohortMember::new(format!("svc-{i}"), request))
        .collect();
    let (returning_half, fresh_half) = population.split_at(n);
    let sharded = ShardedService::from_shared(Arc::clone(&system_arc), 4, 0, |_| {
        Arc::new(MemorySnapshotStore::new())
    });
    // First visit for the returning half, so their snapshots are stored.
    sharded.serve(ServeRequest::batch(returning_half.to_vec())).expect("warm-up serve");
    let returning_ids: Vec<String> =
        returning_half.iter().map(|m| m.user_id.clone()).collect();
    let (mean, min) = time_ms(scale.reps, || {
        let cold = sharded
            .serve(ServeRequest::batch(black_box(fresh_half.to_vec())))
            .expect("sharded batch");
        let warm = sharded
            .serve(ServeRequest::refresh(black_box(returning_ids.clone())))
            .expect("sharded refresh");
        black_box(cold.report.cold_time_points + warm.report.replayed_time_points);
    });
    entries.push((
        format!("service/sharded_mixed_{}xT{}", 2 * n, scale.horizon),
        mean,
        min,
    ));

    // Persisted refresh: snapshots live as SQL rows in a jit-db-backed
    // store; each rep loads them through the SQL engine and replays.
    let db_service = JitService::with_shared(
        Arc::clone(&system_arc),
        Arc::new(
            DbSnapshotStore::in_new_database(&schema).expect("snapshot store opens"),
        ),
    );
    db_service
        .serve(ServeRequest::batch(returning_half.to_vec()))
        .expect("populate persisted store");
    let (mean, min) = time_ms(scale.reps, || {
        let warm = db_service
            .serve(ServeRequest::refresh(black_box(returning_ids.clone())))
            .expect("persisted refresh");
        black_box(warm.report.replayed_time_points);
    });
    entries.push((format!("service/db_refresh_{n}xT{}", scale.horizon), mean, min));

    // --- db: the durable commit path in isolation ------------------------
    // Re-save the same n snapshots through a WAL-backed store over an
    // in-memory log: each save is one validate+encode+append+apply
    // commit, so this tracks the write-ahead-log overhead itself without
    // session-compute noise. (The log grows across reps and periodically
    // checkpoint-compacts, exactly as a long-lived serving process sees.)
    let snapshots: Vec<_> = returning_ids
        .iter()
        .map(|id| {
            let snapshot = db_service
                .store()
                .load(id)
                .expect("loadable")
                .expect("populated above");
            (id.clone(), snapshot)
        })
        .collect();
    let (wal, _) =
        DurableDatabase::open(Arc::new(MemFile::new()), WalConfig::default())
            .expect("in-memory WAL opens");
    let durable_store =
        DbSnapshotStore::open_durable(Arc::new(wal), &schema).expect("durable store");
    let (mean, min) = time_ms(scale.reps, || {
        for (id, snapshot) in &snapshots {
            durable_store.save(id, black_box(snapshot)).expect("durable save");
        }
        black_box(durable_store.wal().expect("durable").wal_bytes_logged());
    });
    entries.push((format!("db/wal_commit_{n}xT{}", scale.horizon), mean, min));

    // --- net: the TCP serving tier under a closed-loop burst ------------
    // The in-process sharded dispatcher behind the real wire protocol on
    // loopback: each rep drives 2 connections × 2 rounds of 4-user
    // batches (16 users) through framing, admission control and dispatch
    // end to end. (The OS-process backend needs the jit-shardd binary,
    // which a bench bin cannot assume is built; the wire + queue + TCP
    // cost this entry tracks is identical either way.)
    let net_backend: Arc<dyn ServeBackend> =
        Arc::new(ShardedService::from_shared(Arc::clone(&system_arc), 2, 0, |_| {
            Arc::new(MemorySnapshotStore::new())
        }));
    let server =
        NetServer::bind(net_backend, "127.0.0.1:0", NetServerConfig::default())
            .expect("bind loopback");
    let plan =
        LoadPlan { connections: 2, rounds: 2, cohort: 4, mode: LoadMode::Closed };
    let (mean, min) = time_ms(scale.reps, || {
        let report = loadgen::run(server.addr(), &schema, &plan).expect("load run");
        assert_eq!(report.failed + report.shed, 0, "loopback burst must not fail");
        black_box(report.users_served);
    });
    entries.push((format!("net/loadgen_16xT{}", scale.horizon), mean, min));
    server.shutdown();

    // --- synth: population-scale serving + recourse invalidation --------
    // The registry's credit scenario at serving scale: a deterministic
    // 1000-user cohort batch-served through the sharded tier, then the
    // invalidation hot loop — refresh the cohort through a system
    // retrained one drift step later and classify every (user, t) pair
    // against its served insight fingerprints. These are the inner
    // loops of `jit-scenariorun --smoke`, isolated from training noise.
    let spec = ScenarioSpec::credit(0x5eed)
        .with_rows_per_slice(scale.records_per_year)
        .with_cohort_size(1_000);
    let synth = SyntheticGenerator::new(&spec, 0);
    let mut synth_config = bench_config(scale.horizon, true);
    synth_config.start_year = spec.start_year;
    let mut serve_config = synth_config.clone();
    let system_a = Arc::new(
        JustInTime::train(synth_config, synth.schema(), &synth.history(0))
            .expect("synth training must succeed"),
    );
    let members: Vec<CohortMember> = synth
        .cohort()
        .iter()
        .map(|u| CohortMember::new(&u.user_id, UserRequest::new(u.profile.clone())))
        .collect();
    let ids: Vec<String> = members.iter().map(|m| m.user_id.clone()).collect();
    let requests: Vec<UserRequest> =
        members.iter().map(|m| m.request.clone()).collect();

    // Setup (untimed): the served insight fingerprints, the snapshots to
    // seed each rep's store with, and the one-drift-step-later system.
    // The setup serve deliberately takes the legacy per-user-cache path:
    // a shard-level cell cache populated here would hold ~1k users' cells
    // through every timed section below and distort them (this one-core
    // tier is acutely sensitive to resident heap).
    let (prior, seeded) = {
        let sessions = system_a.serve_batch(&requests).expect("synth baseline serve");
        let prior: HashMap<String, Vec<_>> = ids
            .iter()
            .zip(&sessions)
            .map(|(id, s)| (id.clone(), insight_digests(s, scale.horizon)))
            .collect();
        let seeded: Vec<_> = ids
            .iter()
            .zip(&sessions)
            .map(|(id, s)| (id.clone(), s.snapshot()))
            .collect();
        (prior, seeded)
    };
    let system_b =
        Arc::new(system_a.retrain(&synth.history(1)).expect("synth retrain"));
    // Each rep refreshes against a fresh store seeded with the step-0
    // snapshots — otherwise the first refresh would overwrite them and
    // later reps would replay instead of recompute.
    let (mean, min) = time_ms(scale.reps, || {
        let store: Arc<dyn SnapshotStore> = Arc::new(MemorySnapshotStore::new());
        for (id, snap) in &seeded {
            store.save(id, snap).expect("seed save");
        }
        let service_b =
            ShardedService::from_shared(Arc::clone(&system_b), 4, 0, |_| {
                Arc::clone(&store)
            });
        let response = service_b
            .serve(ServeRequest::refresh(black_box(ids.clone())))
            .expect("synth refresh");
        let mut overturned = 0usize;
        for served in &response.users {
            let fresh = insight_digests(&served.session, scale.horizon);
            let before = &prior[&served.user_id];
            let report = served
                .session
                .reserve_report()
                .expect("refreshed sessions carry a reserve report");
            for (t, tp) in report.iter().enumerate() {
                if matches!(tp, TimePointServe::Recomputed) && fresh[t] != before[t] {
                    overturned += 1;
                }
            }
        }
        black_box(overturned);
    });
    entries.push((format!("synth/invalidation_1kxT{}", scale.horizon), mean, min));

    // The proactive re-serve pass: each rep seeds per-shard stores with
    // the step-0 snapshots, hands stores and cell caches to the
    // retrained system (`next_generation`), runs the refresh-ahead
    // sweep, then refreshes the returning cohort — which must replay
    // every time point, because the sweep pre-paid every recompute.
    let (mean, min) = time_ms(scale.reps, || {
        let stores: Vec<Arc<dyn SnapshotStore>> =
            (0..4).map(|_| Arc::new(MemorySnapshotStore::new()) as _).collect();
        for (id, snap) in &seeded {
            stores[shard_index(id, 4)].save(id, snap).expect("seed save");
        }
        let prior = ShardedService::from_shared(Arc::clone(&system_a), 4, 0, |s| {
            Arc::clone(&stores[s])
        });
        let service_b =
            ShardedService::next_generation(Arc::clone(&system_b), 0, &prior);
        let pass = service_b
            .refresh_ahead(&system_a, &RefreshAheadOptions::default())
            .expect("refresh-ahead pass");
        let returning = service_b
            .serve(ServeRequest::refresh(black_box(ids.clone())))
            .expect("returning cohort");
        assert_eq!(
            returning.report.recomputed_time_points, 0,
            "refresh-ahead must leave returning users on the replay path"
        );
        black_box(pass.refreshed + returning.report.replayed_time_points);
    });
    entries.push((format!("synth/refresh_ahead_1kxT{}", scale.horizon), mean, min));

    // The serve pair runs last — its serving-scale ensemble and populated
    // cell caches hold hundreds of MB, which would degrade locality for
    // every workload timed after them on this one-core tier.
    //
    // It uses a serving-scale ensemble because cell sharing trades a map
    // probe for a `predict_proba`, so it only pays when predicts dominate
    // the search — which they do for production-size forests but not for
    // the tiny trees the rest of the smoke tier uses (there a probe costs
    // about as much as the predict it saves, and the pair would measure
    // allocator noise). 96 trees keeps the pair in the predict-dominated
    // regime at both scales; training stays trivial.
    serve_config.future.forest =
        RandomForestParams { n_trees: 96, ..Default::default() };
    let system_serve = Arc::new(
        JustInTime::train(serve_config, synth.schema(), &synth.history(0))
            .expect("synth serving-scale training must succeed"),
    );
    // Steady-state population serving through the sharded tier: the
    // service — and with it each shard's cell cache — persists across
    // reps, so after the warm-up pass the timed passes measure batch
    // serving with the shard-level cross-user cache populated. This is
    // the "after" column; synth/serve_unshared_1k is "before".
    let service_serve =
        ShardedService::from_shared(Arc::clone(&system_serve), 4, 0, |_| {
            Arc::new(MemorySnapshotStore::new()) as _
        });
    let (mean, min) = time_ms(scale.reps, || {
        let response = service_serve
            .serve(ServeRequest::batch(black_box(members.clone())))
            .expect("synth batch serve");
        black_box(response.report.cold_time_points);
    });
    entries.push((format!("synth/serve_1kxT{}", scale.horizon), mean, min));

    // The same cohort and model through the legacy per-user-cache batch
    // path (no cross-user or cross-batch cell sharing) — the "before"
    // column of the shared-cache speedup that synth/serve_1k measures
    // "after".
    let (mean, min) = time_ms(scale.reps, || {
        let sessions =
            system_serve.serve_batch(black_box(&requests)).expect("unshared batch");
        black_box(sessions.iter().map(|s| s.candidates().len()).sum::<usize>());
    });
    entries.push((format!("synth/serve_unshared_1kxT{}", scale.horizon), mean, min));

    // --- JSON out -------------------------------------------------------
    print_snapshot(scale, &entries, None);

    // --- perf gate ------------------------------------------------------
    if let Some(baseline) = &args.check {
        let regressions =
            check_regressions(&entries, baseline, args.tolerance, args.floor_ms);
        if regressions > 0 {
            std::process::exit(1);
        }
    }
}
