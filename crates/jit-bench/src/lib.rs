//! Shared fixtures for the benchmark harness.
//!
//! Every bench regenerates one experiment from DESIGN.md §5 (F1–F3,
//! E1–E6). Fixtures are deliberately small — the benches run on one core —
//! but structurally identical to the full pipeline. Each bench prints its
//! experiment's *shape table* (who wins, by how much) to stderr during
//! setup; EXPERIMENTS.md records those tables against the paper's claims.

// Bench fixtures: panics are the correct failure mode for a broken harness.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![forbid(unsafe_code)]

use jit_constraints::ConstraintSet;
use jit_core::{AdminConfig, CandidateParams, JustInTime};
use jit_data::{FeatureSchema, LendingClubGenerator, LendingClubParams};
use jit_ml::{Dataset, RandomForestParams};
use jit_temporal::future::FutureModelsParams;

/// Standard bench-scale generator: fewer records per year than the demo,
/// same drift structure.
pub fn bench_generator(records_per_year: usize) -> LendingClubGenerator {
    LendingClubGenerator::new(LendingClubParams {
        records_per_year,
        ..Default::default()
    })
}

/// Year slices as datasets.
pub fn year_slices(gen: &LendingClubGenerator) -> Vec<Dataset> {
    gen.years()
        .into_iter()
        .map(|y| LendingClubGenerator::to_dataset(&gen.records_for_year(y)))
        .collect()
}

/// Bench-scale admin config.
pub fn bench_config(horizon: usize, parallel: bool) -> AdminConfig {
    AdminConfig {
        horizon,
        start_year: 2019,
        period_years: 1,
        future: FutureModelsParams {
            n_landmarks: 40,
            pool_slices: 3,
            forest: RandomForestParams { n_trees: 24, ..Default::default() },
            ..Default::default()
        },
        candidates: CandidateParams {
            beam_width: 6,
            max_iters: 4,
            top_k: 6,
            ..Default::default()
        },
        parallel_generators: parallel,
        threads: 0,
        ..Default::default()
    }
}

/// A trained bench-scale system plus its schema.
pub fn trained_system(
    records_per_year: usize,
    horizon: usize,
    parallel: bool,
) -> (JustInTime, FeatureSchema) {
    let gen = bench_generator(records_per_year);
    let slices = year_slices(&gen);
    let schema = gen.schema().clone();
    let system = JustInTime::train(bench_config(horizon, parallel), &schema, &slices)
        .expect("bench training must succeed");
    (system, schema)
}

/// Opens a John session on a trained system.
pub fn john_session(system: &JustInTime) -> jit_core::UserSession<'_> {
    system
        .session(&LendingClubGenerator::john(), &ConstraintSet::new(), None)
        .expect("bench session must open")
}

/// A serving batch of `n` [`jit_core::UserRequest`]s over rejected
/// applicants from the system's present year (falling back to John
/// clones when the generator yields too few rejections at bench scale).
pub fn serving_cohort(
    system: &JustInTime,
    gen: &LendingClubGenerator,
    n: usize,
) -> Vec<jit_core::UserRequest> {
    let year = system.config().start_year.saturating_sub(1).max(2007);
    let mut profiles = rejected_cohort(gen, year, n);
    while profiles.len() < n {
        profiles.push(LendingClubGenerator::john());
    }
    profiles.into_iter().map(jit_core::UserRequest::new).collect()
}

/// First-visit snapshots for a returning-user workload: serves `cohort`
/// once and wraps each session's [`jit_core::SessionSnapshot`] as an
/// unchanged [`jit_core::ReturningUser`] (the no-drift refresh).
pub fn returning_cohort(
    system: &JustInTime,
    cohort: &[jit_core::UserRequest],
) -> Vec<jit_core::ReturningUser> {
    system
        .serve_batch(cohort)
        .expect("bench first visit must serve")
        .iter()
        .map(|s| jit_core::ReturningUser::unchanged(s.snapshot()))
        .collect()
}

/// The 25%-drift variant of [`returning_cohort`]: every fourth user
/// returns with a perturbed profile, so (with the other three unchanged)
/// 25% of the cohort's `(user, time point)` pairs fail their fingerprint
/// diff and recompute while the rest replay.
pub fn drifted_returning_cohort(
    system: &JustInTime,
    cohort: &[jit_core::UserRequest],
) -> Vec<jit_core::ReturningUser> {
    let mut returning = returning_cohort(system, cohort);
    for user in returning.iter_mut().step_by(4) {
        // A $1 change of monthly debt changes every temporal input, so
        // all of this user's time points recompute.
        user.request.profile[jit_data::schema::lending_idx::DEBT] += 1.0;
    }
    returning
}

/// A realistic cohort of rejected applicants: records drawn from the
/// generator's latest year whose oracle probability is below 0.5.
///
/// Unlike the hand-crafted demo extremes, these live in the dense region
/// of the data distribution, where learned models are locally reliable —
/// the right population for transfer experiments (E1).
pub fn rejected_cohort(
    gen: &LendingClubGenerator,
    year: u32,
    n: usize,
) -> Vec<Vec<f64>> {
    gen.records_for_year(year)
        .into_iter()
        .filter(|r| gen.oracle_probability(&r.features, year) < 0.5)
        .map(|r| r.features)
        .take(n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (system, schema) = trained_system(120, 2, false);
        assert_eq!(schema.dim(), 6);
        assert_eq!(system.models().len(), 3);
        let session = john_session(&system);
        assert_eq!(session.temporal_inputs().len(), 3);
    }
}
