//! The rule set: each project contract as a named, individually
//! suppressable rule.
//!
//! | rule | contract it enforces |
//! |---|---|
//! | `no-panic-paths` | decode/serve-path modules return typed errors, never panic |
//! | `no-wall-clock` | no ambient nondeterminism in library code |
//! | `no-lossy-float-fmt` | floats cross codec/digest boundaries as bits, not decimal |
//! | `lock-discipline` | poisoning handled deliberately; no nested acquisitions |
//!
//! Scopes are committed here, next to the rules, so a module entering a
//! contract is a reviewed one-line diff. See `CONTRACTS.md` at the
//! workspace root for the prose version of each invariant and the
//! annotation workflow.

/// Rule id: decode/serve-path modules must produce typed errors, never
/// panic. Flags `.unwrap()` / `.expect()` calls, panicking macros
/// (`panic!`, `unreachable!`, `unimplemented!`, `todo!`, `assert!`,
/// `assert_eq!`, `assert_ne!` — `debug_assert*` is deliberately exempt:
/// it vanishes in release serving builds), and slice indexing by
/// integer literal (`buf[0]`). Test code is exempt.
pub const NO_PANIC_PATHS: &str = "no-panic-paths";

/// Rule id: no ambient nondeterminism in library code. Flags
/// `SystemTime`, `Instant`, `thread::sleep`/`.sleep`, `RandomState`
/// everywhere, and `HashMap`/`HashSet` in the digest/codec/wire modules
/// (whose iteration order would otherwise feed digests or frames).
/// Load generators and benches keep their clocks behind reasoned
/// annotations.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";

/// Rule id: floats must round-trip bit-exactly through codec, digest
/// and wire modules (`f64::to_bits` / `sql_literal`), never decimal
/// text. Flags `.to_string()` and format strings with `{}`-family
/// placeholders in those modules; float-specific specs (`{:.3}`,
/// `{:e}`) are flagged even inside `Display`/`Debug` impls, which are
/// otherwise exempt (error rendering is not wire data).
pub const NO_LOSSY_FLOAT_FMT: &str = "no-lossy-float-fmt";

/// Rule id: lock poisoning on serve-path locks must be handled
/// deliberately (`unwrap_or_else(PoisonError::into_inner)` or a typed
/// error), so `.lock().unwrap()` / `.lock().expect()` is forbidden; a
/// function acquiring two or more locks is a nested-acquisition hazard
/// and must justify itself.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";

/// Engine-level rule id for sources the lexer cannot scan (fail
/// closed). Not suppressable.
pub const LEX_ERROR: &str = "lex-error";

/// Engine-level rule id for annotations that do not parse or carry no
/// reason. Not suppressable.
pub const BAD_ANNOTATION: &str = "bad-annotation";

/// Engine-level rule id for annotations that suppress nothing. Not
/// suppressable: stale allowlist entries must be removed.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Every suppressable rule id (what `allow(…)` may name).
pub const SUPPRESSABLE: &[&str] =
    &[NO_PANIC_PATHS, NO_WALL_CLOCK, NO_LOSSY_FLOAT_FMT, LOCK_DISCIPLINE];

/// Files under the typed-error-never-panic contract: the wire/codec/
/// net/supervisor serve path of `jit-service`, plus `jit-db`'s binary
/// codec and WAL recovery.
pub const PANIC_PATH_FILES: &[&str] = &[
    "crates/jit-service/src/wire.rs",
    "crates/jit-service/src/codec.rs",
    "crates/jit-service/src/net.rs",
    "crates/jit-service/src/supervisor.rs",
    "crates/jit-service/src/sharded.rs",
    "crates/jit-service/src/store.rs",
    "crates/jit-service/src/invalidation.rs",
    "crates/jit-db/src/codec.rs",
    "crates/jit-db/src/wal.rs",
];

/// Files whose output feeds digests, stable snapshots or wire frames:
/// the scope of the `HashMap`/`HashSet` iteration ban and of
/// `no-lossy-float-fmt`.
pub const DIGEST_SCOPE_FILES: &[&str] = &[
    "crates/jit-math/src/digest.rs",
    "crates/jit-db/src/codec.rs",
    "crates/jit-service/src/codec.rs",
    "crates/jit-service/src/wire.rs",
];

/// Crate prefixes under the lock-discipline contract (the crates whose
/// locks the serving path shares).
pub const LOCK_SCOPE_PREFIXES: &[&str] = &[
    "crates/jit-core/",
    "crates/jit-db/",
    "crates/jit-service/",
    "crates/jit-runtime/",
];

/// `true` when `path` (workspace-relative, forward slashes) is under
/// the no-panic contract.
pub fn in_panic_scope(path: &str) -> bool {
    PANIC_PATH_FILES.contains(&path)
}

/// `true` when `path` is in the digest/codec/wire scope.
pub fn in_digest_scope(path: &str) -> bool {
    DIGEST_SCOPE_FILES.contains(&path)
}

/// `true` when `path` is under the lock-discipline contract.
pub fn in_lock_scope(path: &str) -> bool {
    LOCK_SCOPE_PREFIXES.iter().any(|p| path.starts_with(p))
}
