//! The rule engine: turns one lexed source file into findings.
//!
//! The engine works on the comment-free *code token* stream, but first
//! computes four kinds of lexical regions over it:
//!
//! - **test regions** — items under `#[cfg(test)]` or `#[test]` (tests
//!   unwrap freely; `#[cfg(not(test))]` is correctly *not* a test
//!   region);
//! - **`Display`/`Debug` impl bodies** — error rendering is not wire
//!   data, so `no-lossy-float-fmt` only flags float-specific formats
//!   there;
//! - **`use` items** — importing `Instant` is not using a clock; the
//!   call site is what gets flagged;
//! - **function bodies** — the unit `lock-discipline` counts lock
//!   acquisitions in.
//!
//! Findings are then matched against the allow annotations
//! ([`crate::annot`]): a suppressed finding consumes its annotation,
//! and annotations that suppress nothing become `unused-allow`
//! findings, so the committed allowlist can never silently go stale.

use crate::annot::{self, Scope};
use crate::lexer::{lex, Tok, TokKind};
use crate::report::Finding;
use crate::rules;

/// A code token with its position in the original (comment-bearing)
/// token stream.
struct Code<'a> {
    tok: &'a Tok,
}

/// Analyzes one source file; `path` must be workspace-relative with
/// forward slashes (it selects rule scopes).
pub fn analyze_source(path: &str, src: &str) -> Vec<Finding> {
    let toks = match lex(src) {
        Ok(toks) => toks,
        Err(e) => {
            return vec![Finding::new(
                rules::LEX_ERROR,
                path,
                e.line,
                format!("unterminated {}", e.what),
                String::new(),
            )]
        }
    };
    let (annots, bad) = annot::collect(&toks);
    let code: Vec<Code<'_>> =
        toks.iter().filter(|t| !t.is_comment()).map(|tok| Code { tok }).collect();

    let in_test = test_regions(&code);
    let in_display = display_regions(&code);
    let in_use = use_regions(&code);
    let fn_bodies = fn_body_regions(&code);

    let mut raw: Vec<Finding> = Vec::new();
    if rules::in_panic_scope(path) {
        no_panic_paths(path, &code, &in_test, &mut raw);
    }
    no_wall_clock(path, &code, &in_test, &in_use, &mut raw);
    if rules::in_digest_scope(path) {
        no_lossy_float_fmt(path, &code, &in_test, &in_display, &mut raw);
    }
    if rules::in_lock_scope(path) {
        lock_discipline(path, &code, &in_test, &fn_bodies, &mut raw);
    }

    // Suppression: match findings to annotations, tracking use.
    let mut used = vec![false; annots.len()];
    let mut findings: Vec<Finding> = Vec::new();
    for finding in raw {
        let mut suppressed = false;
        for (i, a) in annots.iter().enumerate() {
            let applies = a.rules.iter().any(|r| r == finding.rule)
                && match a.scope {
                    Scope::File => true,
                    Scope::Line => a.effective_line == finding.line,
                };
            if applies {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            findings.push(finding);
        }
    }

    for b in bad {
        findings.push(Finding::new(
            rules::BAD_ANNOTATION,
            path,
            b.line,
            format!("malformed jit-analyze annotation: {}", b.why),
            String::new(),
        ));
    }
    for (i, a) in annots.iter().enumerate() {
        for rule in &a.rules {
            if !rules::SUPPRESSABLE.contains(&rule.as_str()) {
                findings.push(Finding::new(
                    rules::BAD_ANNOTATION,
                    path,
                    a.comment_line,
                    format!("annotation names unknown rule `{rule}`"),
                    String::new(),
                ));
            }
        }
        if !used[i] && a.rules.iter().all(|r| rules::SUPPRESSABLE.contains(&r.as_str()))
        {
            findings.push(Finding::new(
                rules::UNUSED_ALLOW,
                path,
                a.comment_line,
                format!(
                    "annotation allow({}) suppresses nothing — remove it",
                    a.rules.join(", ")
                ),
                String::new(),
            ));
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------
// Regions
// ---------------------------------------------------------------------

/// Finds the matching close for the bracket opening at `open` (which
/// must hold one of `(`, `[`, `{`). Returns the index of the closer, or
/// the last token when unbalanced.
fn matching(code: &[Code<'_>], open: usize) -> usize {
    let (o, c) = match code[open].tok.text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        _ => ('{', '}'),
    };
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.tok.is_punct(o) {
            depth += 1;
        } else if t.tok.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// The token range an item starting after index `i` covers: up to the
/// matching `}` of its first body brace, or its terminating `;` for
/// bodyless items.
fn item_extent(code: &[Code<'_>], mut i: usize) -> usize {
    while i < code.len() {
        if code[i].tok.is_punct('{') {
            return matching(code, i);
        }
        if code[i].tok.is_punct(';') {
            return i;
        }
        // Skip nested attribute brackets and parenthesized groups so a
        // `;` or `{` inside them does not end the scan early.
        if code[i].tok.is_punct('(') || code[i].tok.is_punct('[') {
            i = matching(code, i);
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]` items.
fn test_regions(code: &[Code<'_>]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].tok.is_punct('#') && code[i + 1].tok.is_punct('[') {
            let close = matching(code, i + 1);
            let attr = &code[i + 2..close];
            let has = |name: &str| attr.iter().any(|t| t.tok.is_ident(name));
            let is_test_attr = (has("cfg") && has("test") && !has("not"))
                || (attr.len() == 1 && attr[0].tok.is_ident("test"));
            if is_test_attr {
                let end = item_extent(code, close + 1);
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Marks tokens inside `impl … Display/Debug … for … { … }` bodies.
fn display_regions(code: &[Code<'_>]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].tok.is_ident("impl") {
            // Scan the header up to the body brace.
            let mut j = i + 1;
            let mut is_display = false;
            let mut has_for = false;
            while j < code.len()
                && !code[j].tok.is_punct('{')
                && !code[j].tok.is_punct(';')
            {
                if code[j].tok.is_ident("Display") || code[j].tok.is_ident("Debug") {
                    is_display = true;
                }
                if code[j].tok.is_ident("for") {
                    has_for = true;
                }
                j += 1;
            }
            if is_display && has_for && j < code.len() && code[j].tok.is_punct('{') {
                let end = matching(code, j);
                for m in mask.iter_mut().take(end + 1).skip(j) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Marks tokens inside `use …;` items.
fn use_regions(code: &[Code<'_>]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].tok.is_ident("use") {
            let mut j = i;
            while j < code.len() && !code[j].tok.is_punct(';') {
                j += 1;
            }
            for m in mask.iter_mut().take(j + 1).skip(i) {
                *m = true;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Body token ranges of every `fn`, innermost-deduplicated: a token
/// inside a nested fn belongs to the nested one only.
fn fn_body_regions(code: &[Code<'_>]) -> Vec<(usize, usize)> {
    let mut bodies = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].tok.is_ident("fn") {
            let mut j = i + 1;
            while j < code.len()
                && !code[j].tok.is_punct('{')
                && !code[j].tok.is_punct(';')
            {
                if code[j].tok.is_punct('(') || code[j].tok.is_punct('[') {
                    j = matching(code, j);
                }
                j += 1;
            }
            if j < code.len() && code[j].tok.is_punct('{') {
                bodies.push((j, matching(code, j)));
            }
        }
        i += 1;
    }
    bodies
}

// ---------------------------------------------------------------------
// Rule matchers
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "unimplemented",
    "todo",
    "assert",
    "assert_eq",
    "assert_ne",
];

fn no_panic_paths(
    path: &str,
    code: &[Code<'_>],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        let t = code[i].tok;
        // `.unwrap()` / `.expect(`
        if t.is_punct('.') && i + 2 < code.len() {
            let name = &code[i + 1].tok;
            if (name.is_ident("unwrap") || name.is_ident("expect"))
                && code[i + 2].tok.is_punct('(')
            {
                out.push(Finding::new(
                    rules::NO_PANIC_PATHS,
                    path,
                    name.line,
                    format!(
                        "`.{}()` on the decode/serve path — return a typed error",
                        name.text
                    ),
                    format!(".{}(…)", name.text),
                ));
            }
        }
        // Panicking macros.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && i + 1 < code.len()
            && code[i + 1].tok.is_punct('!')
        {
            out.push(Finding::new(
                rules::NO_PANIC_PATHS,
                path,
                t.line,
                format!(
                    "`{}!` on the decode/serve path — return a typed error",
                    t.text
                ),
                format!("{}!(…)", t.text),
            ));
        }
        // Slice indexing by integer literal: `ident[0]`.
        if t.kind == TokKind::Ident
            && i + 3 < code.len()
            && code[i + 1].tok.is_punct('[')
            && code[i + 2].tok.kind == TokKind::NumLit
            && code[i + 3].tok.is_punct(']')
        {
            out.push(Finding::new(
                rules::NO_PANIC_PATHS,
                path,
                t.line,
                "slice indexing by literal can panic — use a checked conversion"
                    .to_string(),
                format!("{}[{}]", t.text, code[i + 2].tok.text),
            ));
        }
    }
}

fn no_wall_clock(
    path: &str,
    code: &[Code<'_>],
    in_test: &[bool],
    in_use: &[bool],
    out: &mut Vec<Finding>,
) {
    let digest_scope = rules::in_digest_scope(path);
    for i in 0..code.len() {
        if in_test[i] || in_use[i] {
            continue;
        }
        let t = code[i].tok;
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "SystemTime" | "Instant" | "RandomState" => true,
            "sleep" => {
                i > 0
                    && (code[i - 1].tok.is_punct(':') || code[i - 1].tok.is_punct('.'))
            }
            "HashMap" | "HashSet" => digest_scope,
            _ => false,
        };
        if flagged {
            let what = match t.text.as_str() {
                "HashMap" | "HashSet" => {
                    "iteration order is seeded per process — it must never feed \
                     digests or frames"
                }
                _ => "ambient nondeterminism on a deterministic path",
            };
            out.push(Finding::new(
                rules::NO_WALL_CLOCK,
                path,
                t.line,
                format!("`{}`: {what}", t.text),
                t.text.clone(),
            ));
        }
    }
}

/// How a format placeholder can lose float payload bits.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Lossiness {
    Lossless,
    Lossy,
    FloatLossy,
}

/// Classifies one placeholder body (the text between `{` and `}`).
fn classify_placeholder(body: &str) -> Lossiness {
    let spec = match body.split_once(':') {
        None => return Lossiness::Lossy, // `{}` / `{name}`
        Some((_, spec)) => spec,
    };
    if spec.contains('.') || spec.ends_with('e') || spec.ends_with('E') {
        return Lossiness::FloatLossy; // precision / scientific
    }
    if spec.ends_with('x')
        || spec.ends_with('X')
        || spec.ends_with('b')
        || spec.ends_with('o')
    {
        return Lossiness::Lossless; // radix formats are bit-faithful
    }
    Lossiness::Lossy // `{:?}`, bare width/fill, …
}

/// The worst placeholder in a format string.
fn worst_placeholder(fmt: &str) -> Lossiness {
    let mut worst = Lossiness::Lossless;
    let chars: Vec<char> = fmt.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < chars.len() && chars[j] != '}' {
                j += 1;
            }
            let body: String = chars[i + 1..j.min(chars.len())].iter().collect();
            let c = classify_placeholder(&body);
            if c == Lossiness::FloatLossy
                || (c == Lossiness::Lossy && worst == Lossiness::Lossless)
            {
                worst = c;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    worst
}

const FMT_MACROS: &[&str] =
    &["format", "write", "writeln", "print", "println", "eprint", "eprintln"];

fn no_lossy_float_fmt(
    path: &str,
    code: &[Code<'_>],
    in_test: &[bool],
    in_display: &[bool],
    out: &mut Vec<Finding>,
) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        let t = code[i].tok;
        // `.to_string()` (outside Display/Debug impls).
        if t.is_punct('.')
            && !in_display[i]
            && i + 3 < code.len()
            && code[i + 1].tok.is_ident("to_string")
            && code[i + 2].tok.is_punct('(')
            && code[i + 3].tok.is_punct(')')
        {
            out.push(Finding::new(
                rules::NO_LOSSY_FLOAT_FMT,
                path,
                code[i + 1].tok.line,
                "`.to_string()` in a codec/digest module — floats must travel as \
                 bits (`to_bits`/`sql_literal`)"
                    .to_string(),
                ".to_string()".to_string(),
            ));
        }
        // Format macros with lossy placeholders.
        if t.kind == TokKind::Ident
            && FMT_MACROS.contains(&t.text.as_str())
            && i + 1 < code.len()
            && code[i + 1].tok.is_punct('!')
        {
            let fmt = code[i + 2..code.len().min(i + 8)]
                .iter()
                .find(|c| c.tok.kind == TokKind::StrLit);
            let Some(fmt) = fmt else { continue };
            let worst = worst_placeholder(&fmt.tok.text);
            let flag = match worst {
                Lossiness::FloatLossy => true,
                Lossiness::Lossy => !in_display[i],
                Lossiness::Lossless => false,
            };
            if flag {
                out.push(Finding::new(
                    rules::NO_LOSSY_FLOAT_FMT,
                    path,
                    t.line,
                    format!(
                        "`{}!` with a `{{}}`-family placeholder in a codec/digest \
                         module — floats must travel as bits",
                        t.text
                    ),
                    format!("{}!(\"…\")", t.text),
                ));
            }
        }
    }
}

fn lock_discipline(
    path: &str,
    code: &[Code<'_>],
    in_test: &[bool],
    fn_bodies: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    // `.lock().unwrap()` / `.lock().expect(`.
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        if code[i].tok.is_punct('.')
            && i + 5 < code.len()
            && code[i + 1].tok.is_ident("lock")
            && code[i + 2].tok.is_punct('(')
            && code[i + 3].tok.is_punct(')')
            && code[i + 4].tok.is_punct('.')
            && (code[i + 5].tok.is_ident("unwrap")
                || code[i + 5].tok.is_ident("expect"))
        {
            out.push(Finding::new(
                rules::LOCK_DISCIPLINE,
                path,
                code[i + 1].tok.line,
                "lock poisoning unwrapped — handle it deliberately \
                 (`unwrap_or_else(PoisonError::into_inner)`) or return a typed error"
                    .to_string(),
                format!(".lock().{}(…)", code[i + 5].tok.text),
            ));
        }
    }
    // Multiple acquisitions inside one function body (innermost wins).
    for &(start, end) in fn_bodies {
        let mut sites: Vec<usize> = Vec::new();
        for i in start..=end.min(code.len().saturating_sub(1)) {
            if in_test[i] {
                continue;
            }
            // Skip tokens that belong to a *nested* fn body.
            let innermost = fn_bodies
                .iter()
                .filter(|(s, e)| *s <= i && i <= *e)
                .min_by_key(|(s, e)| e - s);
            if innermost != Some(&(start, end)) {
                continue;
            }
            if code[i].tok.is_punct('.')
                && i + 3 < code.len()
                && (code[i + 1].tok.is_ident("lock")
                    || code[i + 1].tok.is_ident("read")
                    || code[i + 1].tok.is_ident("write"))
                && code[i + 2].tok.is_punct('(')
                && code[i + 3].tok.is_punct(')')
            {
                sites.push(i + 1);
            }
        }
        for &site in sites.iter().skip(1) {
            out.push(Finding::new(
                rules::LOCK_DISCIPLINE,
                path,
                code[site].tok.line,
                "second lock acquisition in one function — nested-lock hazard; \
                 restructure or justify with an annotation"
                    .to_string(),
                format!(".{}()", code[site].tok.text),
            ));
        }
    }
}
