//! Self-test: seeded violations proving every rule actually fires.
//!
//! The fixtures are a virtual source tree (path → source text) with
//! exactly one seeded violation per behaviour the engine promises, plus
//! adversarial *negatives* — unwraps inside raw strings, panics inside
//! nested block comments, `'{'` char literals, `#[cfg(test)]` regions —
//! that must stay silent. CI runs this (`jit-analyze --self-test`)
//! before trusting a clean `--check`: a lint that cannot find its own
//! seeded bugs proves nothing.

use crate::engine::analyze_source;
use crate::rules;

/// One fixture file: a virtual path (selects rule scopes), source text,
/// and the exact findings the engine must produce. `line == 0` matches
/// any line (used where the exact line is an implementation detail,
/// e.g. lex errors).
pub struct Fixture {
    /// Virtual workspace-relative path.
    pub path: &'static str,
    /// Source text.
    pub src: &'static str,
    /// Expected `(rule, line)` pairs, sorted by line.
    pub expect: &'static [(&'static str, u32)],
}

/// Seeded `no-panic-paths` violations (slice-index, unwrap, panic!)
/// plus negatives: a suppressed unwrap, an unwrap inside a raw string,
/// a panic! inside a nested block comment, and a `#[cfg(test)]` module.
const PANIC_FIXTURE: &str = r##"
pub fn decode(buf: &[u8]) -> u8 {
    let first = buf[0];
    first
}
pub fn run(x: Option<u8>) -> u8 {
    x.unwrap()
}
pub fn boom() {
    panic!("nope");
}
pub fn ok(x: Option<u8>) -> u8 {
    x.unwrap() // jit-analyze: allow(no-panic-paths) — fixture: provably Some, seeded suppression
}
pub fn strings() -> &'static str {
    r#"please .unwrap() me"#
}
/* outer /* panic!("inner") */ still one comment */
#[cfg(test)]
mod tests {
    #[test]
    fn t() { None::<u8>.unwrap(); }
}
"##;

/// Seeded `no-wall-clock` violation (`Instant::now`) plus negatives: a
/// `use` line, an annotated `thread::sleep`, and a `'{'` char literal.
const CLOCK_FIXTURE: &str = r##"
use std::time::Instant;
pub fn timed() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
pub fn pace() {
    std::thread::sleep(std::time::Duration::from_millis(1)); // jit-analyze: allow(no-wall-clock) — fixture: pacing only, never feeds output
}
pub fn brace() -> char {
    '{'
}
"##;

/// Seeded seeded-`HashMap`-in-digest-scope violation (iteration order
/// would feed the digest); the `use` line stays exempt.
const DIGEST_FIXTURE: &str = r##"
use std::collections::HashMap;
pub fn digest_map(m: &HashMap<u64, u64>) -> u64 {
    m.iter().map(|(k, v)| k ^ v).sum()
}
"##;

/// Seeded `no-lossy-float-fmt` violations: a `{}` format outside any
/// `Display` impl and a `{:.3}` precision format *inside* one (float
/// payloads may not be narrowed even for display). Negatives: lossless
/// `{:016x}` and a plain `{}` inside `Display`.
const FLOAT_FIXTURE: &str = r##"
use std::fmt;
pub fn encode(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}
pub fn lossy(v: f64) -> String {
    format!("{}", v)
}
pub struct E(f64);
impl fmt::Display for E {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E = {}", self.0)
    }
}
pub struct P(f64);
impl fmt::Display for P {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}
"##;

/// Seeded `lock-discipline` violations: `.lock().unwrap()` and a second
/// acquisition in one function. Negatives: `io::Read::read(&mut buf)`
/// (takes an argument, so it is not a lock acquisition) and nested
/// functions that each take one lock.
const LOCK_FIXTURE: &str = r##"
use std::sync::Mutex;
pub fn poisoned(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
pub fn nested(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let x = *a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let y = *b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    x + y
}
pub fn io_read(r: &mut impl std::io::Read, buf: &mut [u8]) {
    let _ = r.read(buf);
}
pub fn outer(a: &Mutex<u32>) -> u32 {
    fn inner(b: &Mutex<u32>) -> u32 {
        *b.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
    inner(a) + *a.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
"##;

/// A reasonless annotation (bad-annotation) and a well-formed one that
/// suppresses nothing (unused-allow): both must be findings.
const ANNOT_FIXTURE: &str = r##"
// jit-analyze: allow(no-wall-clock)
pub fn quiet() {}
// jit-analyze: allow(no-panic-paths) — fixture: stale, nothing here panics
pub fn calm() {}
"##;

/// A source the lexer cannot scan: the engine must fail closed with a
/// `lex-error` finding, not silently skip the file.
const BROKEN_FIXTURE: &str = "pub fn f() {}\n/* unterminated\n";

/// The fixture tree. Paths are virtual but chosen to land inside the
/// real rule scopes of [`crate::rules`].
pub fn fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            path: "crates/jit-service/src/supervisor.rs",
            src: PANIC_FIXTURE,
            expect: &[
                (rules::NO_PANIC_PATHS, 3),
                (rules::NO_PANIC_PATHS, 7),
                (rules::NO_PANIC_PATHS, 10),
            ],
        },
        Fixture {
            path: "crates/jit-core/src/clock.rs",
            src: CLOCK_FIXTURE,
            expect: &[(rules::NO_WALL_CLOCK, 4)],
        },
        Fixture {
            path: "crates/jit-math/src/digest.rs",
            src: DIGEST_FIXTURE,
            expect: &[(rules::NO_WALL_CLOCK, 3)],
        },
        Fixture {
            path: "crates/jit-db/src/codec.rs",
            src: FLOAT_FIXTURE,
            expect: &[(rules::NO_LOSSY_FLOAT_FMT, 7), (rules::NO_LOSSY_FLOAT_FMT, 18)],
        },
        Fixture {
            path: "crates/jit-runtime/src/pool.rs",
            src: LOCK_FIXTURE,
            expect: &[(rules::LOCK_DISCIPLINE, 4), (rules::LOCK_DISCIPLINE, 8)],
        },
        Fixture {
            path: "crates/jit-core/src/annots.rs",
            src: ANNOT_FIXTURE,
            expect: &[(rules::BAD_ANNOTATION, 2), (rules::UNUSED_ALLOW, 4)],
        },
        Fixture {
            path: "crates/jit-core/src/broken.rs",
            src: BROKEN_FIXTURE,
            expect: &[(rules::LEX_ERROR, 0)],
        },
    ]
}

/// Runs every fixture; returns a human summary on success, a diff
/// description on the first mismatch.
pub fn run() -> Result<String, String> {
    let fixtures = fixtures();
    let mut total = 0usize;
    let mut rules_fired: Vec<&str> = Vec::new();
    for fx in &fixtures {
        let got: Vec<(&str, u32)> =
            analyze_source(fx.path, fx.src).iter().map(|f| (f.rule, f.line)).collect();
        if got.len() != fx.expect.len()
            || !got
                .iter()
                .zip(fx.expect.iter())
                .all(|(g, e)| g.0 == e.0 && (e.1 == 0 || g.1 == e.1))
        {
            return Err(format!(
                "self-test MISMATCH for fixture `{}`:\n  expected {:?}\n  got      {:?}",
                fx.path, fx.expect, got
            ));
        }
        total += got.len();
        for (rule, _) in &got {
            if !rules_fired.contains(rule) {
                rules_fired.push(rule);
            }
        }
    }
    let must_fire = [
        rules::NO_PANIC_PATHS,
        rules::NO_WALL_CLOCK,
        rules::NO_LOSSY_FLOAT_FMT,
        rules::LOCK_DISCIPLINE,
        rules::BAD_ANNOTATION,
        rules::UNUSED_ALLOW,
        rules::LEX_ERROR,
    ];
    for rule in must_fire {
        if !rules_fired.contains(&rule) {
            return Err(format!(
                "self-test: rule `{rule}` never fired on its seeded fixture"
            ));
        }
    }
    Ok(format!(
        "self-test OK: {} fixtures, {} seeded findings, all {} rules fired",
        fixtures.len(),
        total,
        must_fire.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_fixtures_all_pass() {
        match run() {
            Ok(summary) => assert!(summary.contains("self-test OK")),
            Err(e) => panic!("{e}"),
        }
    }
}
