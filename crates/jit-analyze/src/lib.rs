//! `jit-analyze` — the workspace contract lint.
//!
//! The serving stack promises things `rustc` and clippy cannot check:
//! bit-identical responses across threads, shards and processes; codecs
//! that return typed errors instead of panicking on hostile bytes;
//! floats that cross process boundaries as raw bits; locks whose
//! poisoning is handled deliberately. This crate enforces those
//! contracts mechanically, as named rules over the real token stream of
//! every workspace source file:
//!
//! | rule | contract |
//! |---|---|
//! | `no-panic-paths` | decode/serve modules never panic ([`rules::NO_PANIC_PATHS`]) |
//! | `no-wall-clock` | no ambient nondeterminism in library code ([`rules::NO_WALL_CLOCK`]) |
//! | `no-lossy-float-fmt` | floats travel as bits through codec/digest modules ([`rules::NO_LOSSY_FLOAT_FMT`]) |
//! | `lock-discipline` | deliberate poison handling, no nested acquisitions ([`rules::LOCK_DISCIPLINE`]) |
//!
//! Exceptions live **in the source** as reasoned annotations
//! (`// jit-analyze: allow(rule) — reason`, see [`annot`]); a reasonless
//! or stale annotation is itself a finding, so the allowlist cannot rot.
//!
//! Design choices, in order:
//!
//! - **A real lexer, not regexes** ([`lexer`]): `unwrap()` inside a raw
//!   string, `panic!` inside a nested block comment, and `'{'` char
//!   literals must not trip the rules — and `#[cfg(test)]` regions,
//!   `Display` impls and `use` items must be recognized from tokens to
//!   scope exemptions correctly ([`engine`]).
//! - **Std-only, zero dependencies**: the analyzer gates CI before
//!   anything else builds, so it depends on nothing — not even the
//!   vendored stand-in crates.
//! - **Self-testing** ([`selftest`]): fixtures seed one violation per
//!   rule (plus adversarial negatives) and CI runs them first; a green
//!   `--check` only counts after the lint has found its own seeded bugs.
//!
//! The prose version of each contract is `CONTRACTS.md` at the
//! workspace root; the binary (`src/main.rs`) wires this library to the
//! filesystem and CI (`--check`, `--json`, `--list-allows`,
//! `--self-test`).

#![forbid(unsafe_code)]

pub mod annot;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod selftest;
