//! A real Rust lexer — the foundation the rule engine trusts.
//!
//! The rules in [`crate::rules`] are lexical: they must never fire on
//! text inside a string literal or a comment, and must never *miss* a
//! token because an adversarial literal confused the scanner. So this
//! module implements actual Rust lexical structure, not regexes:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), each kept as a token so annotation parsing can
//!   read them;
//! - string literals with escapes, byte strings (`b"…"`), C strings
//!   (`c"…"`), and **raw** strings `r"…"` / `r#"…"#` with any number of
//!   hashes (`br#"…"#`, `cr#"…"#` included) — a raw string containing
//!   `.unwrap()` produces one string token, never an `unwrap` ident;
//! - char literals vs lifetimes: `'a'` is a char, `'a` is a lifetime,
//!   `'{'` is a char, `b'x'` is a byte char, `'_` is a lifetime and
//!   `'_'` is a char;
//! - raw identifiers (`r#type`) and numeric literals with underscores,
//!   radix prefixes, float exponents and type suffixes.
//!
//! Every token carries its 1-based source line, which is the unit the
//! allow-annotation mechanism ([`crate::annot`]) works in.

/// What kind of token was lexed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (includes raw identifiers, without `r#`).
    Ident,
    /// A lifetime such as `'a` or `'static` (text excludes the quote).
    Lifetime,
    /// A char literal (`'x'`, `'\n'`, `'{'`) or byte char (`b'x'`).
    CharLit,
    /// Any string-like literal: `"…"`, `b"…"`, `c"…"`, `r"…"`,
    /// `r#"…"#`, `br#"…"#`, `cr#"…"#`. Text is the *contents* only.
    StrLit,
    /// Numeric literal, including suffixes (`1_000u64`, `1.5e-3f64`).
    NumLit,
    /// A `//` comment (text excludes the slashes, includes doc sigils).
    LineComment,
    /// A `/* … */` comment, nesting included (text is the interior).
    BlockComment,
    /// Any single punctuation character.
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// The token kind.
    pub kind: TokKind,
    /// Kind-specific text (see [`TokKind`] for what is included).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.chars().eq([ch])
    }

    /// `true` for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// A lexing failure: the scanner hit an unterminated construct. The
/// engine treats this as a finding (fail closed), never a panic.
#[derive(Clone, Debug)]
pub struct LexError {
    /// 1-based line of the offending construct.
    pub line: u32,
    /// What was unterminated.
    pub what: &'static str,
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn err(&self, what: &'static str) -> LexError {
        LexError { line: self.line, what }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens.
///
/// # Errors
/// [`LexError`] on an unterminated string, char or block comment.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let mut s = Scanner { chars: src.chars().collect(), pos: 0, line: 1 };
    let mut out = Vec::new();
    while let Some(c) = s.peek(0) {
        let line = s.line;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                s.bump();
            }
            '/' if s.peek(1) == Some('/') => {
                s.bump();
                s.bump();
                let mut text = String::new();
                while let Some(c) = s.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    s.bump();
                }
                out.push(Tok { kind: TokKind::LineComment, text, line });
            }
            '/' if s.peek(1) == Some('*') => {
                s.bump();
                s.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                loop {
                    match (s.peek(0), s.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push_str("/*");
                            s.bump();
                            s.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            s.bump();
                            s.bump();
                            if depth == 0 {
                                break;
                            }
                            text.push_str("*/");
                        }
                        (Some(c), _) => {
                            text.push(c);
                            s.bump();
                        }
                        (None, _) => return Err(s.err("block comment")),
                    }
                }
                out.push(Tok { kind: TokKind::BlockComment, text, line });
            }
            '"' => {
                s.bump();
                let text = scan_quoted(&mut s)?;
                out.push(Tok { kind: TokKind::StrLit, text, line });
            }
            '\'' => {
                s.bump();
                out.push(scan_char_or_lifetime(&mut s, line)?);
            }
            c if is_ident_start(c) => {
                let mut ident = String::new();
                while let Some(c) = s.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    ident.push(c);
                    s.bump();
                }
                match string_prefix(&ident, &mut s) {
                    Some(tok) => out.push(tok?),
                    None => {
                        // `r#raw_ident`: swallow the hash, lex the ident.
                        if ident == "r"
                            && s.peek(0) == Some('#')
                            && s.peek(1).is_some_and(is_ident_start)
                        {
                            s.bump();
                            let mut raw = String::new();
                            while let Some(c) = s.peek(0) {
                                if !is_ident_continue(c) {
                                    break;
                                }
                                raw.push(c);
                                s.bump();
                            }
                            out.push(Tok { kind: TokKind::Ident, text: raw, line });
                        } else if ident == "b" && s.peek(0) == Some('\'') {
                            // Byte char literal b'x'.
                            s.bump();
                            let mut tok = scan_char_or_lifetime(&mut s, line)?;
                            tok.kind = TokKind::CharLit;
                            out.push(tok);
                        } else {
                            out.push(Tok { kind: TokKind::Ident, text: ident, line });
                        }
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = s.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        s.bump();
                        // Exponent sign: `1e-5`, `2E+3`.
                        if (c == 'e' || c == 'E')
                            && !text.starts_with("0x")
                            && !text.starts_with("0X")
                            && matches!(s.peek(0), Some('+') | Some('-'))
                            && s.peek(1).is_some_and(|d| d.is_ascii_digit())
                        {
                            text.push(s.bump().unwrap_or('-'));
                        }
                    } else if c == '.'
                        && s.peek(1).is_some_and(|d| d.is_ascii_digit())
                        && !text.contains('.')
                    {
                        // `1.5` but not `1..5` and not a second dot.
                        text.push(c);
                        s.bump();
                    } else {
                        break;
                    }
                }
                out.push(Tok { kind: TokKind::NumLit, text, line });
            }
            c => {
                s.bump();
                out.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
            }
        }
    }
    Ok(out)
}

/// Scans the rest of a `"…"` literal (opening quote consumed).
fn scan_quoted(s: &mut Scanner) -> Result<String, LexError> {
    let mut text = String::new();
    loop {
        match s.bump() {
            Some('\\') => {
                // Keep the escaped char verbatim; `\"` must not close.
                text.push('\\');
                match s.bump() {
                    Some(c) => text.push(c),
                    None => return Err(s.err("string literal")),
                }
            }
            Some('"') => return Ok(text),
            Some(c) => text.push(c),
            None => return Err(s.err("string literal")),
        }
    }
}

/// Scans a raw string `…"…"##` given the number of leading hashes
/// (opening quote consumed).
fn scan_raw(s: &mut Scanner, hashes: usize) -> Result<String, LexError> {
    let mut text = String::new();
    loop {
        match s.bump() {
            Some('"') => {
                // Closing quote only if followed by exactly enough `#`s.
                let mut n = 0;
                while n < hashes && s.peek(n) == Some('#') {
                    n += 1;
                }
                if n == hashes {
                    for _ in 0..hashes {
                        s.bump();
                    }
                    return Ok(text);
                }
                text.push('"');
            }
            Some(c) => text.push(c),
            None => return Err(s.err("raw string literal")),
        }
    }
}

/// If `ident` is a string-literal prefix sitting directly before a
/// quote (or hashes-then-quote for raw forms), scans the literal.
fn string_prefix(ident: &str, s: &mut Scanner) -> Option<Result<Tok, LexError>> {
    let raw = matches!(ident, "r" | "br" | "cr");
    let plain = matches!(ident, "b" | "c");
    let line = s.line;
    if (raw || plain) && s.peek(0) == Some('"') {
        s.bump();
        let text = if raw { scan_raw(s, 0) } else { scan_quoted(s) };
        return Some(text.map(|text| Tok { kind: TokKind::StrLit, text, line }));
    }
    if raw && s.peek(0) == Some('#') {
        let mut hashes = 0;
        while s.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if s.peek(hashes) == Some('"') {
            for _ in 0..=hashes {
                s.bump();
            }
            let text = scan_raw(s, hashes);
            return Some(text.map(|text| Tok { kind: TokKind::StrLit, text, line }));
        }
    }
    None
}

/// Scans after a consumed `'`: either a char literal or a lifetime.
fn scan_char_or_lifetime(s: &mut Scanner, line: u32) -> Result<Tok, LexError> {
    match s.peek(0) {
        // Escape: definitely a char literal.
        Some('\\') => {
            let mut text = String::new();
            loop {
                match s.bump() {
                    Some('\\') => {
                        text.push('\\');
                        match s.bump() {
                            Some(c) => text.push(c),
                            None => return Err(s.err("char literal")),
                        }
                    }
                    Some('\'') => {
                        return Ok(Tok { kind: TokKind::CharLit, text, line })
                    }
                    Some(c) => text.push(c),
                    None => return Err(s.err("char literal")),
                }
            }
        }
        // Ident-shaped: lifetime unless a closing quote follows the run
        // (`'a'` is a char, `'a` / `'static` / `'_` are lifetimes).
        Some(c) if is_ident_start(c) => {
            let mut text = String::new();
            while let Some(c) = s.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                s.bump();
            }
            if s.peek(0) == Some('\'') {
                s.bump();
                Ok(Tok { kind: TokKind::CharLit, text, line })
            } else {
                Ok(Tok { kind: TokKind::Lifetime, text, line })
            }
        }
        // Anything else (`'{'`, `'3'`, `'.'`): a one-char literal.
        Some(c) => {
            s.bump();
            if s.bump() == Some('\'') {
                Ok(Tok { kind: TokKind::CharLit, text: c.to_string(), line })
            } else {
                Err(s.err("char literal"))
            }
        }
        None => Err(s.err("char literal")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).expect("lexes").into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_string_containing_unwrap_is_one_string_token() {
        let toks = kinds(r###"let s = r#"x.unwrap() and "quotes" too"#;"###);
        assert!(toks.iter().any(|(k, t)| {
            *k == TokKind::StrLit && t.contains("unwrap") && t.contains("\"quotes\"")
        }));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("/* outer /* inner */ still outer */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert!(toks[1].1 == "after");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = kinds("'{' 'a' '_' &'a x &'_ y '\\n' b'z' 'static");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::CharLit)
            .map(|(_, t)| t.as_str())
            .collect();
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec!["{", "a", "_", "\\n", "z"]);
        assert_eq!(lifetimes, vec!["a", "_", "static"]);
    }

    #[test]
    fn byte_and_c_strings_and_hashed_raw_strings() {
        let toks = kinds(r####"b"bytes" c"cstr" br##"raw "# bytes"## x"####);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::StrLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, vec!["bytes", "cstr", r##"raw "# bytes"##]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "type"));
    }

    #[test]
    fn numbers_with_exponents_ranges_and_suffixes() {
        let toks = kinds("1_000u64 1.5e-3f64 0x1F 0..10 1.max(2)");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::NumLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["1_000u64", "1.5e-3f64", "0x1F", "0", "10", "1", "2"]);
    }

    #[test]
    fn escaped_quotes_do_not_close_strings() {
        let toks = kinds(r#"let s = "a \" b .unwrap()";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::StrLit && t.contains("unwrap")));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* x\ny */\nb";
        let toks = lex(src).expect("lexes");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unterminated_constructs_are_errors_not_panics() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("r#\"still open").is_err());
        assert!(lex(r"'\x").is_err());
    }
}
