//! Findings and report rendering (human text and machine JSON).
//!
//! The JSON writer is hand-rolled (the analyzer is dependency-free by
//! design) and escapes strings per RFC 8259 — good enough for paths,
//! rule ids and one-line messages.

/// One rule violation (or engine-level problem) at a source location.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id, e.g. `no-panic-paths`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Short matched snippet, possibly empty.
    pub snippet: String,
}

impl Finding {
    /// Builds a finding; `path` is stored as given.
    pub fn new(
        rule: &'static str,
        path: &str,
        line: u32,
        message: String,
        snippet: String,
    ) -> Self {
        Finding { rule, path: path.to_string(), line, message, snippet }
    }

    /// `path:line: [rule] message (snippet)` — the one-line text form.
    pub fn render_text(&self) -> String {
        let mut s =
            format!("{}:{}: [{}] {}", self.path, self.line, self.rule, self.message);
        if !self.snippet.is_empty() {
            s.push_str(&format!("  `{}`", self.snippet));
        }
        s
    }
}

/// Escapes `s` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report as a stable JSON document:
/// `{"findings": […], "count": N, "clean": bool}`. Findings keep the
/// engine's (path, line, rule) ordering so reports diff cleanly.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"message\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"count\": {},\n  \"clean\": {}\n}}\n",
        findings.len(),
        findings.is_empty(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_counts() {
        let f = Finding::new(
            "no-panic-paths",
            "a/b.rs",
            7,
            "say \"no\"".into(),
            "x\\y".into(),
        );
        let json = render_json(&[f]);
        assert!(json.contains("\"say \\\"no\\\"\""));
        assert!(json.contains("\"x\\\\y\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"clean\": false"));
    }

    #[test]
    fn empty_report_is_clean() {
        let json = render_json(&[]);
        assert!(json.contains("\"count\": 0"));
        assert!(json.contains("\"clean\": true"));
    }
}
