//! CLI for the workspace contract lint.
//!
//! ```text
//! jit-analyze [--root DIR] [--check] [--json] [--list-allows] [--self-test]
//! ```
//!
//! Walks `src/` and every `crates/*/src/` under the root (sorted, so
//! reports are stable), analyzes each `.rs` file, and prints findings.
//! Exit codes: `0` clean (or findings without `--check`), `1` findings
//! under `--check`, `2` usage or I/O error.

use std::fs;
use std::path::{Path, PathBuf};

use jit_analyze::{annot, engine, lexer, report, selftest};

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

struct Opts {
    root: PathBuf,
    check: bool,
    json: bool,
    list_allows: bool,
    self_test: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        check: false,
        json: false,
        list_allows: false,
        self_test: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let Some(dir) = it.next() else {
                    return Err("--root needs a directory".into());
                };
                opts.root = PathBuf::from(dir);
            }
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--list-allows" => opts.list_allows = true,
            "--self-test" => opts.self_test = true,
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

const USAGE: &str =
    "usage: jit-analyze [--root DIR] [--check] [--json] [--list-allows] [--self-test]";

fn run(args: Vec<String>) -> i32 {
    let opts = match parse_opts(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };

    if opts.self_test {
        return match selftest::run() {
            Ok(summary) => {
                println!("{summary}");
                0
            }
            Err(e) => {
                eprintln!("{e}");
                1
            }
        };
    }

    let files = match source_files(&opts.root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("jit-analyze: {e}");
            return 2;
        }
    };
    if files.is_empty() {
        eprintln!(
            "jit-analyze: no sources under {} — wrong --root?",
            opts.root.display()
        );
        return 2;
    }

    if opts.list_allows {
        return list_allows(&opts.root, &files);
    }

    let mut findings = Vec::new();
    for rel in &files {
        let src = match fs::read_to_string(opts.root.join(rel)) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("jit-analyze: {rel}: {e}");
                return 2;
            }
        };
        findings.extend(engine::analyze_source(rel, &src));
    }

    if opts.json {
        print!("{}", report::render_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render_text());
        }
        println!(
            "jit-analyze: {} files scanned, {} finding{}",
            files.len(),
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
        );
    }
    if opts.check && !findings.is_empty() {
        1
    } else {
        0
    }
}

/// Prints every allow annotation in the tree — the committed allowlist,
/// with its reasons — for review.
fn list_allows(root: &Path, files: &[String]) -> i32 {
    let mut n = 0usize;
    for rel in files {
        let Ok(src) = fs::read_to_string(root.join(rel)) else { continue };
        let Ok(toks) = lexer::lex(&src) else { continue };
        let (annots, _) = annot::collect(&toks);
        for a in annots {
            n += 1;
            let scope = match a.scope {
                annot::Scope::File => "file",
                annot::Scope::Line => "line",
            };
            println!(
                "{rel}:{}: [{scope}] allow({}) — {}",
                a.comment_line,
                a.rules.join(", "),
                a.reason
            );
        }
    }
    println!("jit-analyze: {n} annotations");
    0
}

/// Workspace-relative paths (forward slashes) of every `.rs` file under
/// `src/` and `crates/*/src/`, sorted for stable reports. The vendored
/// stand-in crates (`vendor/`) are deliberately out of scope: they
/// mimic external dependencies.
fn source_files(root: &Path) -> Result<Vec<String>, String> {
    let mut roots: Vec<PathBuf> = Vec::new();
    let top_src = root.join("src");
    if top_src.is_dir() {
        roots.push(top_src);
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)
            .map_err(|e| format!("{}: {e}", crates.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let src = dir.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let mut files = Vec::new();
    for r in &roots {
        collect_rs(root, r, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            let rel = p
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", p.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
