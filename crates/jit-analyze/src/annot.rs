//! The allow-annotation mechanism: the in-source, fully-reasoned
//! allowlist.
//!
//! A finding is suppressed only by an annotation comment that names the
//! rule **and carries a non-empty reason**:
//!
//! ```text
//! // jit-analyze: allow(no-wall-clock) — loadgen measures latency; the
//! // clock never feeds digests or wire bytes.
//! let started = Instant::now();
//! ```
//!
//! Grammar, inside any `//` or `/* */` comment:
//!
//! ```text
//! jit-analyze: allow(rule[, rule…]) — reason
//! jit-analyze: allow-file(rule[, rule…]) — reason
//! ```
//!
//! The separator before the reason may be `—`, `–`, `-`, `:` or just
//! whitespace; the reason must be non-empty (a reasonless annotation is
//! itself a finding — the allowlist stays honest). A line annotation
//! applies to the first source line at or after it: trailing comments
//! cover their own line, a comment line covers the next code line.
//! `allow-file` covers the whole file and is meant for files whose
//! purpose is the exception (e.g. the load generator and wall clocks).
//!
//! Unused annotations are reported as findings too: when the code an
//! annotation justified goes away, the annotation must go with it.

use crate::lexer::Tok;

/// Where an annotation applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// One source line (the annotation's effective line).
    Line,
    /// The whole file.
    File,
}

/// One parsed allow annotation.
#[derive(Clone, Debug)]
pub struct Annotation {
    /// Rules this annotation suppresses.
    pub rules: Vec<String>,
    /// The mandatory reason.
    pub reason: String,
    /// Line or file scope.
    pub scope: Scope,
    /// 1-based line of the annotation comment itself.
    pub comment_line: u32,
    /// 1-based line the annotation covers (line-scoped only; the first
    /// code line at or after the comment).
    pub effective_line: u32,
}

/// A malformed annotation: mentions `jit-analyze:` but does not parse,
/// or parses without a reason. Always a finding.
#[derive(Clone, Debug)]
pub struct BadAnnotation {
    /// 1-based line of the comment.
    pub line: u32,
    /// Why it was rejected.
    pub why: &'static str,
}

const MARKER: &str = "jit-analyze:";

/// Extracts annotations from a lexed token stream. Comment tokens
/// without the `jit-analyze:` marker are ignored; marked comments must
/// parse fully or are returned as [`BadAnnotation`]s. Doc comments
/// (`///`, `//!`, `/** */`, `/*! */`) never carry directives — they are
/// documentation *about* the mechanism, not uses of it.
pub fn collect(toks: &[Tok]) -> (Vec<Annotation>, Vec<BadAnnotation>) {
    let mut annots = Vec::new();
    let mut bad = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        // The lexer strips `//` / `/*` but keeps doc sigils, so a doc
        // comment's text starts with `/`, `!` or `*`.
        if matches!(tok.text.chars().next(), Some('/' | '!' | '*')) {
            continue;
        }
        let Some(at) = tok.text.find(MARKER) else { continue };
        let body = &tok.text[at + MARKER.len()..];
        match parse_directive(body) {
            Ok((rules, reason, scope)) => {
                let effective_line = match scope {
                    Scope::File => tok.line,
                    Scope::Line => effective_line(toks, i),
                };
                annots.push(Annotation {
                    rules,
                    reason,
                    scope,
                    comment_line: tok.line,
                    effective_line,
                });
            }
            Err(why) => bad.push(BadAnnotation { line: tok.line, why }),
        }
    }
    (annots, bad)
}

/// The line a line-scoped annotation at token index `i` covers: its own
/// line if code precedes it there (trailing comment), else the line of
/// the next non-comment token.
fn effective_line(toks: &[Tok], i: usize) -> u32 {
    let line = toks[i].line;
    let trailing =
        toks[..i].iter().rev().take_while(|t| t.line == line).any(|t| !t.is_comment());
    if trailing {
        return line;
    }
    toks[i + 1..].iter().find(|t| !t.is_comment()).map(|t| t.line).unwrap_or(line)
}

/// Parses `allow(rule…) — reason` / `allow-file(rule…) — reason`.
fn parse_directive(body: &str) -> Result<(Vec<String>, String, Scope), &'static str> {
    let body = body.trim_start();
    let (scope, rest) = if let Some(rest) = body.strip_prefix("allow-file") {
        (Scope::File, rest)
    } else if let Some(rest) = body.strip_prefix("allow") {
        (Scope::Line, rest)
    } else {
        return Err("expected `allow(…)` or `allow-file(…)`");
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after allow");
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed rule list");
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list");
    }
    let mut reason = rest[close + 1..].trim_start();
    for sep in ["—", "–", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim_start();
            break;
        }
    }
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("annotation carries no reason");
    }
    Ok((rules, reason.to_string(), scope))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_comment_covers_its_own_line() {
        let src = "let t = now(); // jit-analyze: allow(no-wall-clock) — bench only\n";
        let (annots, bad) = collect(&lex(src).expect("lexes"));
        assert!(bad.is_empty());
        assert_eq!(annots.len(), 1);
        assert_eq!(annots[0].effective_line, 1);
        assert_eq!(annots[0].rules, vec!["no-wall-clock"]);
        assert_eq!(annots[0].reason, "bench only");
    }

    #[test]
    fn leading_comment_covers_next_code_line() {
        let src =
            "\n// jit-analyze: allow(no-panic-paths) - provably some\n\nx.unwrap();";
        let (annots, _) = collect(&lex(src).expect("lexes"));
        assert_eq!(annots[0].comment_line, 2);
        assert_eq!(annots[0].effective_line, 4);
    }

    #[test]
    fn multi_rule_and_file_scope() {
        let src = "// jit-analyze: allow-file(no-wall-clock, lock-discipline): loadgen\nfn f() {}";
        let (annots, _) = collect(&lex(src).expect("lexes"));
        assert_eq!(annots[0].scope, Scope::File);
        assert_eq!(annots[0].rules, vec!["no-wall-clock", "lock-discipline"]);
    }

    #[test]
    fn reasonless_or_malformed_annotations_are_findings() {
        for src in [
            "// jit-analyze: allow(no-wall-clock)\nx();",
            "// jit-analyze: allow(no-wall-clock) —   \nx();",
            "// jit-analyze: allow no-wall-clock — reason\nx();",
            "// jit-analyze: allow() — reason\nx();",
            "// jit-analyze: deny(x) — reason\nx();",
        ] {
            let (annots, bad) = collect(&lex(src).expect("lexes"));
            assert!(annots.is_empty(), "{src}");
            assert_eq!(bad.len(), 1, "{src}");
        }
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        for src in [
            "/// jit-analyze: allow(rule) — doc example\nx();",
            "//! jit-analyze: allow(rule[, rule…]) — grammar docs\nx();",
            "/** jit-analyze: allow(broken — doc */\nx();",
        ] {
            let (annots, bad) = collect(&lex(src).expect("lexes"));
            assert!(annots.is_empty() && bad.is_empty(), "{src}");
        }
    }

    #[test]
    fn unmarked_comments_are_ignored() {
        let src = "// plain comment about allow(things)\nx();";
        let (annots, bad) = collect(&lex(src).expect("lexes"));
        assert!(annots.is_empty() && bad.is_empty());
    }
}
