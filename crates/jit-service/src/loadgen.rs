//! The load generator library (the `jit-loadgen` bin and the
//! `perf_snapshot` network workload both drive this).
//!
//! Two driving disciplines against a [`crate::NetServer`] address:
//!
//! * **closed loop** ([`LoadMode::Closed`]) — each connection keeps
//!   exactly one request in flight; issue rate adapts to server
//!   latency. This is the reproducible discipline the perf gate uses.
//! * **open loop** ([`LoadMode::Open`]) — each connection issues on a
//!   fixed schedule regardless of completion (approximated with
//!   blocking clients: a connection that falls behind skips its sleep
//!   and the report counts the `late` ticks). This is the discipline
//!   that actually surfaces queue buildup and load shedding.
//!
//! Every request is a [`ServeRequest::Batch`] of `cohort` fresh users
//! with deterministic ids (`lg-<conn>-<round>-<k>`) and deterministic
//! in-bounds profiles derived from the schema — two runs against the
//! same server issue byte-identical request frames. Shed requests
//! ([`ServeError::Overloaded`]) are counted separately from hard
//! failures: under deliberate overload, shedding is the *correct*
//! outcome.

// jit-analyze: allow-file(no-wall-clock) — the load generator's whole job is measuring wall-clock latency and pacing an open loop; its clocks feed human reports, never digests or wire bytes
use crate::api::{CohortMember, ServeError, ServeRequest};
use crate::net::NetClient;
use jit_core::UserRequest;
use jit_data::FeatureSchema;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// The driving discipline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadMode {
    /// One request in flight per connection, back to back.
    Closed,
    /// Fixed per-connection issue interval (open-loop approximation).
    Open {
        /// Target requests per second **per connection**.
        requests_per_second: f64,
    },
}

/// One load run: `connections` concurrent clients each issuing `rounds`
/// cohort requests.
#[derive(Clone, Copy, Debug)]
pub struct LoadPlan {
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub rounds: usize,
    /// Users per request (batch cohort size).
    pub cohort: usize,
    /// Driving discipline.
    pub mode: LoadMode,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan { connections: 2, rounds: 4, cohort: 4, mode: LoadMode::Closed }
    }
}

/// Outcome of one load run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Requests issued.
    pub requests: u64,
    /// Requests served successfully.
    pub ok: u64,
    /// Requests shed by admission control ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Requests failing with any other error (these fail the bin).
    pub failed: u64,
    /// Users served across all successful requests.
    pub users_served: u64,
    /// Open-loop ticks issued behind schedule.
    pub late: u64,
    /// Wall-clock duration of the run, microseconds.
    pub elapsed_us: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: u64,
    /// Worst request latency, microseconds.
    pub max_us: u64,
}

impl LoadReport {
    /// The report as a single JSON object (hand-rolled; integers only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"ok\":{},\"shed\":{},\"failed\":{},\
             \"users_served\":{},\"late\":{},\"elapsed_us\":{},\
             \"p50_us\":{},\"p95_us\":{},\"max_us\":{}}}",
            self.requests,
            self.ok,
            self.shed,
            self.failed,
            self.users_served,
            self.late,
            self.elapsed_us,
            self.p50_us,
            self.p95_us,
            self.max_us,
        )
    }
}

/// A deterministic in-bounds profile for synthetic user `(conn, round,
/// k)`: each feature interpolates its `[min, max]` range at a position
/// derived from the ids — no RNG, identical across runs and processes.
pub fn synthetic_profile(
    schema: &FeatureSchema,
    conn: usize,
    round: usize,
    k: usize,
) -> Vec<f64> {
    schema
        .features()
        .iter()
        .enumerate()
        .map(|(j, meta)| {
            let step = (conn * 131 + round * 31 + k * 7 + j * 3) % 17;
            let fraction = step as f64 / 16.0;
            let value = meta.min + (meta.max - meta.min) * fraction;
            // Integer-kind features stay on the lattice.
            value.round().min(meta.max).max(meta.min)
        })
        .collect()
}

/// The deterministic user id for synthetic user `(conn, round, k)`.
pub fn synthetic_user_id(conn: usize, round: usize, k: usize) -> String {
    format!("lg-{conn}-{round}-{k}")
}

/// The batch request connection `conn` issues in `round`.
pub fn synthetic_request(
    schema: &FeatureSchema,
    plan: &LoadPlan,
    conn: usize,
    round: usize,
) -> ServeRequest {
    ServeRequest::Batch(
        (0..plan.cohort.max(1))
            .map(|k| {
                CohortMember::new(
                    synthetic_user_id(conn, round, k),
                    UserRequest::new(synthetic_profile(schema, conn, round, k)),
                )
            })
            .collect(),
    )
}

/// Runs `plan` against the server at `addr` and aggregates the report.
///
/// # Errors
/// [`ServeError::Transport`] when a connection cannot be established;
/// per-request failures are *counted*, not returned (load generation
/// keeps going through them).
pub fn run(
    addr: SocketAddr,
    schema: &FeatureSchema,
    plan: &LoadPlan,
) -> Result<LoadReport, ServeError> {
    let connections = plan.connections.max(1);
    let started = Instant::now();
    let per_conn: Vec<Result<ConnOutcome, ServeError>> =
        jit_runtime::blocking_map(connections, |conn| {
            run_connection(addr, schema, plan, conn)
        });
    let elapsed = started.elapsed();

    let mut report = LoadReport::default();
    let mut latencies: Vec<u64> = Vec::new();
    for outcome in per_conn {
        let outcome = outcome?;
        report.requests += outcome.requests;
        report.ok += outcome.ok;
        report.shed += outcome.shed;
        report.failed += outcome.failed;
        report.users_served += outcome.users_served;
        report.late += outcome.late;
        latencies.extend(outcome.latencies_us);
    }
    latencies.sort_unstable();
    report.elapsed_us = elapsed.as_micros() as u64;
    report.p50_us = percentile(&latencies, 50);
    report.p95_us = percentile(&latencies, 95);
    report.max_us = latencies.last().copied().unwrap_or(0);
    Ok(report)
}

struct ConnOutcome {
    requests: u64,
    ok: u64,
    shed: u64,
    failed: u64,
    users_served: u64,
    late: u64,
    latencies_us: Vec<u64>,
}

fn run_connection(
    addr: SocketAddr,
    schema: &FeatureSchema,
    plan: &LoadPlan,
    conn: usize,
) -> Result<ConnOutcome, ServeError> {
    // The generator often races the server's bind; ride out transient
    // connection refusals instead of failing the whole run.
    let mut client = NetClient::connect_with_retry(
        addr,
        schema.clone(),
        crate::net::ConnectRetry::default(),
    )?;
    let mut outcome = ConnOutcome {
        requests: 0,
        ok: 0,
        shed: 0,
        failed: 0,
        users_served: 0,
        late: 0,
        latencies_us: Vec::with_capacity(plan.rounds),
    };
    let interval = match plan.mode {
        LoadMode::Closed => None,
        LoadMode::Open { requests_per_second } => {
            Some(Duration::from_secs_f64(1.0 / requests_per_second.max(0.001)))
        }
    };
    let origin = Instant::now();
    for round in 0..plan.rounds {
        if let Some(interval) = interval {
            // Open loop: issue on the schedule tick, never earlier; a
            // tick already in the past is issued immediately and
            // counted late.
            let due = origin + interval * round as u32;
            let now = Instant::now();
            if now < due {
                std::thread::sleep(due - now);
            } else if round > 0 {
                outcome.late += 1;
            }
        }
        let request = synthetic_request(schema, plan, conn, round);
        let issued = Instant::now();
        outcome.requests += 1;
        match client.serve(request) {
            Ok(response) => {
                outcome.ok += 1;
                outcome.users_served += response.users.len() as u64;
                outcome.latencies_us.push(issued.elapsed().as_micros() as u64);
            }
            Err(ServeError::Overloaded { .. }) => outcome.shed += 1,
            Err(ServeError::Transport(detail)) => {
                // A dead connection ends this client's run; everything
                // it did still counts.
                outcome.failed += 1;
                let _ = detail;
                break;
            }
            Err(_) => outcome.failed += 1,
        }
    }
    Ok(outcome)
}

fn percentile(sorted_us: &[u64], pct: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (sorted_us.len() - 1) * pct / 100;
    sorted_us[rank]
}
