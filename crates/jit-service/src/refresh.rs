//! Fingerprint-driven proactive re-serving (**refresh-ahead**).
//!
//! After a retrain, returning users whose snapshots reference drifted
//! models pay a cold recompute on their next visit. Refresh-ahead moves
//! that cost off the request path: scan the snapshot store, plan each
//! user's re-serve from fingerprints alone ([`JustInTime::reserve_plan`]
//! — no search runs during the scan), and re-serve the stale users in
//! rate-limited batches through the ordinary [`ServeRequest::Refresh`]
//! path. Because the refresh pass *is* the on-demand path, the stored
//! snapshots — and any later on-demand re-serve — are byte-identical to
//! what a returning user would have produced themselves; the only
//! observable difference is that the returning user now replays every
//! time point ([`crate::ServeReport::cold_time_points`] and
//! [`crate::ServeReport::recomputed_time_points`] both zero).
//!
//! The scan is deterministic: [`crate::SnapshotStore::user_ids`] is
//! sorted, staleness is a pure function of stored fingerprints, and
//! batches are formed in id order. [`RefreshAheadReport`] is operator
//! telemetry only — it never enters a [`crate::ServeReport`] or crosses
//! the wire, so serving output stays bit-identical whether or not
//! refresh-ahead ran.
//!
//! One caveat: a snapshot time point with no fingerprint (a model that
//! does not expose [`jit_ml::ModelHints`] digests) can never be proven
//! fresh, so such users are re-refreshed on every pass rather than
//! settling into the `fresh` count.

use crate::api::{ServeError, ServeRequest};
use crate::service::JitService;
use crate::sharded::ShardedService;
use crate::store::retry_transient;
use jit_core::{JustInTime, ReturningUser, TimePointServe};
use std::fmt;

/// Tuning for one refresh-ahead pass.
#[derive(Debug, Clone, Copy)]
pub struct RefreshAheadOptions {
    /// Users re-served per [`ServeRequest::Refresh`] batch — the rate
    /// limit: each batch bounds the working set (and, behind a sharded
    /// dispatcher, the per-shard burst) of the background pass.
    pub batch: usize,
    /// Cap on users refreshed in this pass (per shard when driven
    /// through [`ShardedService::refresh_ahead`]); stale users beyond
    /// the cap are counted as `deferred` and picked up by the next
    /// pass. `None` refreshes every stale user.
    pub max_users: Option<usize>,
}

impl Default for RefreshAheadOptions {
    fn default() -> Self {
        RefreshAheadOptions { batch: 256, max_users: None }
    }
}

/// What one refresh-ahead pass did. Operator telemetry only: these
/// counts never enter a [`crate::ServeReport`] or the wire protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshAheadReport {
    /// Snapshots examined (every stored user, in sorted id order).
    pub scanned: usize,
    /// Users whose every fingerprinted time point matched the current
    /// models — left untouched.
    pub fresh: usize,
    /// Users re-served by this pass.
    pub refreshed: usize,
    /// Stale users left for a later pass ([`RefreshAheadOptions::max_users`]).
    pub deferred: usize,
    /// Time points whose model fingerprint changed in the retrain
    /// (diffed once per pass via [`JustInTime::drifted_time_points`]).
    pub drifted_time_points: usize,
    /// Time points the refreshed users replayed from their snapshots.
    pub replayed_time_points: usize,
    /// Time points the refreshed users recomputed from scratch.
    pub recomputed_time_points: usize,
}

impl RefreshAheadReport {
    fn absorb(&mut self, other: &RefreshAheadReport) {
        self.scanned += other.scanned;
        self.fresh += other.fresh;
        self.refreshed += other.refreshed;
        self.deferred += other.deferred;
        self.replayed_time_points += other.replayed_time_points;
        self.recomputed_time_points += other.recomputed_time_points;
    }
}

impl fmt::Display for RefreshAheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refresh-ahead: {} scanned, {} fresh, {} refreshed ({} deferred); \
             {} drifted time points, {} replayed / {} recomputed",
            self.scanned,
            self.fresh,
            self.refreshed,
            self.deferred,
            self.drifted_time_points,
            self.replayed_time_points,
            self.recomputed_time_points,
        )
    }
}

impl JitService {
    /// One refresh-ahead pass over this service's store (module docs
    /// have the full contract). `prior` is the system that was serving
    /// before the retrain, used only to report how many time points
    /// drifted; staleness itself is judged per snapshot against the
    /// *current* system's fingerprints.
    ///
    /// # Errors
    /// The typed [`ServeError`] of the failing scan load, plan, or
    /// refresh batch; users refreshed before the failure keep their
    /// refreshed snapshots (each batch is all-or-nothing, the pass is
    /// not).
    pub fn refresh_ahead(
        &self,
        prior: &JustInTime,
        options: &RefreshAheadOptions,
    ) -> Result<RefreshAheadReport, ServeError> {
        let mut report = self.refresh_ahead_pass(options)?;
        report.drifted_time_points = self
            .system()
            .drifted_time_points(prior)
            .iter()
            .filter(|drifted| **drifted)
            .count();
        Ok(report)
    }

    /// The scan + refresh body, `drifted_time_points` left at zero so
    /// the sharded fan-out can count the (shared-system) diff once.
    pub(crate) fn refresh_ahead_pass(
        &self,
        options: &RefreshAheadOptions,
    ) -> Result<RefreshAheadReport, ServeError> {
        let mut report = RefreshAheadReport::default();
        let mut stale: Vec<String> = Vec::new();
        let user_ids = retry_transient(|| self.store().user_ids())
            .map_err(|error| ServeError::Store { user_id: None, error })?;
        for user_id in user_ids {
            report.scanned += 1;
            let prior = retry_transient(|| self.store().load(&user_id))
                .map_err(|error| ServeError::Store {
                    user_id: Some(user_id.clone()),
                    error,
                })?
                .ok_or_else(|| ServeError::UnknownUser(user_id.clone()))?;
            let plan =
                self.system().reserve_plan(&ReturningUser::unchanged(prior)).map_err(
                    |error| ServeError::Session { user_id: user_id.clone(), error },
                )?;
            if plan.iter().any(|t| matches!(t, TimePointServe::Recomputed)) {
                if options.max_users.is_some_and(|cap| stale.len() >= cap) {
                    report.deferred += 1;
                } else {
                    stale.push(user_id);
                }
            } else {
                report.fresh += 1;
            }
        }
        let batch = options.batch.max(1);
        for chunk in stale.chunks(batch) {
            let response = self.serve(ServeRequest::refresh(chunk.to_vec()))?;
            report.refreshed += response.report.users;
            report.replayed_time_points += response.report.replayed_time_points;
            report.recomputed_time_points += response.report.recomputed_time_points;
        }
        Ok(report)
    }
}

impl ShardedService {
    /// [`JitService::refresh_ahead`] fanned across every shard, shard by
    /// shard in shard order (the pass is background work — determinism
    /// and bounded bursts matter more than latency). Counts are summed;
    /// `drifted_time_points` is the once-computed per-system diff, not a
    /// per-shard sum. [`RefreshAheadOptions::max_users`] applies per
    /// shard.
    ///
    /// # Errors
    /// The first failing shard's [`ServeError`]; earlier shards keep
    /// their refreshed snapshots.
    pub fn refresh_ahead(
        &self,
        prior: &JustInTime,
        options: &RefreshAheadOptions,
    ) -> Result<RefreshAheadReport, ServeError> {
        let mut report = RefreshAheadReport::default();
        for shard in self.shards() {
            report.absorb(&shard.refresh_ahead_pass(options)?);
        }
        report.drifted_time_points = self
            .system()
            .drifted_time_points(prior)
            .iter()
            .filter(|drifted| **drifted)
            .count();
        Ok(report)
    }
}
