//! The `jit-db`-backed snapshot store: re-serves survive restarts.
//!
//! Every [`SessionSnapshot`] is serialized **through the SQL engine** —
//! plain `INSERT` statements written with [`Value::sql_literal`] (floats
//! travel bit-exactly, including non-finite values) and read back with
//! ordinary `SELECT`s. The backing [`Database`] is the durable medium:
//! hold on to it (it is `Arc`-shared into the store), drop the service
//! and its trained system, and a store re-opened over the same database
//! reproduces the original re-serve bit-for-bit.
//!
//! Layout (narrow tables, schema-independent):
//!
//! | table | row per | columns |
//! |---|---|---|
//! | `jit_snapshots` | snapshot | `user_id, schema_digest, horizon, update_fn` |
//! | `jit_snapshot_profile` | profile coordinate | `user_id, idx, v` |
//! | `jit_snapshot_inputs` | temporal-input coordinate | `user_id, t, idx, v` |
//! | `jit_snapshot_fingerprints` | time point | `user_id, t, hex` (NULL = unfingerprintable) |
//! | `jit_snapshot_constraints` | scoped constraint | `user_id, ord, kind, lo, hi, body` |
//! | `jit_snapshot_candidates` | candidate | `user_id, ord, t, gap, diff, p` |
//! | `jit_snapshot_candidate_profiles` | candidate coordinate | `user_id, ord, idx, v` |
//!
//! Fingerprints round-trip via [`Digest`] hex; constraint bodies and
//! update functions via the exact [`crate::codec`]. Each snapshot
//! records the feature schema's content digest, and loads under a
//! different schema fail with [`StoreError::SchemaMismatch`] rather than
//! risk a wrong replay.

use crate::codec;
use crate::store::{SnapshotStore, StoreError};
use jit_core::{Candidate, SessionSnapshot, UserRequest};
use jit_data::FeatureSchema;
use jit_db::{ColumnType, Database, Value};
use jit_math::digest::Digest;
use std::fmt;
use std::sync::Arc;

/// The SQL-engine-backed [`SnapshotStore`].
pub struct DbSnapshotStore {
    db: Arc<Database>,
    schema: FeatureSchema,
    schema_digest: Digest,
    /// Serializes the multi-statement save/load/remove sequences: the
    /// database locks per statement, but one snapshot spans seven
    /// tables, so without this a concurrent `load` could observe a
    /// half-written ("torn") snapshot between a `save`'s DELETEs and
    /// its last INSERT. Per-store, so the sharded dispatcher's
    /// one-store-per-shard layout keeps cross-shard parallelism.
    op_lock: parking_lot::Mutex<()>,
}

const TABLES: [(&str, &[(&str, ColumnType)]); 7] = [
    (
        "jit_snapshots",
        &[
            ("user_id", ColumnType::Text),
            ("schema_digest", ColumnType::Text),
            ("horizon", ColumnType::Integer),
            ("update_fn", ColumnType::Text),
        ],
    ),
    (
        "jit_snapshot_profile",
        &[
            ("user_id", ColumnType::Text),
            ("idx", ColumnType::Integer),
            ("v", ColumnType::Real),
        ],
    ),
    (
        "jit_snapshot_inputs",
        &[
            ("user_id", ColumnType::Text),
            ("t", ColumnType::Integer),
            ("idx", ColumnType::Integer),
            ("v", ColumnType::Real),
        ],
    ),
    (
        "jit_snapshot_fingerprints",
        &[
            ("user_id", ColumnType::Text),
            ("t", ColumnType::Integer),
            ("hex", ColumnType::Text),
        ],
    ),
    (
        "jit_snapshot_constraints",
        &[
            ("user_id", ColumnType::Text),
            ("ord", ColumnType::Integer),
            ("kind", ColumnType::Text),
            ("lo", ColumnType::Integer),
            ("hi", ColumnType::Integer),
            ("body", ColumnType::Text),
        ],
    ),
    (
        "jit_snapshot_candidates",
        &[
            ("user_id", ColumnType::Text),
            ("ord", ColumnType::Integer),
            ("t", ColumnType::Integer),
            ("gap", ColumnType::Integer),
            ("diff", ColumnType::Real),
            ("p", ColumnType::Real),
        ],
    ),
    (
        "jit_snapshot_candidate_profiles",
        &[
            ("user_id", ColumnType::Text),
            ("ord", ColumnType::Integer),
            ("idx", ColumnType::Integer),
            ("v", ColumnType::Real),
        ],
    ),
];

impl DbSnapshotStore {
    /// Opens a store over `db`, creating the snapshot tables when absent
    /// (re-opening an already-populated database is the restart path).
    pub fn open(db: Arc<Database>, schema: &FeatureSchema) -> Result<Self, StoreError> {
        for (name, columns) in TABLES {
            if !db.has_table(name) {
                db.create_table(
                    name,
                    columns
                        .iter()
                        .map(|(c, ty)| (c.to_string(), *ty))
                        .collect::<Vec<_>>(),
                )?;
            }
        }
        Ok(DbSnapshotStore {
            db,
            schema: schema.clone(),
            schema_digest: schema.content_digest(),
            op_lock: parking_lot::Mutex::new(()),
        })
    }

    /// A store over a fresh private database.
    pub fn in_new_database(schema: &FeatureSchema) -> Result<Self, StoreError> {
        Self::open(Arc::new(Database::new()), schema)
    }

    /// The backing database (the durable medium — keep a clone of the
    /// `Arc` to survive a service restart).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    fn corrupt(user_id: &str, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt { user_id: user_id.to_string(), detail: detail.into() }
    }

    /// Runs one statement, rendered from literal values.
    fn exec(&self, sql: &str) -> Result<(), StoreError> {
        self.db.execute(sql)?;
        Ok(())
    }

    fn delete_user(&self, id_lit: &str) -> Result<(), StoreError> {
        for (name, _) in TABLES {
            self.exec(&format!("DELETE FROM {name} WHERE user_id = {id_lit}"))?;
        }
        Ok(())
    }
}

impl fmt::Debug for DbSnapshotStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DbSnapshotStore")
            .field("schema_digest", &self.schema_digest)
            .finish_non_exhaustive()
    }
}

/// Renders `INSERT INTO table VALUES (row), (row), …` from literal rows.
/// Returns `None` for zero rows (nothing to insert).
fn insert_sql(table: &str, rows: &[Vec<Value>]) -> Option<String> {
    if rows.is_empty() {
        return None;
    }
    let body: Vec<String> = rows
        .iter()
        .map(|row| {
            let vals: Vec<String> = row.iter().map(Value::sql_literal).collect();
            format!("({})", vals.join(", "))
        })
        .collect();
    Some(format!("INSERT INTO {table} VALUES {}", body.join(", ")))
}

impl SnapshotStore for DbSnapshotStore {
    fn save(
        &self,
        user_id: &str,
        snapshot: &SessionSnapshot,
    ) -> Result<(), StoreError> {
        let _guard = self.op_lock.lock();
        let id = Value::from(user_id);
        let id_lit = id.sql_literal();
        // Replace semantics: clear any prior snapshot rows first.
        self.delete_user(&id_lit)?;

        let header = vec![vec![
            id.clone(),
            Value::from(self.schema_digest.to_hex()),
            Value::Int(snapshot.horizon() as i64),
            Value::from(codec::encode_update_fn(snapshot.request.update_fn.as_ref())),
        ]];
        let profile: Vec<Vec<Value>> = snapshot
            .request
            .profile
            .iter()
            .enumerate()
            .map(|(i, v)| vec![id.clone(), Value::Int(i as i64), Value::Float(*v)])
            .collect();
        let inputs: Vec<Vec<Value>> = snapshot
            .temporal_inputs()
            .iter()
            .enumerate()
            .flat_map(|(t, x)| {
                let id = &id;
                x.iter().enumerate().map(move |(i, v)| {
                    vec![
                        id.clone(),
                        Value::Int(t as i64),
                        Value::Int(i as i64),
                        Value::Float(*v),
                    ]
                })
            })
            .collect();
        let fingerprints: Vec<Vec<Value>> = snapshot
            .fingerprints()
            .iter()
            .enumerate()
            .map(|(t, fp)| {
                vec![
                    id.clone(),
                    Value::Int(t as i64),
                    fp.map_or(Value::Null, |d| Value::from(d.to_hex())),
                ]
            })
            .collect();
        let constraints: Vec<Vec<Value>> = snapshot
            .request
            .constraints
            .items()
            .iter()
            .enumerate()
            .map(|(ord, item)| {
                let (kind, lo, hi) = match item.scope {
                    jit_constraints::TimeScope::AllTimes => ("all", 0, 0),
                    jit_constraints::TimeScope::At(t) => ("at", t, t),
                    jit_constraints::TimeScope::Between(lo, hi) => ("between", lo, hi),
                };
                vec![
                    id.clone(),
                    Value::Int(ord as i64),
                    Value::from(kind),
                    Value::Int(lo as i64),
                    Value::Int(hi as i64),
                    Value::from(codec::encode_constraint(&item.constraint)),
                ]
            })
            .collect();
        let mut candidates = Vec::new();
        let mut candidate_profiles = Vec::new();
        for (ord, c) in snapshot.candidates().iter().enumerate() {
            candidates.push(vec![
                id.clone(),
                Value::Int(ord as i64),
                Value::Int(c.time_index as i64),
                Value::Int(c.gap as i64),
                Value::Float(c.diff),
                Value::Float(c.confidence),
            ]);
            for (i, v) in c.profile.iter().enumerate() {
                candidate_profiles.push(vec![
                    id.clone(),
                    Value::Int(ord as i64),
                    Value::Int(i as i64),
                    Value::Float(*v),
                ]);
            }
        }

        for (table, rows) in [
            ("jit_snapshots", header),
            ("jit_snapshot_profile", profile),
            ("jit_snapshot_inputs", inputs),
            ("jit_snapshot_fingerprints", fingerprints),
            ("jit_snapshot_constraints", constraints),
            ("jit_snapshot_candidates", candidates),
            ("jit_snapshot_candidate_profiles", candidate_profiles),
        ] {
            if let Some(sql) = insert_sql(table, &rows) {
                self.exec(&sql)?;
            }
        }
        Ok(())
    }

    fn load(&self, user_id: &str) -> Result<Option<SessionSnapshot>, StoreError> {
        let _guard = self.op_lock.lock();
        let id_lit = Value::from(user_id).sql_literal();
        let header = self.db.execute(&format!(
            "SELECT schema_digest, horizon, update_fn FROM jit_snapshots \
             WHERE user_id = {id_lit}"
        ))?;
        let Some(header_row) = header.rows.first() else {
            return Ok(None);
        };
        let digest_hex = match &header_row[0] {
            Value::Text(s) => s.clone(),
            other => {
                return Err(Self::corrupt(user_id, format!("schema digest {other}")))
            }
        };
        let found = Digest::from_hex(&digest_hex)
            .ok_or_else(|| Self::corrupt(user_id, "unparseable schema digest"))?;
        if found != self.schema_digest {
            return Err(StoreError::SchemaMismatch {
                expected: self.schema_digest,
                found,
            });
        }
        let horizon = header_row[1]
            .as_i64()
            .filter(|h| *h >= 0)
            .ok_or_else(|| Self::corrupt(user_id, "horizon"))?
            as usize;
        let update_text = match &header_row[2] {
            Value::Text(s) => s.as_str(),
            other => return Err(Self::corrupt(user_id, format!("update_fn {other}"))),
        };
        let update_fn = codec::decode_update_fn(update_text, &self.schema)
            .map_err(|e| Self::corrupt(user_id, e.to_string()))?;

        // Profile, ordered by coordinate.
        let rs = self.db.execute(&format!(
            "SELECT v FROM jit_snapshot_profile WHERE user_id = {id_lit} \
             ORDER BY idx"
        ))?;
        let profile: Vec<f64> = rs
            .rows
            .iter()
            .map(|r| r[0].as_f64())
            .collect::<Option<_>>()
            .ok_or_else(|| Self::corrupt(user_id, "profile values"))?;
        if profile.len() != self.schema.dim() {
            return Err(Self::corrupt(user_id, "profile dimension"));
        }

        // Temporal inputs, (t, idx)-ordered into per-t rows.
        let rs = self.db.execute(&format!(
            "SELECT t, v FROM jit_snapshot_inputs WHERE user_id = {id_lit} \
             ORDER BY t, idx"
        ))?;
        let mut temporal_inputs: Vec<Vec<f64>> = vec![Vec::new(); horizon + 1];
        for row in &rs.rows {
            let t = row[0]
                .as_i64()
                .filter(|t| (0..=horizon as i64).contains(t))
                .ok_or_else(|| Self::corrupt(user_id, "temporal-input time"))?;
            let v = row[1]
                .as_f64()
                .ok_or_else(|| Self::corrupt(user_id, "temporal-input value"))?;
            temporal_inputs[t as usize].push(v);
        }
        if temporal_inputs.iter().any(|x| x.len() != self.schema.dim()) {
            return Err(Self::corrupt(user_id, "temporal-input dimension"));
        }

        // Fingerprints per time point (NULL = unfingerprintable).
        let rs = self.db.execute(&format!(
            "SELECT t, hex FROM jit_snapshot_fingerprints \
             WHERE user_id = {id_lit} ORDER BY t"
        ))?;
        let mut fingerprints: Vec<Option<Digest>> = vec![None; horizon + 1];
        if rs.rows.len() != horizon + 1 {
            return Err(Self::corrupt(user_id, "fingerprint row count"));
        }
        for row in &rs.rows {
            let t = row[0]
                .as_i64()
                .filter(|t| (0..=horizon as i64).contains(t))
                .ok_or_else(|| Self::corrupt(user_id, "fingerprint time"))?;
            fingerprints[t as usize] = match &row[1] {
                Value::Null => None,
                Value::Text(hex) => Some(Digest::from_hex(hex).ok_or_else(|| {
                    Self::corrupt(user_id, "unparseable fingerprint hex")
                })?),
                other => {
                    return Err(Self::corrupt(user_id, format!("fingerprint {other}")))
                }
            };
        }

        // Preference constraints, in insertion order.
        let rs = self.db.execute(&format!(
            "SELECT kind, lo, hi, body FROM jit_snapshot_constraints \
             WHERE user_id = {id_lit} ORDER BY ord"
        ))?;
        let mut constraints = jit_constraints::ConstraintSet::new();
        for row in &rs.rows {
            let body = match &row[3] {
                Value::Text(s) => s.as_str(),
                other => {
                    return Err(Self::corrupt(
                        user_id,
                        format!("constraint body {other}"),
                    ))
                }
            };
            let constraint = codec::decode_constraint(body)
                .map_err(|e| Self::corrupt(user_id, e.to_string()))?;
            let scope_int = |i: usize| {
                row[i]
                    .as_i64()
                    .filter(|v| *v >= 0)
                    .map(|v| v as usize)
                    .ok_or_else(|| Self::corrupt(user_id, "constraint scope"))
            };
            match &row[0] {
                Value::Text(kind) if kind == "all" => {
                    constraints.add(constraint);
                }
                Value::Text(kind) if kind == "at" => {
                    constraints.add_at(scope_int(1)?, constraint);
                }
                Value::Text(kind) if kind == "between" => {
                    let (lo, hi) = (scope_int(1)?, scope_int(2)?);
                    if lo > hi {
                        return Err(Self::corrupt(user_id, "scope range order"));
                    }
                    constraints.add_between(lo, hi, constraint);
                }
                other => {
                    return Err(Self::corrupt(user_id, format!("scope kind {other}")))
                }
            }
        }

        // Candidates with their profiles, in stored order.
        let rs = self.db.execute(&format!(
            "SELECT t, gap, diff, p FROM jit_snapshot_candidates \
             WHERE user_id = {id_lit} ORDER BY ord"
        ))?;
        let profile_rows = self.db.execute(&format!(
            "SELECT ord, v FROM jit_snapshot_candidate_profiles \
             WHERE user_id = {id_lit} ORDER BY ord, idx"
        ))?;
        let mut candidate_profiles: Vec<Vec<f64>> = vec![Vec::new(); rs.rows.len()];
        for row in &profile_rows.rows {
            let ord = row[0]
                .as_i64()
                .filter(|o| (0..rs.rows.len() as i64).contains(o))
                .ok_or_else(|| Self::corrupt(user_id, "candidate profile ord"))?;
            let v = row[1]
                .as_f64()
                .ok_or_else(|| Self::corrupt(user_id, "candidate profile value"))?;
            candidate_profiles[ord as usize].push(v);
        }
        if candidate_profiles.iter().any(|p| p.len() != self.schema.dim()) {
            return Err(Self::corrupt(user_id, "candidate profile dimension"));
        }
        let mut candidates = Vec::with_capacity(rs.rows.len());
        for (row, profile) in rs.rows.iter().zip(candidate_profiles) {
            let int = |v: &Value, what: &'static str| {
                v.as_i64()
                    .filter(|v| *v >= 0)
                    .map(|v| v as usize)
                    .ok_or_else(|| Self::corrupt(user_id, what))
            };
            candidates.push(Candidate {
                time_index: int(&row[0], "candidate time")?,
                profile,
                gap: int(&row[1], "candidate gap")?,
                diff: row[2]
                    .as_f64()
                    .ok_or_else(|| Self::corrupt(user_id, "candidate diff"))?,
                confidence: row[3]
                    .as_f64()
                    .ok_or_else(|| Self::corrupt(user_id, "candidate p"))?,
            });
        }

        let request = UserRequest { profile, constraints, update_fn };
        SessionSnapshot::from_parts(request, temporal_inputs, candidates, fingerprints)
            .ok_or_else(|| Self::corrupt(user_id, "inconsistent snapshot shape"))
            .map(Some)
    }

    fn remove(&self, user_id: &str) -> Result<bool, StoreError> {
        let _guard = self.op_lock.lock();
        let id_lit = Value::from(user_id).sql_literal();
        let rs = self.db.execute(&format!(
            "SELECT COUNT(*) FROM jit_snapshots WHERE user_id = {id_lit}"
        ))?;
        let existed = rs.scalar().and_then(|v| v.as_i64()).unwrap_or(0) > 0;
        self.delete_user(&id_lit)?;
        Ok(existed)
    }

    fn user_ids(&self) -> Result<Vec<String>, StoreError> {
        let _guard = self.op_lock.lock();
        let rs =
            self.db.execute("SELECT user_id FROM jit_snapshots ORDER BY user_id")?;
        rs.rows
            .iter()
            .map(|r| match &r[0] {
                Value::Text(s) => Ok(s.clone()),
                other => Err(StoreError::Corrupt {
                    user_id: other.to_string(),
                    detail: "non-text user id".to_string(),
                }),
            })
            .collect()
    }
}
