//! The `jit-db`-backed snapshot store: re-serves survive restarts.
//!
//! Every [`SessionSnapshot`] is serialized **through the SQL engine's
//! programmatic row API** — typed [`Value`] rows on the write path (one
//! atomic delete+insert batch per save) and prepared `SELECT … WHERE
//! user_id = ?` statements on the read path, compiled once at open.
//! Floats travel as raw bits end to end (no SQL-literal rendering, no
//! tokenizer on the hot path), so NaN payloads and `-0.0` survive, and
//! a per-user load costs a handful of direct scans instead of seven
//! parse+plan passes.
//!
//! Two durability tiers share the code path:
//!
//! * [`DbSnapshotStore::open`] — the backing [`Database`] is the
//!   medium; keep its `Arc` alive across a restart.
//! * [`DbSnapshotStore::open_durable`] — a
//!   [`DurableDatabase`] is the medium; every
//!   save commits one write-ahead-log record, so snapshots survive a
//!   process **kill**, not just a drop. A save is crash-atomic: after
//!   recovery the store holds either the old snapshot or the new one,
//!   never a torn mix.
//!
//! Layout (narrow tables, schema-independent):
//!
//! | table | row per | columns |
//! |---|---|---|
//! | `jit_snapshots` | snapshot | `user_id, schema_digest, horizon, update_fn` |
//! | `jit_snapshot_profile` | profile coordinate | `user_id, idx, v` |
//! | `jit_snapshot_inputs` | temporal-input coordinate | `user_id, t, idx, v` |
//! | `jit_snapshot_fingerprints` | time point | `user_id, t, hex` (NULL = unfingerprintable) |
//! | `jit_snapshot_constraints` | scoped constraint | `user_id, ord, kind, lo, hi, body` |
//! | `jit_snapshot_candidates` | candidate | `user_id, ord, t, gap, diff, p` |
//! | `jit_snapshot_candidate_profiles` | candidate coordinate | `user_id, ord, idx, v` |
//!
//! Fingerprints round-trip via [`Digest`] hex; constraint bodies and
//! update functions via the exact [`crate::codec`]. Each snapshot
//! records the feature schema's content digest, and loads under a
//! different schema fail with [`StoreError::SchemaMismatch`] rather than
//! risk a wrong replay.

use crate::codec;
use crate::store::{SnapshotStore, StoreError};
use jit_core::{Candidate, SessionSnapshot, UserRequest};
use jit_data::FeatureSchema;
use jit_db::{ColumnType, Database, DurableDatabase, Prepared, Value, WalOp};
use jit_math::digest::Digest;
use std::fmt;
use std::sync::Arc;

/// The read-path statements, compiled once at open. All are
/// single-table `WHERE user_id = ?` selects in the shape the engine's
/// direct-scan plan covers, so executing them never touches the SQL
/// front end.
struct Stmts {
    header: Prepared,
    profile: Prepared,
    inputs: Prepared,
    fingerprints: Prepared,
    constraints: Prepared,
    candidates: Prepared,
    candidate_profiles: Prepared,
    exists: Prepared,
    user_ids: Prepared,
}

impl Stmts {
    fn compile(db: &Database) -> Result<Stmts, StoreError> {
        Ok(Stmts {
            header: db.prepare(
                "SELECT schema_digest, horizon, update_fn FROM jit_snapshots \
                 WHERE user_id = ?",
            )?,
            profile: db.prepare(
                "SELECT v FROM jit_snapshot_profile WHERE user_id = ? ORDER BY idx",
            )?,
            inputs: db.prepare(
                "SELECT t, v FROM jit_snapshot_inputs WHERE user_id = ? \
                 ORDER BY t, idx",
            )?,
            fingerprints: db.prepare(
                "SELECT t, hex FROM jit_snapshot_fingerprints WHERE user_id = ? \
                 ORDER BY t",
            )?,
            constraints: db.prepare(
                "SELECT kind, lo, hi, body FROM jit_snapshot_constraints \
                 WHERE user_id = ? ORDER BY ord",
            )?,
            candidates: db.prepare(
                "SELECT t, gap, diff, p FROM jit_snapshot_candidates \
                 WHERE user_id = ? ORDER BY ord",
            )?,
            candidate_profiles: db.prepare(
                "SELECT ord, v FROM jit_snapshot_candidate_profiles \
                 WHERE user_id = ? ORDER BY ord, idx",
            )?,
            exists: db
                .prepare("SELECT user_id FROM jit_snapshots WHERE user_id = ?")?,
            user_ids: db
                .prepare("SELECT user_id FROM jit_snapshots ORDER BY user_id")?,
        })
    }
}

/// The SQL-engine-backed [`SnapshotStore`].
pub struct DbSnapshotStore {
    db: Arc<Database>,
    /// When set, writes commit through the write-ahead log instead of
    /// mutating `db` directly (`db` is then the WAL's in-memory state).
    wal: Option<Arc<DurableDatabase>>,
    schema: FeatureSchema,
    schema_digest: Digest,
    stmts: Stmts,
    /// Serializes the multi-statement save/load/remove sequences: the
    /// database locks per statement, but one snapshot spans seven
    /// tables, so without this a concurrent `load` could observe a
    /// half-written ("torn") snapshot between a `save`'s DELETEs and
    /// its last INSERT. Per-store, so the sharded dispatcher's
    /// one-store-per-shard layout keeps cross-shard parallelism.
    op_lock: parking_lot::Mutex<()>,
}

const TABLES: [(&str, &[(&str, ColumnType)]); 7] = [
    (
        "jit_snapshots",
        &[
            ("user_id", ColumnType::Text),
            ("schema_digest", ColumnType::Text),
            ("horizon", ColumnType::Integer),
            ("update_fn", ColumnType::Text),
        ],
    ),
    (
        "jit_snapshot_profile",
        &[
            ("user_id", ColumnType::Text),
            ("idx", ColumnType::Integer),
            ("v", ColumnType::Real),
        ],
    ),
    (
        "jit_snapshot_inputs",
        &[
            ("user_id", ColumnType::Text),
            ("t", ColumnType::Integer),
            ("idx", ColumnType::Integer),
            ("v", ColumnType::Real),
        ],
    ),
    (
        "jit_snapshot_fingerprints",
        &[
            ("user_id", ColumnType::Text),
            ("t", ColumnType::Integer),
            ("hex", ColumnType::Text),
        ],
    ),
    (
        "jit_snapshot_constraints",
        &[
            ("user_id", ColumnType::Text),
            ("ord", ColumnType::Integer),
            ("kind", ColumnType::Text),
            ("lo", ColumnType::Integer),
            ("hi", ColumnType::Integer),
            ("body", ColumnType::Text),
        ],
    ),
    (
        "jit_snapshot_candidates",
        &[
            ("user_id", ColumnType::Text),
            ("ord", ColumnType::Integer),
            ("t", ColumnType::Integer),
            ("gap", ColumnType::Integer),
            ("diff", ColumnType::Real),
            ("p", ColumnType::Real),
        ],
    ),
    (
        "jit_snapshot_candidate_profiles",
        &[
            ("user_id", ColumnType::Text),
            ("ord", ColumnType::Integer),
            ("idx", ColumnType::Integer),
            ("v", ColumnType::Real),
        ],
    ),
];

impl DbSnapshotStore {
    /// Opens a store over `db`, creating the snapshot tables when absent
    /// (re-opening an already-populated database is the restart path).
    pub fn open(db: Arc<Database>, schema: &FeatureSchema) -> Result<Self, StoreError> {
        for (name, columns) in TABLES {
            if !db.has_table(name) {
                db.create_table(name, owned_columns(columns))?;
            }
        }
        declare_indexes(&db)?;
        let stmts = Stmts::compile(&db)?;
        Ok(DbSnapshotStore {
            db,
            wal: None,
            schema: schema.clone(),
            schema_digest: schema.content_digest(),
            stmts,
            op_lock: parking_lot::Mutex::new(()),
        })
    }

    /// A store over a fresh private database.
    pub fn in_new_database(schema: &FeatureSchema) -> Result<Self, StoreError> {
        Self::open(Arc::new(Database::new()), schema)
    }

    /// Opens a store whose writes commit through `wal`'s write-ahead
    /// log: each save/remove is one crash-atomic logged batch, and a
    /// store reopened over the recovered log re-serves bit-identically.
    /// Missing snapshot tables are created (and logged) on open.
    pub fn open_durable(
        wal: Arc<DurableDatabase>,
        schema: &FeatureSchema,
    ) -> Result<Self, StoreError> {
        let db = Arc::clone(wal.database());
        let ddl: Vec<WalOp> = TABLES
            .iter()
            .filter(|(name, _)| !db.has_table(name))
            .map(|(name, columns)| WalOp::CreateTable {
                name: name.to_string(),
                columns: owned_columns(columns),
            })
            .collect();
        if !ddl.is_empty() {
            wal.commit(&ddl)?;
        }
        declare_indexes(&db)?;
        let stmts = Stmts::compile(&db)?;
        Ok(DbSnapshotStore {
            db,
            wal: Some(wal),
            schema: schema.clone(),
            schema_digest: schema.content_digest(),
            stmts,
            op_lock: parking_lot::Mutex::new(()),
        })
    }

    /// The backing database (the durable medium — keep a clone of the
    /// `Arc` to survive a service restart).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The write-ahead log behind this store, when opened durable.
    pub fn wal(&self) -> Option<&Arc<DurableDatabase>> {
        self.wal.as_ref()
    }

    fn corrupt(user_id: &str, detail: impl Into<String>) -> StoreError {
        StoreError::Corrupt { user_id: user_id.to_string(), detail: detail.into() }
    }

    /// Runs a prepared read with the user id bound.
    fn query(
        &self,
        stmt: &Prepared,
        user_id: &str,
    ) -> Result<jit_db::ResultSet, StoreError> {
        Ok(self.db.execute_prepared(stmt, &[Value::from(user_id)])?)
    }

    /// Applies one save/remove batch: through the WAL as a single
    /// crash-atomic commit when durable, directly otherwise. The ops are
    /// typed (validated before any byte is logged), so a failed apply
    /// cannot leave a half-written snapshot behind.
    fn apply_batch(&self, ops: &[WalOp]) -> Result<(), StoreError> {
        match &self.wal {
            Some(wal) => {
                wal.commit(ops)?;
            }
            None => {
                for op in ops {
                    match op {
                        WalOp::DeleteEq { table, column, value } => {
                            self.db.delete_eq(table, column, value)?;
                        }
                        WalOp::InsertRows { table, rows } => {
                            self.db.insert_rows(table, rows.clone())?;
                        }
                        other => {
                            return Err(StoreError::Unavailable(format!(
                                "unsupported direct-apply op {other:?}"
                            )))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The delete half of replace semantics for one user.
    fn delete_ops(id: &Value) -> Vec<WalOp> {
        TABLES
            .iter()
            .map(|(name, _)| WalOp::DeleteEq {
                table: name.to_string(),
                column: "user_id".to_string(),
                value: id.clone(),
            })
            .collect()
    }
}

fn owned_columns(columns: &[(&str, ColumnType)]) -> Vec<(String, ColumnType)> {
    columns.iter().map(|(c, ty)| (c.to_string(), *ty)).collect()
}

/// Every store read and the replace-on-save delete filter on `user_id`,
/// so each snapshot table gets a hash index on it. Indexes are in-memory
/// acceleration, not logged state: they are (re)declared on every open —
/// including reopens over recovered WALs — and never change results.
fn declare_indexes(db: &Database) -> Result<(), StoreError> {
    for (name, _) in TABLES {
        db.create_index(name, "user_id")?;
    }
    Ok(())
}

impl fmt::Debug for DbSnapshotStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DbSnapshotStore")
            .field("schema_digest", &self.schema_digest)
            .finish_non_exhaustive()
    }
}

/// A typed insert op, or `None` for zero rows (nothing to insert).
fn insert_op(table: &str, rows: Vec<Vec<Value>>) -> Option<WalOp> {
    if rows.is_empty() {
        return None;
    }
    Some(WalOp::InsertRows { table: table.to_string(), rows })
}

impl SnapshotStore for DbSnapshotStore {
    fn save(
        &self,
        user_id: &str,
        snapshot: &SessionSnapshot,
    ) -> Result<(), StoreError> {
        let _guard = self.op_lock.lock();
        let id = Value::from(user_id);

        let header = vec![vec![
            id.clone(),
            Value::from(self.schema_digest.to_hex()),
            Value::Int(snapshot.horizon() as i64),
            Value::from(codec::encode_update_fn(snapshot.request.update_fn.as_ref())),
        ]];
        let profile: Vec<Vec<Value>> = snapshot
            .request
            .profile
            .iter()
            .enumerate()
            .map(|(i, v)| vec![id.clone(), Value::Int(i as i64), Value::Float(*v)])
            .collect();
        let inputs: Vec<Vec<Value>> = snapshot
            .temporal_inputs()
            .iter()
            .enumerate()
            .flat_map(|(t, x)| {
                let id = &id;
                x.iter().enumerate().map(move |(i, v)| {
                    vec![
                        id.clone(),
                        Value::Int(t as i64),
                        Value::Int(i as i64),
                        Value::Float(*v),
                    ]
                })
            })
            .collect();
        let fingerprints: Vec<Vec<Value>> = snapshot
            .fingerprints()
            .iter()
            .enumerate()
            .map(|(t, fp)| {
                vec![
                    id.clone(),
                    Value::Int(t as i64),
                    fp.map_or(Value::Null, |d| Value::from(d.to_hex())),
                ]
            })
            .collect();
        let constraints: Vec<Vec<Value>> = snapshot
            .request
            .constraints
            .items()
            .iter()
            .enumerate()
            .map(|(ord, item)| {
                let (kind, lo, hi) = match item.scope {
                    jit_constraints::TimeScope::AllTimes => ("all", 0, 0),
                    jit_constraints::TimeScope::At(t) => ("at", t, t),
                    jit_constraints::TimeScope::Between(lo, hi) => ("between", lo, hi),
                };
                vec![
                    id.clone(),
                    Value::Int(ord as i64),
                    Value::from(kind),
                    Value::Int(lo as i64),
                    Value::Int(hi as i64),
                    Value::from(codec::encode_constraint(&item.constraint)),
                ]
            })
            .collect();
        let mut candidates = Vec::new();
        let mut candidate_profiles = Vec::new();
        for (ord, c) in snapshot.candidates().iter().enumerate() {
            candidates.push(vec![
                id.clone(),
                Value::Int(ord as i64),
                Value::Int(c.time_index as i64),
                Value::Int(c.gap as i64),
                Value::Float(c.diff),
                Value::Float(c.confidence),
            ]);
            for (i, v) in c.profile.iter().enumerate() {
                candidate_profiles.push(vec![
                    id.clone(),
                    Value::Int(ord as i64),
                    Value::Int(i as i64),
                    Value::Float(*v),
                ]);
            }
        }

        // Replace semantics as ONE batch: deletes of any prior snapshot
        // rows, then the inserts. Durable stores commit it as a single
        // WAL record, so a crash recovers either the old snapshot or the
        // new one — never rows from both.
        let mut ops = Self::delete_ops(&id);
        ops.extend(
            [
                ("jit_snapshots", header),
                ("jit_snapshot_profile", profile),
                ("jit_snapshot_inputs", inputs),
                ("jit_snapshot_fingerprints", fingerprints),
                ("jit_snapshot_constraints", constraints),
                ("jit_snapshot_candidates", candidates),
                ("jit_snapshot_candidate_profiles", candidate_profiles),
            ]
            .into_iter()
            .filter_map(|(table, rows)| insert_op(table, rows)),
        );
        self.apply_batch(&ops)
    }

    fn load(&self, user_id: &str) -> Result<Option<SessionSnapshot>, StoreError> {
        let _guard = self.op_lock.lock();
        let header = self.query(&self.stmts.header, user_id)?;
        let Some(header_row) = header.rows.first() else {
            return Ok(None);
        };
        let digest_hex = match &header_row[0] {
            Value::Text(s) => s.clone(),
            other => {
                return Err(Self::corrupt(user_id, format!("schema digest {other}")))
            }
        };
        let found = Digest::from_hex(&digest_hex)
            .ok_or_else(|| Self::corrupt(user_id, "unparseable schema digest"))?;
        if found != self.schema_digest {
            return Err(StoreError::SchemaMismatch {
                expected: self.schema_digest,
                found,
            });
        }
        let horizon = header_row[1]
            .as_i64()
            .filter(|h| *h >= 0)
            .ok_or_else(|| Self::corrupt(user_id, "horizon"))?
            as usize;
        let update_text = match &header_row[2] {
            Value::Text(s) => s.as_str(),
            other => return Err(Self::corrupt(user_id, format!("update_fn {other}"))),
        };
        let update_fn = codec::decode_update_fn(update_text, &self.schema)
            .map_err(|e| Self::corrupt(user_id, e.to_string()))?;

        // Profile, ordered by coordinate.
        let rs = self.query(&self.stmts.profile, user_id)?;
        let profile: Vec<f64> = rs
            .rows
            .iter()
            .map(|r| r[0].as_f64())
            .collect::<Option<_>>()
            .ok_or_else(|| Self::corrupt(user_id, "profile values"))?;
        if profile.len() != self.schema.dim() {
            return Err(Self::corrupt(user_id, "profile dimension"));
        }

        // Temporal inputs, (t, idx)-ordered into per-t rows.
        let rs = self.query(&self.stmts.inputs, user_id)?;
        let mut temporal_inputs: Vec<Vec<f64>> = vec![Vec::new(); horizon + 1];
        for row in &rs.rows {
            let t = row[0]
                .as_i64()
                .filter(|t| (0..=horizon as i64).contains(t))
                .ok_or_else(|| Self::corrupt(user_id, "temporal-input time"))?;
            let v = row[1]
                .as_f64()
                .ok_or_else(|| Self::corrupt(user_id, "temporal-input value"))?;
            temporal_inputs[t as usize].push(v);
        }
        if temporal_inputs.iter().any(|x| x.len() != self.schema.dim()) {
            return Err(Self::corrupt(user_id, "temporal-input dimension"));
        }

        // Fingerprints per time point (NULL = unfingerprintable).
        let rs = self.query(&self.stmts.fingerprints, user_id)?;
        let mut fingerprints: Vec<Option<Digest>> = vec![None; horizon + 1];
        if rs.rows.len() != horizon + 1 {
            return Err(Self::corrupt(user_id, "fingerprint row count"));
        }
        for row in &rs.rows {
            let t = row[0]
                .as_i64()
                .filter(|t| (0..=horizon as i64).contains(t))
                .ok_or_else(|| Self::corrupt(user_id, "fingerprint time"))?;
            fingerprints[t as usize] = match &row[1] {
                Value::Null => None,
                Value::Text(hex) => Some(Digest::from_hex(hex).ok_or_else(|| {
                    Self::corrupt(user_id, "unparseable fingerprint hex")
                })?),
                other => {
                    return Err(Self::corrupt(user_id, format!("fingerprint {other}")))
                }
            };
        }

        // Preference constraints, in insertion order.
        let rs = self.query(&self.stmts.constraints, user_id)?;
        let mut constraints = jit_constraints::ConstraintSet::new();
        for row in &rs.rows {
            let body = match &row[3] {
                Value::Text(s) => s.as_str(),
                other => {
                    return Err(Self::corrupt(
                        user_id,
                        format!("constraint body {other}"),
                    ))
                }
            };
            let constraint = codec::decode_constraint(body)
                .map_err(|e| Self::corrupt(user_id, e.to_string()))?;
            let scope_int = |i: usize| {
                row[i]
                    .as_i64()
                    .filter(|v| *v >= 0)
                    .map(|v| v as usize)
                    .ok_or_else(|| Self::corrupt(user_id, "constraint scope"))
            };
            match &row[0] {
                Value::Text(kind) if kind == "all" => {
                    constraints.add(constraint);
                }
                Value::Text(kind) if kind == "at" => {
                    constraints.add_at(scope_int(1)?, constraint);
                }
                Value::Text(kind) if kind == "between" => {
                    let (lo, hi) = (scope_int(1)?, scope_int(2)?);
                    if lo > hi {
                        return Err(Self::corrupt(user_id, "scope range order"));
                    }
                    constraints.add_between(lo, hi, constraint);
                }
                other => {
                    return Err(Self::corrupt(user_id, format!("scope kind {other}")))
                }
            }
        }

        // Candidates with their profiles, in stored order.
        let rs = self.query(&self.stmts.candidates, user_id)?;
        let profile_rows = self.query(&self.stmts.candidate_profiles, user_id)?;
        let mut candidate_profiles: Vec<Vec<f64>> = vec![Vec::new(); rs.rows.len()];
        for row in &profile_rows.rows {
            let ord = row[0]
                .as_i64()
                .filter(|o| (0..rs.rows.len() as i64).contains(o))
                .ok_or_else(|| Self::corrupt(user_id, "candidate profile ord"))?;
            let v = row[1]
                .as_f64()
                .ok_or_else(|| Self::corrupt(user_id, "candidate profile value"))?;
            candidate_profiles[ord as usize].push(v);
        }
        if candidate_profiles.iter().any(|p| p.len() != self.schema.dim()) {
            return Err(Self::corrupt(user_id, "candidate profile dimension"));
        }
        let mut candidates = Vec::with_capacity(rs.rows.len());
        for (row, profile) in rs.rows.iter().zip(candidate_profiles) {
            let int = |v: &Value, what: &'static str| {
                v.as_i64()
                    .filter(|v| *v >= 0)
                    .map(|v| v as usize)
                    .ok_or_else(|| Self::corrupt(user_id, what))
            };
            candidates.push(Candidate {
                time_index: int(&row[0], "candidate time")?,
                profile,
                gap: int(&row[1], "candidate gap")?,
                diff: row[2]
                    .as_f64()
                    .ok_or_else(|| Self::corrupt(user_id, "candidate diff"))?,
                confidence: row[3]
                    .as_f64()
                    .ok_or_else(|| Self::corrupt(user_id, "candidate p"))?,
            });
        }

        let request = UserRequest { profile, constraints, update_fn };
        SessionSnapshot::from_parts(request, temporal_inputs, candidates, fingerprints)
            .ok_or_else(|| Self::corrupt(user_id, "inconsistent snapshot shape"))
            .map(Some)
    }

    fn remove(&self, user_id: &str) -> Result<bool, StoreError> {
        let _guard = self.op_lock.lock();
        let existed = !self.query(&self.stmts.exists, user_id)?.is_empty();
        if existed || self.wal.is_none() {
            self.apply_batch(&Self::delete_ops(&Value::from(user_id)))?;
        }
        Ok(existed)
    }

    fn user_ids(&self) -> Result<Vec<String>, StoreError> {
        let _guard = self.op_lock.lock();
        let rs = self.db.execute_prepared(&self.stmts.user_ids, &[])?;
        rs.rows
            .iter()
            .map(|r| match &r[0] {
                Value::Text(s) => Ok(s.clone()),
                other => Err(StoreError::Corrupt {
                    user_id: other.to_string(),
                    detail: "non-text user id".to_string(),
                }),
            })
            .collect()
    }
}
