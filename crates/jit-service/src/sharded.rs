//! The in-process sharded dispatcher.
//!
//! [`ShardedService`] fronts `N` [`JitService`] shard workers that share
//! one trained system but own **independent snapshot stores**. Users are
//! placed by consistent jump hashing of their id, cohorts are split into
//! per-shard sub-requests, dispatched concurrently on the deterministic
//! `jit-runtime` pool, and reassembled **in request order** — so the
//! response is bit-identical to an unsharded [`JitService`] for any
//! shard count (locked down by `tests/determinism.rs`).
//!
//! The shard boundary is an owned-value boundary (requests in, sessions
//! and snapshots out; shards never share mutable state), which is the
//! shape an OS-process or network backend needs — swapping the worker
//! call for an RPC leaves the routing, ordering and error semantics
//! untouched.

// Decode/serve path: panics are denied outright here (tests and the
// few fn-level reasoned allows excepted) — hostile bytes and worker
// failures must surface as typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::api::{ServeError, ServeReport, ServeRequest, ServeResponse, ServedUser};
use crate::service::{check_user_ids, JitService};
use crate::store::SnapshotStore;
use jit_core::JustInTime;
use jit_runtime::Runtime;
use std::fmt;
use std::sync::Arc;

/// Consistent jump hash (Lamping & Veach): maps `key` to a bucket in
/// `0..buckets` such that growing the bucket count relocates only
/// ~`1/buckets` of the keys. Deterministic across processes.
fn jump_consistent_hash(mut key: u64, buckets: usize) -> usize {
    debug_assert!(buckets >= 1);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        key = key.wrapping_mul(2862933555777941757).wrapping_add(1);
        j = ((b.wrapping_add(1) as f64) * ((1u64 << 31) as f64)
            / (((key >> 33).wrapping_add(1)) as f64)) as i64;
    }
    b as usize
}

/// Stable 64-bit key for a user id (domain-separated digest, identical
/// across processes and runs).
fn user_key(user_id: &str) -> u64 {
    let mut w = jit_math::DigestWriter::new("jit-service/shard-placement");
    w.write_str(user_id);
    w.finish().0[0]
}

/// The shard `user_id` is routed to among `n_shards` — the one placement
/// function of the serving tier, shared by the in-process dispatcher and
/// the OS-process backend (`crate::supervisor`) so a user's snapshot
/// lands on the same shard no matter which tier serves them.
///
/// # Panics
/// Panics when `n_shards == 0`.
pub fn shard_index(user_id: &str, n_shards: usize) -> usize {
    // jit-analyze: allow(no-panic-paths) — documented `# Panics` contract: a zero-shard topology is a construction bug, not input
    assert!(n_shards >= 1, "routing needs at least one shard");
    jump_consistent_hash(user_key(user_id), n_shards)
}

/// A cohort dispatcher over `N` shard workers (see the module docs).
pub struct ShardedService {
    shards: Vec<JitService>,
    dispatch: Runtime,
}

impl fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl ShardedService {
    /// Builds `n_shards` workers sharing `system`, each owning the store
    /// `store_for(shard)` returns. `dispatch_threads` controls the shard
    /// fan-out (`0` = one per core, `1` = serial); output is identical
    /// for every value.
    ///
    /// # Panics
    /// Panics when `n_shards == 0` (a dispatcher with no workers is a
    /// construction bug, not a runtime condition).
    pub fn new(
        system: JustInTime,
        n_shards: usize,
        dispatch_threads: usize,
        store_for: impl FnMut(usize) -> Arc<dyn SnapshotStore>,
    ) -> Self {
        Self::from_shared(Arc::new(system), n_shards, dispatch_threads, store_for)
    }

    /// [`ShardedService::new`] over an already-shared system (e.g. when a
    /// standalone [`JitService`] and a sharded tier front one training).
    ///
    /// # Panics
    /// Panics when `n_shards == 0`.
    pub fn from_shared(
        system: Arc<JustInTime>,
        n_shards: usize,
        dispatch_threads: usize,
        mut store_for: impl FnMut(usize) -> Arc<dyn SnapshotStore>,
    ) -> Self {
        // jit-analyze: allow(no-panic-paths) — documented `# Panics` contract: misconfiguration at construction time, not serve-path input
        assert!(n_shards >= 1, "a sharded service needs at least one shard");
        let shards = (0..n_shards)
            .map(|s| {
                let mut service =
                    JitService::with_shared(Arc::clone(&system), store_for(s));
                service.set_shard_label(s);
                service
            })
            .collect();
        ShardedService { shards, dispatch: Runtime::new(dispatch_threads) }
    }

    /// Builds the next-generation sharded service after a retrain:
    /// every shard keeps its snapshot store **and** its cell cache from
    /// `prior`, switching only the trained system. Cache slots whose
    /// model fingerprints did not survive into `system` are dropped per
    /// shard (see [`JitService::with_cell_cache`]); slots for pinned or
    /// undrifted models stay warm, so returning users on surviving
    /// models reuse cells computed before the retrain.
    ///
    /// # Panics
    /// Panics when `prior` has zero shards (impossible for a constructed
    /// [`ShardedService`]).
    pub fn next_generation(
        system: Arc<JustInTime>,
        dispatch_threads: usize,
        prior: &ShardedService,
    ) -> Self {
        // jit-analyze: allow(no-panic-paths) — documented `# Panics` contract: `prior` already upheld the ≥1-shard invariant
        assert!(prior.shard_count() >= 1, "a sharded service needs at least one shard");
        let shards = prior
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                let mut service = JitService::with_cell_cache(
                    Arc::clone(&system),
                    Arc::clone(shard.store_arc()),
                    Arc::clone(shard.cell_cache()),
                );
                service.set_shard_label(s);
                service
            })
            .collect();
        ShardedService { shards, dispatch: Runtime::new(dispatch_threads) }
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard workers, in shard order (expert access; per-shard
    /// stores are reachable as `shards()[s].store()`).
    pub fn shards(&self) -> &[JitService] {
        &self.shards
    }

    /// The shared trained system.
    pub fn system(&self) -> &JustInTime {
        // jit-analyze: allow(no-panic-paths) — construction asserts ≥1 shard, so index 0 always exists
        self.shards[0].system()
    }

    /// The shard `user_id` is (always) routed to.
    pub fn shard_of(&self, user_id: &str) -> usize {
        shard_index(user_id, self.shards.len())
    }

    /// Serves one request across the shards — same contract as
    /// [`JitService::serve`], same output bit-for-bit, any shard count.
    ///
    /// # Errors
    /// The typed [`ServeError`]; with several failing shards, the error
    /// of the user earliest in request order wins (matching what an
    /// unsharded service would report).
    #[allow(clippy::expect_used)] // see jit-analyze annotation at the call site
    pub fn serve(
        &self,
        request: ServeRequest,
    ) -> Result<ServeResponse<'_>, ServeError> {
        check_user_ids(&request)?;
        // Ids in request order (already known unique), for attributing a
        // failing shard's error back to its original request position.
        let all_ids: Vec<String> =
            request.user_ids().into_iter().map(str::to_string).collect();
        // Split the request into per-shard sub-requests, remembering each
        // member's original position for reassembly.
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let sub_requests: Vec<Option<ServeRequest>> = match request {
            ServeRequest::NewUser(member) => {
                let shard = self.shard_of(&member.user_id);
                positions[shard].push(0);
                let mut subs: Vec<Option<ServeRequest>> =
                    (0..self.shards.len()).map(|_| None).collect();
                subs[shard] = Some(ServeRequest::NewUser(member));
                subs
            }
            ServeRequest::Batch(members) => self
                .split(members, &mut positions, |m| &m.user_id)
                .into_iter()
                .map(|ms| (!ms.is_empty()).then_some(ServeRequest::Batch(ms)))
                .collect(),
            ServeRequest::Returning(members) => self
                .split(members, &mut positions, |m| &m.user_id)
                .into_iter()
                .map(|ms| (!ms.is_empty()).then_some(ServeRequest::Returning(ms)))
                .collect(),
            ServeRequest::Refresh(ids) => self
                .split(ids, &mut positions, |id| id)
                .into_iter()
                .map(|ids| (!ids.is_empty()).then_some(ServeRequest::Refresh(ids)))
                .collect(),
        };

        // Each sub-request is consumed exactly once by its worker; the
        // Mutex<Option<..>> lets workers *move* it out (snapshots in a
        // Returning cohort can be large — no second deep copy here).
        let active: Vec<(usize, parking_lot::Mutex<Option<ServeRequest>>)> =
            sub_requests
                .into_iter()
                .enumerate()
                .filter_map(|(s, r)| r.map(|r| (s, parking_lot::Mutex::new(Some(r)))))
                .collect();
        let results: Vec<Result<ServeResponse<'_>, ServeError>> =
            self.dispatch.parallel_map(active.len(), |i| {
                let (shard, sub) = &active[i];
                // jit-analyze: allow(no-panic-paths) — parallel_map calls each index exactly once, so the slot is provably Some
                let sub = sub.lock().take().expect("each sub-request runs once");
                self.shards[*shard].serve(sub)
            });

        // Deterministic error choice: the failing user earliest in the
        // original request (shard-count independent for per-user errors).
        let mut first_error: Option<(usize, ServeError)> = None;
        let mut responses: Vec<(usize, ServeResponse<'_>)> = Vec::new();
        for ((shard, _), result) in active.iter().zip(results) {
            match result {
                Ok(response) => responses.push((*shard, response)),
                Err(error) => {
                    let position = error_position(&error, &all_ids, &positions[*shard]);
                    if first_error.as_ref().is_none_or(|(p, _)| position < *p) {
                        first_error = Some((position, error));
                    }
                }
            }
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }

        // Reassemble sessions in request order and merge shard reports.
        let total: usize = positions.iter().map(Vec::len).sum();
        let mut slots: Vec<Option<ServedUser<'_>>> = (0..total).map(|_| None).collect();
        let mut report = ServeReport::default();
        for (shard, response) in responses {
            report.absorb(&response.report);
            for (user, position) in response.users.into_iter().zip(&positions[shard]) {
                slots[*position] = Some(user);
            }
        }
        let users = slots
            .into_iter()
            // jit-analyze: allow(no-panic-paths) — in-process shards are trusted: split() covers every position exactly once (unlike the supervisor, whose workers are separate processes and get a typed error instead)
            .map(|u| u.expect("every request position served exactly once"))
            .collect();
        Ok(ServeResponse { users, report })
    }

    /// Partitions `members` into per-shard vectors, recording original
    /// positions in `positions`.
    fn split<M>(
        &self,
        members: Vec<M>,
        positions: &mut [Vec<usize>],
        id_of: impl Fn(&M) -> &str,
    ) -> Vec<Vec<M>> {
        let mut out: Vec<Vec<M>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (position, member) in members.into_iter().enumerate() {
            let shard = self.shard_of(id_of(&member));
            positions[shard].push(position);
            out[shard].push(member);
        }
        out
    }
}

/// Original-request position a shard error should be attributed to: the
/// failing user's position when the error names one, else the shard's
/// first member. Shared with the OS-process backend (`crate::supervisor`)
/// so both tiers pick the same winning error.
pub(crate) fn error_position(
    error: &ServeError,
    all_ids: &[String],
    shard_positions: &[usize],
) -> usize {
    let named_user = match error {
        ServeError::Session { user_id, .. } => Some(user_id.as_str()),
        ServeError::UnknownUser(id) => Some(id.as_str()),
        ServeError::Store { user_id: Some(id), .. } => Some(id.as_str()),
        ServeError::Shard { user_id, .. } => Some(user_id.as_str()),
        _ => None,
    };
    named_user
        // Ids are unique per request, so the id's index in the original
        // id list *is* the request position.
        .and_then(|id| all_ids.iter().position(|u| u == id))
        .or_else(|| shard_positions.first().copied())
        .unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_hash_is_stable_and_consistent() {
        // Stability: same key, same bucket, every call.
        for key in [0u64, 1, 42, u64::MAX] {
            for buckets in [1usize, 2, 4, 7] {
                let b = jump_consistent_hash(key, buckets);
                assert!(b < buckets);
                assert_eq!(b, jump_consistent_hash(key, buckets));
            }
        }
        // Single bucket degenerates to 0.
        assert_eq!(jump_consistent_hash(123, 1), 0);
        // Consistency: growing the bucket count must never move a key
        // between two *old* buckets — it either stays or moves to the
        // new bucket.
        for key in 0u64..500 {
            for buckets in 1usize..8 {
                let old = jump_consistent_hash(key, buckets);
                let new = jump_consistent_hash(key, buckets + 1);
                assert!(
                    new == old || new == buckets,
                    "key {key} jumped {old} -> {new} when adding bucket {buckets}"
                );
            }
        }
    }

    #[test]
    fn user_keys_spread_across_shards() {
        let mut counts = [0usize; 4];
        for i in 0..400 {
            let key = user_key(&format!("user-{i}"));
            counts[jump_consistent_hash(key, 4)] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                (50..=150).contains(count),
                "shard {shard} got {count} of 400 users"
            );
        }
    }
}
