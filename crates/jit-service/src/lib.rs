//! # jit-service
//!
//! The **one public serving front end** of the JustInTime reproduction:
//! a typed request/response API over the `jit-core` serving engine, with
//! pluggable snapshot stores and an in-process sharded dispatcher.
//!
//! ## Why this crate exists
//!
//! After the batch- and incremental-serving PRs, `jit-core` exposed
//! three divergent ad-hoc entry points — [`JustInTime::session`],
//! [`JustInTime::serve_batch`] and [`JustInTime::reserve_batch`] — with
//! per-method error types, no user identity, no persistence and no
//! multi-shard story. This crate redesigns that surface into a single
//! contract:
//!
//! * [`ServeRequest`] — the four workloads a serving tier sees:
//!   [`ServeRequest::NewUser`], [`ServeRequest::Batch`],
//!   [`ServeRequest::Returning`] (snapshot provided inline) and
//!   [`ServeRequest::Refresh`] (snapshot loaded *by user id* from the
//!   service's store);
//! * [`ServeResponse`] — the served sessions **in request order** plus a
//!   [`ServeReport`] aggregating replay/recompute provenance per shard;
//! * [`ServeError`] — one structured error enum for every entry point
//!   (empty batch, duplicate/unknown user ids, per-user session errors
//!   carrying the user id, store failures including snapshot/schema
//!   mismatches). No panics, no stringly-typed errors.
//!
//! ## Request/response contract
//!
//! [`JitService::serve`] is all-or-nothing: either every user in the
//! request is served and the response holds one [`ServedUser`] per
//! request entry in request order, or the first failure (lowest request
//! index) is returned and nothing is stored. Every successfully served
//! session is snapshotted into the service's [`SnapshotStore`] under its
//! user id before the response is returned, so the next
//! [`ServeRequest::Refresh`] for that id replays whatever drift leaves
//! untouched. Serving through the service is **bit-identical** to the
//! legacy `jit-core` entry points (locked down by `tests/determinism.rs`
//! at the workspace root).
//!
//! ## Snapshot stores
//!
//! [`SnapshotStore`] is the persistence seam: `save`/`load`/`remove`/
//! `user_ids` keyed by user id, `&self` methods (implementations are
//! internally synchronized) so per-shard stores can be driven from pool
//! workers. Two backends ship:
//!
//! * [`MemorySnapshotStore`] — a `RwLock<HashMap>`; snapshots live as
//!   long as the process. The default.
//! * [`DbSnapshotStore`] — serializes every snapshot **through the
//!   `jit-db` SQL engine** (INSERT/SELECT text, no side channel):
//!   floats travel as lossless literals (`Value::sql_literal`),
//!   fingerprints as [`jit_math::digest::Digest`] hex, constraint sets
//!   and temporal update functions through an exact bit-preserving text
//!   codec ([`codec`]). Because the backing [`jit_db::Database`] is the
//!   durable medium, re-serves survive "process restarts": drop the
//!   service and the trained system, re-open a store over the same
//!   database, and [`ServeRequest::Refresh`] reproduces the original
//!   re-serve bit-for-bit. Each snapshot records the schema's content
//!   digest; loading under a different schema fails with
//!   [`StoreError::SchemaMismatch`] instead of mis-replaying.
//!
//! ## Sharding semantics
//!
//! [`ShardedService`] routes cohorts across `N` in-process shard
//! workers on the deterministic `jit-runtime` pool. Placement uses
//! **consistent jump hashing** of the user id ([`shard_of`]): the same
//! id always lands on the same shard (per-shard stores stay coherent),
//! and growing `N` relocates only ~`1/N` of ids. Output is
//! **bit-identical to a single-shard [`JitService`] for any shard
//! count** — per-user serving is deterministic and shard-independent,
//! and responses are reassembled in request order. The API is shaped so
//! an OS-process backend can slot in behind the same [`ServeRequest`]
//! later: shards communicate only via owned requests and snapshots.
//!
//! [`shard_of`]: ShardedService::shard_of
//!
//! ## Migrating from the old entry points
//!
//! | old (`jit-core`, still available as shims) | new |
//! |---|---|
//! | `system.session(profile, prefs, update)` | `service.serve(ServeRequest::new_user(id, request))` |
//! | `system.serve_batch(&requests)` | `service.serve(ServeRequest::batch(members))` |
//! | `system.reserve_batch(&returning)` | `service.serve(ServeRequest::returning(members))` |
//! | hand-held `SessionSnapshot` values | `ServeRequest::refresh(ids)` against the store |
//!
//! The old methods remain thin shims over the same engine and stay
//! bit-identical; new capabilities (typed errors, persistence, sharding,
//! serve reports) only exist here.
//!
//! ## Cross-user search sharing and refresh-ahead
//!
//! Every [`JitService`] owns a [`jit_core::SharedCellCache`]: confidence
//! values memoized per **(model fingerprint, threshold-cell vector)**
//! during `Batch`/`Returning`/`Refresh` serving and reused across all
//! users of that service. Equal fingerprints prove bit-identical models
//! and every reuse re-verifies the exact cell vector, so serving output
//! is bit-identical with the cache shared, private, or absent (see
//! `jit_core::candidates` for the proof sketch). Lifecycle contract:
//! constructors start the cache empty; after a retrain,
//! [`JitService::with_cell_cache`] / [`ShardedService::next_generation`]
//! carry the prior generation's cache forward and drop **exactly** the
//! slots whose model fingerprints did not survive. In the OS-process
//! tier each `jit-shardd` worker's cache lives in that worker process
//! and resets when the supervisor respawns it — a warmth loss, never a
//! correctness event.
//!
//! [`refresh`] adds the proactive half: after a retrain, one
//! refresh-ahead pass scans each shard's store, plans every snapshot
//! from fingerprints alone, and re-serves the stale users in
//! rate-limited batches through the ordinary `Refresh` path — so
//! returning users find their snapshots already re-served and replay
//! every time point instead of paying cold recomputes on the request
//! path.
//!
//! ## The networked tier
//!
//! Three modules extend the same contract across process and machine
//! boundaries without changing a single served byte:
//!
//! * [`wire`] — the std-only length-prefixed binary protocol: exact
//!   f64-bits encoding, typed [`wire::WireError`]s for malformed /
//!   truncated / oversized frames (never panics), and the
//!   shard-count-invariant [`wire::WireResponse`] whose canonical bytes
//!   ([`wire::response_bytes`]) are the determinism comparison basis.
//! * [`net`] — [`NetServer`] (TCP ingress + bounded admission queue
//!   with typed [`ServeError::Overloaded`] load shedding) and
//!   [`NetClient`], over any [`ServeBackend`].
//! * [`supervisor`] — [`ProcessShardBackend`]: one `jit-shardd` worker
//!   *process* per shard, trained deterministically from a wire-carried
//!   [`TrainSpec`], supervised with detect-on-use failure handling and
//!   lazy respawn; snapshot stores stay in the supervisor so a killed
//!   shard loses nothing.
//! * [`loadgen`] — closed-/open-loop load generation (the `jit-loadgen`
//!   bin and the perf gate's network workload).
//!
//! The stack composes: `NetClient → NetServer → ProcessShardBackend →
//! N × jit-shardd`, and every layer is bit-identical to calling
//! [`JitService::serve`] directly (`tests/determinism.rs`) with every
//! failure mode typed (`tests/net_failures.rs`).
//!
//! ## Population workloads and recourse invalidation
//!
//! [`invalidation`] drives any registered workload
//! ([`jit_data::scenario`]) through this serving stack end to end:
//! first-visit cohort batches, one retrain per drift step
//! ([`jit_core::JustInTime::retrain`] over a sliding history window),
//! then refreshes whose `(user, time point)` outcomes are classified as
//! **replayed / surviving / overturned** into per-cohort
//! [`InvalidationReport`]s — the "Time Can Invalidate Algorithmic
//! Recourse" measurement, at population scale, with a content digest
//! that locks whole runs down across thread, shard and process counts.
//!
//! [`JustInTime::session`]: jit_core::JustInTime::session
//! [`JustInTime::serve_batch`]: jit_core::JustInTime::serve_batch
//! [`JustInTime::reserve_batch`]: jit_core::JustInTime::reserve_batch

#![forbid(unsafe_code)]

pub mod api;
pub mod codec;
pub mod db_store;
pub mod invalidation;
pub mod loadgen;
pub mod net;
pub mod refresh;
pub mod service;
pub mod sharded;
pub mod store;
pub mod supervisor;
pub mod wire;

pub use api::{
    CohortMember, ReturningMember, ServeError, ServeReport, ServeRequest,
    ServeResponse, ServedUser, ShardReport,
};
pub use db_store::DbSnapshotStore;
pub use invalidation::{
    run_invalidation, CohortInvalidation, InvalidationError, InvalidationOptions,
    InvalidationReport, InvalidationRun,
};
pub use loadgen::{LoadMode, LoadPlan, LoadReport};
pub use net::{
    ConnectRetry, NetClient, NetServer, NetServerConfig, ServeBackend, ServerStats,
};
pub use refresh::{RefreshAheadOptions, RefreshAheadReport};
pub use service::JitService;
pub use sharded::{shard_index, ShardedService};
pub use store::{
    retry_transient, MemorySnapshotStore, NullSnapshotStore, SnapshotStore, StoreError,
};
pub use supervisor::{
    locate_shardd, DataSpec, ProcessShardBackend, ProcessShardConfig, ShardHealth,
    TrainSpec,
};
pub use wire::{Message, WireError, WireReport, WireResponse, MAX_FRAME_LEN};
