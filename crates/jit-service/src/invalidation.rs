//! The recourse-invalidation harness: how many served insights does
//! model drift overturn?
//!
//! "Time Can Invalidate Algorithmic Recourse" (PAPERS.md) asks the
//! question this module measures end to end: serve a cohort its
//! temporal insights at time *t*, let the models advance along the
//! scenario's drift schedule (retraining on a sliding history window),
//! re-serve the same cohort, and classify every `(user, time point)`
//! pair:
//!
//! * **replayed** — the time point's model fingerprint did not change,
//!   so incremental re-serving replayed the stored insight untouched
//!   (it provably still holds, bit for bit);
//! * **surviving** — the fingerprint changed and the time point was
//!   recomputed, but the recomputed candidates are identical to the
//!   served ones — drift happened, the advice survived it;
//! * **overturned** — the recomputation produced different candidates:
//!   the advice the user walked away with is no longer what the system
//!   would say today.
//!
//! The harness drives the real serving stack — [`ShardedService`] over
//! per-shard snapshot stores, [`ServeRequest::Batch`] for the first
//! visit, [`ServeRequest::Refresh`] after each retrain — so its numbers
//! are the production path's numbers, and its [`InvalidationRun`]
//! carries a content digest making whole runs comparable across thread
//! counts, shard counts and processes.

// Decode/serve path: panics are denied outright here (tests and the
// few fn-level reasoned allows excepted) — hostile bytes and worker
// failures must surface as typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::api::{CohortMember, ServeError, ServeRequest};
use crate::sharded::ShardedService;
use crate::store::{MemorySnapshotStore, SnapshotStore};
use jit_core::{
    AdminConfig, JustInTime, TimePointServe, TrainError, UserRequest, UserSession,
};
use jit_data::scenario::Workload;
use jit_math::digest::{Digest, DigestWriter};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Everything the harness can fail with.
#[derive(Debug)]
pub enum InvalidationError {
    /// A (re)train failed.
    Train(TrainError),
    /// A serve or refresh failed.
    Serve(ServeError),
}

impl fmt::Display for InvalidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidationError::Train(e) => write!(f, "training failed: {e}"),
            InvalidationError::Serve(e) => write!(f, "serving failed: {e}"),
        }
    }
}

impl std::error::Error for InvalidationError {}

impl From<TrainError> for InvalidationError {
    fn from(e: TrainError) -> Self {
        InvalidationError::Train(e)
    }
}

impl From<ServeError> for InvalidationError {
    fn from(e: ServeError) -> Self {
        InvalidationError::Serve(e)
    }
}

/// Harness knobs. The workload itself (cohort sizes, drift schedule,
/// horizon) comes from the [`Workload`]; these options say how to *run*
/// it.
#[derive(Clone, Debug)]
pub struct InvalidationOptions {
    /// Training/search configuration. `horizon` and `start_year` are
    /// overwritten from the workload; everything else (forest size,
    /// beam widths, thread counts) is the caller's scale choice.
    pub config: AdminConfig,
    /// Shard count of the serving tier.
    pub shards: usize,
    /// Dispatcher threads (`0` = one per core).
    pub dispatch_threads: usize,
    /// Users per [`ServeRequest`] — bounds peak memory at population
    /// scale without changing any output (serving is bit-identical for
    /// any batching).
    pub batch: usize,
    /// Run a step-0 control refresh before any drift: with unchanged
    /// models every time point must replay, which asserts end-to-end
    /// determinism of generation + serving + stores at cohort scale.
    pub control_refresh: bool,
}

impl Default for InvalidationOptions {
    fn default() -> Self {
        InvalidationOptions {
            config: AdminConfig::default(),
            shards: 4,
            dispatch_threads: 0,
            batch: 512,
            control_refresh: true,
        }
    }
}

/// Per-cohort classification counts for one drift step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CohortInvalidation {
    /// Cohort name (from the scenario's cohort mix).
    pub cohort: String,
    /// Members refreshed.
    pub users: usize,
    /// `(user, t)` pairs replayed from snapshots (fingerprint match).
    pub replayed: usize,
    /// Pairs recomputed with different candidates — invalidated advice.
    pub overturned: usize,
    /// Pairs recomputed to bit-identical candidates.
    pub surviving: usize,
}

impl CohortInvalidation {
    /// Total `(user, time point)` pairs classified.
    pub fn time_points(&self) -> usize {
        self.replayed + self.overturned + self.surviving
    }
}

/// One drift step's invalidation report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidationReport {
    /// Drift step (1-based; step 0 is the initial serve).
    pub step: usize,
    /// How many of the `T + 1` time points' model fingerprints changed
    /// in this retrain ([`JustInTime::drifted_time_points`]).
    pub drifted_models: usize,
    /// Per-cohort classification, in cohort order.
    pub cohorts: Vec<CohortInvalidation>,
}

impl InvalidationReport {
    /// Sum of replayed pairs across cohorts.
    pub fn replayed(&self) -> usize {
        self.cohorts.iter().map(|c| c.replayed).sum()
    }

    /// Sum of overturned pairs across cohorts.
    pub fn overturned(&self) -> usize {
        self.cohorts.iter().map(|c| c.overturned).sum()
    }

    /// Sum of surviving pairs across cohorts.
    pub fn surviving(&self) -> usize {
        self.cohorts.iter().map(|c| c.surviving).sum()
    }

    /// Total `(user, time point)` pairs classified.
    pub fn time_points(&self) -> usize {
        self.replayed() + self.overturned() + self.surviving()
    }
}

impl fmt::Display for InvalidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "drift step {}: {} models drifted; {} replayed / {} overturned / \
             {} surviving of {} time points",
            self.step,
            self.drifted_models,
            self.replayed(),
            self.overturned(),
            self.surviving(),
            self.time_points(),
        )?;
        for c in &self.cohorts {
            writeln!(
                f,
                "  cohort {:<12} ({} users): {} replayed / {} overturned / \
                 {} surviving",
                c.cohort, c.users, c.replayed, c.overturned, c.surviving,
            )?;
        }
        Ok(())
    }
}

/// The whole run: one report per drift step plus a content digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidationRun {
    /// Workload name.
    pub scenario: String,
    /// Users served.
    pub users: usize,
    /// Serving horizon `T`.
    pub horizon: usize,
    /// Replayed count of the step-0 control refresh (must equal
    /// `users * (T + 1)`), when the control ran.
    pub control_replayed: Option<usize>,
    /// Per-step reports, steps `1..`.
    pub reports: Vec<InvalidationReport>,
    /// Digest over every count and every user's final per-time-point
    /// candidate fingerprints: two runs agree on it exactly when they
    /// served and classified identically, bit for bit.
    pub digest: Digest,
}

impl InvalidationRun {
    /// Renders the run as the stable JSON document `jit-scenariorun`
    /// emits and `--check` compares against.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str(&format!("  \"scenario\": {:?},\n", self.scenario));
        out.push_str(&format!("  \"users\": {},\n", self.users));
        out.push_str(&format!("  \"horizon\": {},\n", self.horizon));
        match self.control_replayed {
            Some(n) => {
                out.push_str(&format!("  \"control_replayed\": {n},\n"));
            }
            None => out.push_str("  \"control_replayed\": null,\n"),
        }
        out.push_str("  \"steps\": [\n");
        for (i, r) in self.reports.iter().enumerate() {
            // The step-level counts stay ahead of the nested cohort
            // objects: `--check` scans brace-delimited fragments for the
            // `"step"` key, and reordering would feed it cohort counts.
            out.push_str(&format!(
                "    {{ \"step\": {}, \"drifted_models\": {}, \"replayed\": {}, \
                 \"overturned\": {}, \"surviving\": {},\n",
                r.step,
                r.drifted_models,
                r.replayed(),
                r.overturned(),
                r.surviving(),
            ));
            out.push_str("      \"cohorts\": [\n");
            for (j, c) in r.cohorts.iter().enumerate() {
                out.push_str(&format!(
                    "        {{ \"cohort\": {:?}, \"users\": {}, \"replayed\": {}, \
                     \"overturned\": {}, \"surviving\": {} }}{}\n",
                    c.cohort,
                    c.users,
                    c.replayed,
                    c.overturned,
                    c.surviving,
                    if j + 1 < r.cohorts.len() { "," } else { "" },
                ));
            }
            out.push_str(&format!(
                "      ] }}{}\n",
                if i + 1 < self.reports.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"digest\": {:?}\n", self.digest.to_hex()));
        out.push('}');
        out
    }
}

impl fmt::Display for InvalidationRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invalidation run: scenario {:?}, {} users, horizon {}",
            self.scenario, self.users, self.horizon,
        )?;
        if let Some(n) = self.control_replayed {
            writeln!(f, "control refresh (no drift): {n} time points replayed")?;
        }
        for r in &self.reports {
            write!(f, "{r}")?;
        }
        write!(f, "run digest: {}", self.digest.to_hex())
    }
}

/// Per-time-point candidate fingerprints of one served session: the
/// "insight" identity the harness diffs across retrains. Uses the same
/// domain-separated digesting as the engine's model fingerprints.
/// Public so external harnesses (the perf snapshot, custom drivers) can
/// classify refreshes exactly the way [`run_invalidation`] does.
pub fn insight_digests(session: &UserSession<'_>, horizon: usize) -> Vec<Digest> {
    let mut writers: Vec<DigestWriter> =
        (0..=horizon).map(|_| DigestWriter::new("jit-service/insight")).collect();
    for c in session.candidates() {
        let w = &mut writers[c.time_index];
        w.write_f64s(&c.profile);
        w.write_f64(c.diff);
        w.write_usize(c.gap);
        w.write_f64(c.confidence);
    }
    writers.into_iter().map(DigestWriter::finish).collect()
}

/// Runs the full harness over `workload`; see the module docs for the
/// protocol and the classification semantics.
///
/// # Errors
/// [`InvalidationError`] on any train or serve failure; the harness
/// never partially succeeds silently.
#[allow(clippy::expect_used)] // refreshed sessions always carry a reserve report
pub fn run_invalidation(
    workload: &Workload,
    opts: &InvalidationOptions,
) -> Result<InvalidationRun, InvalidationError> {
    let schema = workload.schema();
    let mut config = opts.config.clone();
    config.horizon = workload.horizon();
    config.start_year = workload.start_year();
    let gen_threads = config.threads;
    let horizon = config.horizon;

    // Train the step-0 system and generate the cohort.
    let mut system = Arc::new(JustInTime::train(
        config,
        &schema,
        &workload.history(0, gen_threads),
    )?);
    let cohort = workload.cohort(gen_threads);
    let cohort_names: Vec<String> = {
        let mut names = Vec::new();
        for user in &cohort {
            if names.last().map(String::as_str) != Some(user.cohort.as_str()) {
                names.push(user.cohort.clone());
            }
        }
        names
    };
    let cohort_index: HashMap<&str, usize> =
        cohort_names.iter().enumerate().map(|(i, name)| (name.as_str(), i)).collect();

    // One store per shard, shared across every service generation so
    // refreshes after a retrain see the previously served snapshots.
    let stores: Vec<Arc<dyn SnapshotStore>> = (0..opts.shards.max(1))
        .map(|_| Arc::new(MemorySnapshotStore::new()) as Arc<dyn SnapshotStore>)
        .collect();
    let mut service = ShardedService::from_shared(
        Arc::clone(&system),
        stores.len(),
        opts.dispatch_threads,
        |s| Arc::clone(&stores[s]),
    );

    // First visit: serve the whole cohort in batches, recording every
    // session's per-time-point insight fingerprints.
    let mut insights: HashMap<String, Vec<Digest>> =
        HashMap::with_capacity(cohort.len());
    let batch = opts.batch.max(1);
    for chunk in cohort.chunks(batch) {
        let members: Vec<CohortMember> = chunk
            .iter()
            .map(|u| CohortMember::new(&u.user_id, UserRequest::new(u.profile.clone())))
            .collect();
        let response = service.serve(ServeRequest::batch(members))?;
        for served in &response.users {
            insights.insert(
                served.user_id.clone(),
                insight_digests(&served.session, horizon),
            );
        }
    }

    // Optional control: refreshing with unchanged models must replay
    // every single time point.
    let control_replayed = if opts.control_refresh {
        let mut replayed = 0;
        for chunk in cohort.chunks(batch) {
            let ids = chunk.iter().map(|u| u.user_id.clone());
            let response = service.serve(ServeRequest::refresh(ids))?;
            replayed += response.report.replayed_time_points;
        }
        Some(replayed)
    } else {
        None
    };

    // Advance the drift schedule: retrain (pinning any time points the
    // scenario shields from drift, so reports exercise the replayed /
    // surviving middle ground), rebuild the serving tier over the same
    // stores — carrying each shard's cell cache so surviving models
    // keep their warm cells — then refresh and classify.
    let pinned_count = workload.pinned_time_points().min(horizon + 1);
    let pinned: Vec<bool> = (0..=horizon).map(|t| t < pinned_count).collect();
    let mut reports = Vec::with_capacity(workload.drift_steps());
    for step in 1..=workload.drift_steps() {
        let next = Arc::new(
            system.retrain_pinned(&workload.history(step, gen_threads), &pinned)?,
        );
        let drifted_models =
            next.drifted_time_points(&system).iter().filter(|d| **d).count();
        service = ShardedService::next_generation(
            Arc::clone(&next),
            opts.dispatch_threads,
            &service,
        );
        let mut cohorts: Vec<CohortInvalidation> = cohort_names
            .iter()
            .map(|name| CohortInvalidation {
                cohort: name.clone(),
                users: 0,
                replayed: 0,
                overturned: 0,
                surviving: 0,
            })
            .collect();
        for chunk in cohort.chunks(batch) {
            let ids = chunk.iter().map(|u| u.user_id.clone());
            let response = service.serve(ServeRequest::refresh(ids))?;
            for (member, served) in chunk.iter().zip(&response.users) {
                let counts = &mut cohorts[cohort_index[member.cohort.as_str()]];
                counts.users += 1;
                let fresh = insight_digests(&served.session, horizon);
                let prior = &insights[&served.user_id];
                let report = served
                    .session
                    .reserve_report()
                    // jit-analyze: allow(no-panic-paths) — serve(Refresh) recomputes every session, and recomputed sessions always carry a reserve report
                    .expect("refreshed sessions always carry a reserve report");
                for (t, tp) in report.iter().enumerate() {
                    match tp {
                        TimePointServe::Replayed => counts.replayed += 1,
                        TimePointServe::Recomputed => {
                            if fresh[t] == prior[t] {
                                counts.surviving += 1;
                            } else {
                                counts.overturned += 1;
                            }
                        }
                    }
                }
                insights.insert(served.user_id.clone(), fresh);
            }
        }
        reports.push(InvalidationReport { step, drifted_models, cohorts });
        system = next;
    }

    // Content digest: workload identity, every count, and every user's
    // final insight fingerprints in cohort order.
    let digest = {
        let mut w = DigestWriter::new("jit-service/invalidation-run");
        w.write_digest(workload.content_digest());
        w.write_usize(cohort.len());
        w.write_usize(horizon);
        if let Some(n) = control_replayed {
            w.write_usize(n);
        }
        for r in &reports {
            w.write_usize(r.step);
            w.write_usize(r.drifted_models);
            for c in &r.cohorts {
                w.write_str(&c.cohort);
                w.write_usize(c.users);
                w.write_usize(c.replayed);
                w.write_usize(c.overturned);
                w.write_usize(c.surviving);
            }
        }
        for user in &cohort {
            w.write_str(&user.user_id);
            for d in &insights[&user.user_id] {
                w.write_digest(*d);
            }
        }
        w.finish()
    };

    Ok(InvalidationRun {
        scenario: workload.name().to_string(),
        users: cohort.len(),
        horizon,
        control_replayed,
        reports,
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_core::CandidateParams;
    use jit_data::scenario::{LendingClubScenario, ScenarioSpec};
    use jit_data::LendingClubParams;
    use jit_ml::RandomForestParams;
    use jit_temporal::future::FutureModelsParams;

    fn tiny_config() -> AdminConfig {
        AdminConfig {
            future: FutureModelsParams {
                n_landmarks: 30,
                pool_slices: 3,
                forest: RandomForestParams { n_trees: 6, ..Default::default() },
                ..Default::default()
            },
            candidates: CandidateParams {
                beam_width: 4,
                max_iters: 3,
                top_k: 4,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn tiny_workload() -> Workload {
        Workload::Synthetic(
            ScenarioSpec::credit(7)
                .with_rows_per_slice(240)
                .with_cohort_size(12)
                .with_drift_steps(1),
        )
    }

    #[test]
    fn control_refresh_replays_everything_and_counts_balance() {
        let workload = tiny_workload();
        let opts = InvalidationOptions { config: tiny_config(), ..Default::default() };
        let run = run_invalidation(&workload, &opts).unwrap();
        let pairs = run.users * (run.horizon + 1);
        assert_eq!(run.control_replayed, Some(pairs));
        assert_eq!(run.reports.len(), 1);
        let step = &run.reports[0];
        assert_eq!(step.time_points(), pairs);
        // The sliding window retrains on genuinely different data, so
        // drift must be visible both in the models and the insights.
        assert!(step.drifted_models > 0);
        assert!(step.overturned() + step.surviving() > 0);
    }

    #[test]
    fn run_is_identical_across_shard_and_thread_counts() {
        let workload = tiny_workload();
        let base = InvalidationOptions { config: tiny_config(), ..Default::default() };
        let mut serial = base.clone();
        serial.shards = 1;
        serial.dispatch_threads = 1;
        serial.config.threads = 1;
        serial.config.batch_threads = 1;
        serial.batch = 5;
        let mut wide = base.clone();
        wide.shards = 3;
        wide.dispatch_threads = 2;
        wide.config.threads = 2;
        wide.config.batch_threads = 2;
        let a = run_invalidation(&workload, &serial).unwrap();
        let b = run_invalidation(&workload, &wide).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lendingclub_workload_runs_end_to_end() {
        let workload = Workload::LendingClub(LendingClubScenario {
            params: LendingClubParams { records_per_year: 160, ..Default::default() },
            horizon: 2,
            drift_steps: 1,
            cohort_size: 8,
        });
        let opts = InvalidationOptions {
            config: tiny_config(),
            shards: 2,
            ..Default::default()
        };
        let run = run_invalidation(&workload, &opts).unwrap();
        assert_eq!(run.users, 8);
        assert_eq!(run.control_replayed, Some(8 * 3));
        assert_eq!(run.reports[0].time_points(), 8 * 3);
    }
}
