//! The length-prefixed binary wire protocol of the networked serving
//! tier.
//!
//! Everything the tier sends — requests, responses, errors, training
//! specs — travels as **frames** over any `Read`/`Write` byte stream
//! (TCP sockets for the front end, stdin/stdout pipes for shard worker
//! processes). The protocol is std-only and self-contained: no serde, no
//! crates.io.
//!
//! ## Frame format
//!
//! | bytes | field | notes |
//! |---|---|---|
//! | 4 | `len` | `u32` little-endian, length of everything after it |
//! | 1 | `tag` | message discriminant (see [`Message`]) |
//! | `len - 1` | payload | message-specific body |
//!
//! A reader enforces a frame cap *before* allocating: a `len` above the
//! cap is [`WireError::Oversized`] and the frame body is never read. EOF
//! cleanly between frames is [`WireError::Closed`]; EOF inside a frame is
//! an I/O error. Any byte-level mismatch while decoding a payload is
//! [`WireError::Malformed`] with the offset and what was expected —
//! malformed input produces typed errors, never panics.
//!
//! ## Value encoding
//!
//! All integers are little-endian; counts and lengths are `u32`. Floats
//! travel as their raw IEEE-754 bits (`f64::to_bits`, little-endian) —
//! the binary twin of the snapshot codec's 16-hex-digit discipline — so
//! every NaN payload, `-0.0` and subnormal round-trips **bit-exactly**.
//! Strings are `u32` length + UTF-8 bytes. Constraint ASTs and temporal
//! update functions reuse the exact text codec of [`crate::codec`] as
//! length-prefixed strings, so the wire inherits its bit-exactness
//! guarantees (and its decoder's typed failure modes).
//!
//! ## Determinism contract
//!
//! Encoding is a pure function of the value: the same `ServeRequest` or
//! [`WireResponse`] always encodes to the same bytes, on every process,
//! platform and thread count. [`WireResponse`] deliberately carries the
//! *shard-count-independent* part of a [`crate::ServeReport`] (totals,
//! not the per-shard breakdown), so a response served by 1, 2 or 4 shard
//! processes encodes to **identical bytes** — the property
//! `tests/determinism.rs` locks down across the whole networked tier.
//!
//! ## Lossy error mapping
//!
//! [`crate::ServeError`] round-trips structurally except for nested
//! database errors, which are carried as their rendered message and
//! decode as `DbError::Eval(message)` — the variant identity of a remote
//! engine internal is not load-bearing, the message is. Encoding a
//! decoded error re-produces identical bytes.

// Decode/serve path: panics are denied outright here (tests and the
// few fn-level reasoned allows excepted) — hostile bytes and worker
// failures must surface as typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::api::{
    CohortMember, ReturningMember, ServeError, ServeRequest, ServeResponse,
};
use crate::codec;
use crate::store::StoreError;
use crate::supervisor::{DataSpec, TrainSpec};
use jit_constraints::{ConstraintSet, TimeScope};
use jit_core::{
    AdminConfig, BatchParallelism, Candidate, CandidateParams, Objective,
    ReturningUser, SessionError, SessionSnapshot, TimePointServe, UserRequest,
};
use jit_data::FeatureSchema;
use jit_math::digest::Digest;
use jit_ml::threshold::ThresholdPolicy;
use jit_ml::RandomForestParams;
use jit_temporal::future::{FutureModelsParams, FuturePredictor};
use jit_temporal::herding::HerdingParams;
use std::fmt;
use std::io::{Read, Write};

/// Default frame cap: generous for cohort responses, small enough that a
/// corrupt length prefix cannot drive a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Everything frame I/O and payload decoding can fail with.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (including EOF mid-frame).
    Io(std::io::Error),
    /// A frame declared a length above the reader's cap; the body was
    /// not read.
    Oversized {
        /// The declared frame length.
        len: usize,
        /// The reader's cap.
        max: usize,
    },
    /// A payload failed to decode.
    Malformed {
        /// Byte offset into the frame body.
        offset: usize,
        /// What the decoder expected there.
        expected: &'static str,
    },
    /// The peer closed the stream cleanly between frames.
    Closed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Malformed { offset, expected } => {
                write!(f, "malformed frame: expected {expected} at byte {offset}")
            }
            WireError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<WireError> for ServeError {
    /// Transport-level failures surface to callers as the typed
    /// [`ServeError::Transport`] variant.
    fn from(e: WireError) -> Self {
        // jit-analyze: allow(no-lossy-float-fmt) — error text for humans; no float payload crosses here
        ServeError::Transport(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

/// Writes one frame (`len` prefix + `body`).
///
/// # Errors
/// [`WireError::Oversized`] when `body` exceeds `max` (nothing is
/// written), or the underlying I/O error.
pub fn write_frame(
    w: &mut impl Write,
    body: &[u8],
    max: usize,
) -> Result<(), WireError> {
    if body.len() > max || body.len() > u32::MAX as usize {
        return Err(WireError::Oversized { len: body.len(), max });
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame body, enforcing the `max` cap before allocating.
///
/// # Errors
/// [`WireError::Closed`] on clean EOF before any length byte,
/// [`WireError::Oversized`] for a declared length above `max` (the body
/// is not consumed), or I/O errors (EOF mid-frame included).
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Err(WireError::Closed),
            0 => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                )))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max {
        return Err(WireError::Oversized { len, max });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

// ---------------------------------------------------------------------
// Primitive value codecs
// ---------------------------------------------------------------------

/// Append-only encoder for frame bodies.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Raw IEEE-754 bits, little-endian: bit-exact for every payload.
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn digest(&mut self, d: Digest) {
        self.u64(d.0[0]);
        self.u64(d.0[1]);
    }

    fn count(&mut self, n: usize) {
        debug_assert!(n <= u32::MAX as usize);
        self.u32(n as u32);
    }

    fn vec_f64(&mut self, v: &[f64]) {
        self.count(v.len());
        for x in v {
            self.f64(*x);
        }
    }
}

/// Cursor-based decoder over a frame body; every failure carries the
/// byte offset and what was expected.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over a full frame body.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn err(&self, expected: &'static str) -> WireError {
        WireError::Malformed { offset: self.pos, expected }
    }

    fn take(
        &mut self,
        n: usize,
        expected: &'static str,
    ) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.bytes.len() {
            return Err(self.err(expected));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, expected: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, expected)?[0])
    }

    fn u32(&mut self, expected: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, expected)?;
        let a: [u8; 4] = b.try_into().map_err(|_| self.err(expected))?;
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self, expected: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, expected)?;
        let a: [u8; 8] = b.try_into().map_err(|_| self.err(expected))?;
        Ok(u64::from_le_bytes(a))
    }

    fn usize(&mut self, expected: &'static str) -> Result<usize, WireError> {
        let v = self.u64(expected)?;
        usize::try_from(v).map_err(|_| self.err(expected))
    }

    fn bool(&mut self, expected: &'static str) -> Result<bool, WireError> {
        match self.u8(expected)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => {
                self.pos -= 1;
                Err(self.err(expected))
            }
        }
    }

    fn f64(&mut self, expected: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(expected)?))
    }

    fn str(&mut self, expected: &'static str) -> Result<String, WireError> {
        let len = self.u32(expected)? as usize;
        let bytes = self.take(len, expected)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed {
            offset: self.pos - len,
            expected: "utf-8 string",
        })
    }

    fn digest(&mut self, expected: &'static str) -> Result<Digest, WireError> {
        Ok(Digest([self.u64(expected)?, self.u64(expected)?]))
    }

    fn count(&mut self, expected: &'static str) -> Result<usize, WireError> {
        Ok(self.u32(expected)? as usize)
    }

    fn vec_f64(&mut self, expected: &'static str) -> Result<Vec<f64>, WireError> {
        let n = self.count(expected)?;
        // Cap preallocation by what the remaining bytes can actually
        // hold, so a lying count cannot drive a huge allocation.
        let mut out = Vec::with_capacity(n.min(self.bytes.len() / 8 + 1));
        for _ in 0..n {
            out.push(self.f64(expected)?);
        }
        Ok(out)
    }

    /// `true` when every byte was consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn finish(self, expected: &'static str) -> Result<(), WireError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }
}

// ---------------------------------------------------------------------
// Domain value codecs
// ---------------------------------------------------------------------

fn encode_user_request(w: &mut Writer, request: &UserRequest) {
    w.vec_f64(&request.profile);
    let items = request.constraints.items();
    w.count(items.len());
    for item in items {
        match item.scope {
            TimeScope::AllTimes => w.u8(0),
            TimeScope::At(t) => {
                w.u8(1);
                w.usize(t);
            }
            TimeScope::Between(lo, hi) => {
                w.u8(2);
                w.usize(lo);
                w.usize(hi);
            }
        }
        w.str(&codec::encode_constraint(&item.constraint));
    }
    w.str(&codec::encode_update_fn(request.update_fn.as_ref()));
}

fn decode_user_request(
    r: &mut Reader<'_>,
    schema: &FeatureSchema,
) -> Result<UserRequest, WireError> {
    let profile = r.vec_f64("profile")?;
    let n = r.count("constraint count")?;
    let mut constraints = ConstraintSet::new();
    for _ in 0..n {
        let scope = r.u8("constraint scope tag")?;
        let (lo, hi) = match scope {
            0 => (0, 0),
            1 => {
                let t = r.usize("scope time")?;
                (t, t)
            }
            2 => (r.usize("scope lo")?, r.usize("scope hi")?),
            _ => {
                r.pos -= 1;
                return Err(r.err("constraint scope tag"));
            }
        };
        let blob = r.str("constraint blob")?;
        let constraint = codec::decode_constraint(&blob)
            .map_err(|_| r.err("decodable constraint blob"))?;
        match scope {
            0 => constraints.add(constraint),
            1 => constraints.add_at(lo, constraint),
            _ => {
                if lo > hi {
                    return Err(r.err("ordered scope range"));
                }
                constraints.add_between(lo, hi, constraint)
            }
        };
    }
    let update_blob = r.str("update-fn blob")?;
    let update_fn = codec::decode_update_fn(&update_blob, schema)
        .map_err(|_| r.err("decodable update-fn blob"))?;
    Ok(UserRequest { profile, constraints, update_fn })
}

fn encode_snapshot(w: &mut Writer, snapshot: &SessionSnapshot) {
    encode_user_request(w, &snapshot.request);
    let inputs = snapshot.temporal_inputs();
    w.count(inputs.len());
    for row in inputs {
        w.vec_f64(row);
    }
    let candidates = snapshot.candidates();
    w.count(candidates.len());
    for c in candidates {
        w.usize(c.time_index);
        w.vec_f64(&c.profile);
        w.f64(c.diff);
        w.usize(c.gap);
        w.f64(c.confidence);
    }
    let fingerprints = snapshot.fingerprints();
    w.count(fingerprints.len());
    for fp in fingerprints {
        match fp {
            None => w.u8(0),
            Some(d) => {
                w.u8(1);
                w.digest(*d);
            }
        }
    }
}

fn decode_snapshot(
    r: &mut Reader<'_>,
    schema: &FeatureSchema,
) -> Result<SessionSnapshot, WireError> {
    let request = decode_user_request(r, schema)?;
    let n_inputs = r.count("temporal input count")?;
    let mut temporal_inputs = Vec::with_capacity(n_inputs.min(1024));
    for _ in 0..n_inputs {
        temporal_inputs.push(r.vec_f64("temporal input")?);
    }
    let n_candidates = r.count("candidate count")?;
    let mut candidates = Vec::with_capacity(n_candidates.min(1024));
    for _ in 0..n_candidates {
        candidates.push(Candidate {
            time_index: r.usize("candidate time index")?,
            profile: r.vec_f64("candidate profile")?,
            diff: r.f64("candidate diff")?,
            gap: r.usize("candidate gap")?,
            confidence: r.f64("candidate confidence")?,
        });
    }
    let n_fps = r.count("fingerprint count")?;
    let mut fingerprints = Vec::with_capacity(n_fps.min(1024));
    for _ in 0..n_fps {
        fingerprints.push(match r.u8("fingerprint tag")? {
            0 => None,
            1 => Some(r.digest("fingerprint digest")?),
            _ => {
                r.pos -= 1;
                return Err(r.err("fingerprint tag"));
            }
        });
    }
    SessionSnapshot::from_parts(request, temporal_inputs, candidates, fingerprints)
        .ok_or(WireError::Malformed {
            offset: 0,
            expected: "internally consistent snapshot shape",
        })
}

/// Encodes a [`ServeRequest`] body (without frame or message tag).
pub fn encode_request(w: &mut Writer, request: &ServeRequest) {
    match request {
        ServeRequest::NewUser(m) => {
            w.u8(0);
            w.str(&m.user_id);
            encode_user_request(w, &m.request);
        }
        ServeRequest::Batch(ms) => {
            w.u8(1);
            w.count(ms.len());
            for m in ms {
                w.str(&m.user_id);
                encode_user_request(w, &m.request);
            }
        }
        ServeRequest::Returning(ms) => {
            w.u8(2);
            w.count(ms.len());
            for m in ms {
                w.str(&m.user_id);
                encode_user_request(w, &m.returning.request);
                encode_snapshot(w, &m.returning.prior);
            }
        }
        ServeRequest::Refresh(ids) => {
            w.u8(3);
            w.count(ids.len());
            for id in ids {
                w.str(id);
            }
        }
    }
}

/// Decodes a [`ServeRequest`] body.
///
/// # Errors
/// [`WireError::Malformed`] on any byte-level mismatch; never panics.
pub fn decode_request(
    r: &mut Reader<'_>,
    schema: &FeatureSchema,
) -> Result<ServeRequest, WireError> {
    match r.u8("request tag")? {
        0 => {
            let user_id = r.str("user id")?;
            let request = decode_user_request(r, schema)?;
            Ok(ServeRequest::NewUser(CohortMember { user_id, request }))
        }
        1 => {
            let n = r.count("batch count")?;
            let mut ms = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let user_id = r.str("user id")?;
                let request = decode_user_request(r, schema)?;
                ms.push(CohortMember { user_id, request });
            }
            Ok(ServeRequest::Batch(ms))
        }
        2 => {
            let n = r.count("returning count")?;
            let mut ms = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let user_id = r.str("user id")?;
                let request = decode_user_request(r, schema)?;
                let prior = decode_snapshot(r, schema)?;
                ms.push(ReturningMember {
                    user_id,
                    returning: ReturningUser { request, prior },
                });
            }
            Ok(ServeRequest::Returning(ms))
        }
        3 => {
            let n = r.count("refresh count")?;
            let mut ids = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                ids.push(r.str("user id")?);
            }
            Ok(ServeRequest::Refresh(ids))
        }
        _ => {
            r.pos -= 1;
            Err(r.err("request tag"))
        }
    }
}

/// One served user in a [`WireResponse`]: the owned twin of
/// [`crate::ServedUser`], carrying the session **snapshot** (the
/// system-independent value the store persists) instead of the
/// system-borrowing live session.
#[derive(Clone, Debug)]
pub struct WireServedUser {
    /// The id the session was served under.
    pub user_id: String,
    /// The served session as an owned snapshot.
    pub snapshot: SessionSnapshot,
    /// Per-time-point replay/recompute provenance (`None` for cold
    /// serves, mirroring [`jit_core::UserSession::reserve_report`]).
    pub provenance: Option<Vec<TimePointServe>>,
}

/// The shard-count-independent totals of a [`crate::ServeReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireReport {
    /// Users served.
    pub users: usize,
    /// Time points replayed from snapshots.
    pub replayed_time_points: usize,
    /// Time points recomputed under drift.
    pub recomputed_time_points: usize,
    /// Time points computed cold.
    pub cold_time_points: usize,
}

/// The owned, wire-encodable serving response.
///
/// Deliberately drops the per-shard report breakdown: totals are
/// shard-count-invariant, so the encoded bytes of a response are
/// identical whether 1, 2 or 4 shards (in-process or OS processes)
/// served it — the determinism bar of the networked tier.
#[derive(Clone, Debug, Default)]
pub struct WireResponse {
    /// One entry per requested user, in request order.
    pub users: Vec<WireServedUser>,
    /// Aggregate totals.
    pub report: WireReport,
}

impl WireResponse {
    /// Snapshots a borrowed [`ServeResponse`] into its owned wire form.
    pub fn from_response(response: &ServeResponse<'_>) -> Self {
        WireResponse {
            users: response
                .users
                .iter()
                .map(|u| WireServedUser {
                    user_id: u.user_id.clone(),
                    snapshot: u.session.snapshot(),
                    provenance: u.session.reserve_report().map(<[_]>::to_vec),
                })
                .collect(),
            report: WireReport {
                users: response.report.users,
                replayed_time_points: response.report.replayed_time_points,
                recomputed_time_points: response.report.recomputed_time_points,
                cold_time_points: response.report.cold_time_points,
            },
        }
    }
}

/// Encodes a [`WireResponse`] body.
pub fn encode_response(w: &mut Writer, response: &WireResponse) {
    w.count(response.users.len());
    for user in &response.users {
        w.str(&user.user_id);
        encode_snapshot(w, &user.snapshot);
        match &user.provenance {
            None => w.u8(0),
            Some(report) => {
                w.u8(1);
                w.count(report.len());
                for served in report {
                    w.u8(match served {
                        TimePointServe::Replayed => 0,
                        TimePointServe::Recomputed => 1,
                    });
                }
            }
        }
    }
    w.usize(response.report.users);
    w.usize(response.report.replayed_time_points);
    w.usize(response.report.recomputed_time_points);
    w.usize(response.report.cold_time_points);
}

/// Decodes a [`WireResponse`] body.
///
/// # Errors
/// [`WireError::Malformed`] on any byte-level mismatch; never panics.
pub fn decode_response(
    r: &mut Reader<'_>,
    schema: &FeatureSchema,
) -> Result<WireResponse, WireError> {
    let n = r.count("served user count")?;
    let mut users = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let user_id = r.str("user id")?;
        let snapshot = decode_snapshot(r, schema)?;
        let provenance = match r.u8("provenance tag")? {
            0 => None,
            1 => {
                let n = r.count("provenance count")?;
                let mut report = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    report.push(match r.u8("provenance entry")? {
                        0 => TimePointServe::Replayed,
                        1 => TimePointServe::Recomputed,
                        _ => {
                            r.pos -= 1;
                            return Err(r.err("provenance entry"));
                        }
                    });
                }
                Some(report)
            }
            _ => {
                r.pos -= 1;
                return Err(r.err("provenance tag"));
            }
        };
        users.push(WireServedUser { user_id, snapshot, provenance });
    }
    let report = WireReport {
        users: r.usize("report users")?,
        replayed_time_points: r.usize("report replayed")?,
        recomputed_time_points: r.usize("report recomputed")?,
        cold_time_points: r.usize("report cold")?,
    };
    Ok(WireResponse { users, report })
}

/// Encodes a [`ServeError`] body. Nested database errors are carried as
/// their rendered message (see the module docs on the lossy mapping).
pub fn encode_error(w: &mut Writer, error: &ServeError) {
    match error {
        ServeError::EmptyBatch => w.u8(0),
        ServeError::DuplicateUser(id) => {
            w.u8(1);
            w.str(id);
        }
        ServeError::UnknownUser(id) => {
            w.u8(2);
            w.str(id);
        }
        ServeError::Session { user_id, error } => {
            w.u8(3);
            w.str(user_id);
            match error {
                SessionError::DimensionMismatch { expected, found } => {
                    w.u8(0);
                    w.usize(*expected);
                    w.usize(*found);
                }
                SessionError::UnknownFeature(name) => {
                    w.u8(1);
                    w.str(name);
                }
                SessionError::Db(e) => {
                    w.u8(2);
                    // jit-analyze: allow(no-lossy-float-fmt) — documented lossy error mapping: DbError crosses the wire as display text
                    w.str(&e.to_string());
                }
            }
        }
        ServeError::Store { user_id, error } => {
            w.u8(4);
            match user_id {
                None => w.u8(0),
                Some(id) => {
                    w.u8(1);
                    w.str(id);
                }
            }
            match error {
                StoreError::Db(e) => {
                    w.u8(0);
                    // jit-analyze: allow(no-lossy-float-fmt) — documented lossy error mapping: DbError crosses the wire as display text
                    w.str(&e.to_string());
                }
                StoreError::SchemaMismatch { expected, found } => {
                    w.u8(1);
                    w.digest(*expected);
                    w.digest(*found);
                }
                StoreError::Corrupt { user_id, detail } => {
                    w.u8(2);
                    w.str(user_id);
                    w.str(detail);
                }
                StoreError::Unavailable(why) => {
                    w.u8(3);
                    w.str(why);
                }
            }
        }
        ServeError::Overloaded { capacity } => {
            w.u8(5);
            w.usize(*capacity);
        }
        ServeError::Shard { shard, user_id, detail } => {
            w.u8(6);
            w.usize(*shard);
            w.str(user_id);
            w.str(detail);
        }
        ServeError::Transport(detail) => {
            w.u8(7);
            w.str(detail);
        }
    }
}

/// Decodes a [`ServeError`] body.
///
/// # Errors
/// [`WireError::Malformed`] on any byte-level mismatch; never panics.
pub fn decode_error(r: &mut Reader<'_>) -> Result<ServeError, WireError> {
    Ok(match r.u8("error tag")? {
        0 => ServeError::EmptyBatch,
        1 => ServeError::DuplicateUser(r.str("user id")?),
        2 => ServeError::UnknownUser(r.str("user id")?),
        3 => {
            let user_id = r.str("user id")?;
            let error = match r.u8("session error tag")? {
                0 => SessionError::DimensionMismatch {
                    expected: r.usize("expected dimension")?,
                    found: r.usize("found dimension")?,
                },
                1 => SessionError::UnknownFeature(r.str("feature name")?),
                2 => SessionError::Db(jit_db::DbError::Eval(r.str("db message")?)),
                _ => {
                    r.pos -= 1;
                    return Err(r.err("session error tag"));
                }
            };
            ServeError::Session { user_id, error }
        }
        4 => {
            let user_id = match r.u8("store user tag")? {
                0 => None,
                1 => Some(r.str("user id")?),
                _ => {
                    r.pos -= 1;
                    return Err(r.err("store user tag"));
                }
            };
            let error = match r.u8("store error tag")? {
                0 => StoreError::Db(jit_db::DbError::Eval(r.str("db message")?)),
                1 => StoreError::SchemaMismatch {
                    expected: r.digest("expected digest")?,
                    found: r.digest("found digest")?,
                },
                2 => StoreError::Corrupt {
                    user_id: r.str("corrupt user id")?,
                    detail: r.str("corrupt detail")?,
                },
                3 => StoreError::Unavailable(r.str("unavailable reason")?),
                _ => {
                    r.pos -= 1;
                    return Err(r.err("store error tag"));
                }
            };
            ServeError::Store { user_id, error }
        }
        5 => ServeError::Overloaded { capacity: r.usize("queue capacity")? },
        6 => ServeError::Shard {
            shard: r.usize("shard index")?,
            user_id: r.str("user id")?,
            detail: r.str("shard detail")?,
        },
        7 => ServeError::Transport(r.str("transport detail")?),
        _ => {
            r.pos -= 1;
            return Err(r.err("error tag"));
        }
    })
}

// ---------------------------------------------------------------------
// Train-spec codec (supervisor handshake)
// ---------------------------------------------------------------------

fn encode_train_spec(w: &mut Writer, spec: &TrainSpec) {
    w.usize(spec.data.records_per_year);
    w.usize(spec.data.n_years);
    w.u64(spec.data.seed);
    let c = &spec.config;
    w.usize(c.horizon);
    w.u32(c.start_year);
    w.u32(c.period_years);
    let f = &c.future;
    w.usize(f.horizon);
    w.u8(match f.predictor {
        FuturePredictor::Edd => 0,
        FuturePredictor::ParamExtrapolation => 1,
        FuturePredictor::Frozen => 2,
    });
    w.usize(f.n_landmarks);
    w.f64(f.var_lambda);
    w.f64(f.herding.lambda);
    w.f64(f.herding.min_weight_fraction);
    w.usize(f.pool_slices);
    w.usize(f.forest.n_trees);
    w.usize(f.forest.max_depth);
    w.f64(f.forest.min_leaf_weight);
    match f.forest.feature_subsample {
        None => w.u8(0),
        Some(k) => {
            w.u8(1);
            w.usize(k);
        }
    }
    w.usize(f.forest.threads);
    match f.threshold {
        ThresholdPolicy::MaxF1 => w.u8(0),
        ThresholdPolicy::TargetPrecision(p) => {
            w.u8(1);
            w.f64(p);
        }
        ThresholdPolicy::Fixed(t) => {
            w.u8(2);
            w.f64(t);
        }
    }
    w.f64(f.calibration_fraction);
    w.u64(f.seed);
    w.usize(f.threads);
    let cand = &c.candidates;
    w.usize(cand.beam_width);
    w.usize(cand.max_iters);
    w.usize(cand.top_k);
    w.f64(cand.diversity_lambda);
    w.u8(match cand.objective {
        Objective::MinDiff => 0,
        Objective::MinGap => 1,
        Objective::MaxConfidence => 2,
    });
    w.usize(cand.max_moves_per_state);
    w.usize(cand.early_stop_after);
    w.bool(cand.refine);
    w.u64(cand.seed);
    w.bool(c.parallel_generators);
    w.usize(c.threads);
    w.usize(c.batch_threads);
    w.u8(match c.batch_parallelism {
        BatchParallelism::PerUser => 0,
        BatchParallelism::PerTimePoint => 1,
    });
}

fn decode_train_spec(r: &mut Reader<'_>) -> Result<TrainSpec, WireError> {
    let data = DataSpec {
        records_per_year: r.usize("records per year")?,
        n_years: r.usize("year count")?,
        seed: r.u64("data seed")?,
    };
    let horizon = r.usize("horizon")?;
    let start_year = r.u32("start year")?;
    let period_years = r.u32("period years")?;
    let future = FutureModelsParams {
        horizon: r.usize("future horizon")?,
        predictor: match r.u8("predictor tag")? {
            0 => FuturePredictor::Edd,
            1 => FuturePredictor::ParamExtrapolation,
            2 => FuturePredictor::Frozen,
            _ => {
                r.pos -= 1;
                return Err(r.err("predictor tag"));
            }
        },
        n_landmarks: r.usize("landmark count")?,
        var_lambda: r.f64("var lambda")?,
        herding: HerdingParams {
            lambda: r.f64("herding lambda")?,
            min_weight_fraction: r.f64("herding weight floor")?,
        },
        pool_slices: r.usize("pool slices")?,
        forest: RandomForestParams {
            n_trees: r.usize("tree count")?,
            max_depth: r.usize("max depth")?,
            min_leaf_weight: r.f64("min leaf weight")?,
            feature_subsample: match r.u8("subsample tag")? {
                0 => None,
                1 => Some(r.usize("subsample size")?),
                _ => {
                    r.pos -= 1;
                    return Err(r.err("subsample tag"));
                }
            },
            threads: r.usize("forest threads")?,
        },
        threshold: match r.u8("threshold tag")? {
            0 => ThresholdPolicy::MaxF1,
            1 => ThresholdPolicy::TargetPrecision(r.f64("target precision")?),
            2 => ThresholdPolicy::Fixed(r.f64("fixed threshold")?),
            _ => {
                r.pos -= 1;
                return Err(r.err("threshold tag"));
            }
        },
        calibration_fraction: r.f64("calibration fraction")?,
        seed: r.u64("future seed")?,
        threads: r.usize("future threads")?,
    };
    let candidates = CandidateParams {
        beam_width: r.usize("beam width")?,
        max_iters: r.usize("max iters")?,
        top_k: r.usize("top k")?,
        diversity_lambda: r.f64("diversity lambda")?,
        objective: match r.u8("objective tag")? {
            0 => Objective::MinDiff,
            1 => Objective::MinGap,
            2 => Objective::MaxConfidence,
            _ => {
                r.pos -= 1;
                return Err(r.err("objective tag"));
            }
        },
        max_moves_per_state: r.usize("max moves")?,
        early_stop_after: r.usize("early stop")?,
        refine: r.bool("refine flag")?,
        seed: r.u64("candidate seed")?,
    };
    let config = AdminConfig {
        horizon,
        start_year,
        period_years,
        future,
        candidates,
        parallel_generators: r.bool("parallel generators flag")?,
        threads: r.usize("threads")?,
        batch_threads: r.usize("batch threads")?,
        batch_parallelism: match r.u8("batch parallelism tag")? {
            0 => BatchParallelism::PerUser,
            1 => BatchParallelism::PerTimePoint,
            _ => {
                r.pos -= 1;
                return Err(r.err("batch parallelism tag"));
            }
        },
    };
    Ok(TrainSpec { data, config })
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// Every message the networked tier speaks, over both transports (TCP
/// front end and shard stdin/stdout pipes).
///
/// | tag | message | direction |
/// |---|---|---|
/// | 0 | [`Message::Hello`] | supervisor → shard (handshake) |
/// | 1 | [`Message::Ready`] | shard → supervisor |
/// | 2 | [`Message::Serve`] | caller → server |
/// | 3 | [`Message::Served`] | server → caller |
/// | 4 | [`Message::Failed`] | server → caller |
/// | 5 | [`Message::Ping`] | caller → server |
/// | 6 | [`Message::Pong`] | server → caller |
/// | 7 | [`Message::Shutdown`] | supervisor → shard |
#[derive(Debug)]
pub enum Message {
    /// Handshake: the spec the shard must train (bit-deterministically)
    /// before serving.
    Hello(TrainSpec),
    /// Handshake reply: the digest of the schema the shard trained
    /// under, verified against the supervisor's own.
    Ready {
        /// Content digest of the shard's feature schema.
        schema_digest: Digest,
    },
    /// A serving request; `id` is echoed in the reply.
    Serve {
        /// Caller-chosen correlation id.
        id: u64,
        /// The request.
        request: ServeRequest,
    },
    /// A successful serving reply.
    Served {
        /// Echo of the request's id.
        id: u64,
        /// The response.
        response: WireResponse,
    },
    /// A failed serving reply (or a protocol-level rejection, with the
    /// typed error inside).
    Failed {
        /// Echo of the request's id (0 when the request could not be
        /// read far enough to learn it).
        id: u64,
        /// The typed error.
        error: ServeError,
    },
    /// Liveness probe.
    Ping {
        /// Caller-chosen correlation id.
        id: u64,
    },
    /// Liveness reply.
    Pong {
        /// Echo of the ping's id.
        id: u64,
    },
    /// Orderly shutdown request; the shard exits after reading it.
    Shutdown,
}

/// Encodes a message into a frame body (message tag + payload).
pub fn encode_message(message: &Message) -> Vec<u8> {
    let mut w = Writer::new();
    match message {
        Message::Hello(spec) => {
            w.u8(0);
            encode_train_spec(&mut w, spec);
        }
        Message::Ready { schema_digest } => {
            w.u8(1);
            w.digest(*schema_digest);
        }
        Message::Serve { id, request } => {
            w.u8(2);
            w.u64(*id);
            encode_request(&mut w, request);
        }
        Message::Served { id, response } => {
            w.u8(3);
            w.u64(*id);
            encode_response(&mut w, response);
        }
        Message::Failed { id, error } => {
            w.u8(4);
            w.u64(*id);
            encode_error(&mut w, error);
        }
        Message::Ping { id } => {
            w.u8(5);
            w.u64(*id);
        }
        Message::Pong { id } => {
            w.u8(6);
            w.u64(*id);
        }
        Message::Shutdown => w.u8(7),
    }
    w.into_bytes()
}

/// Decodes a frame body into a [`Message`]. `schema` is required for
/// request/response payloads ([`Message::Serve`], [`Message::Served`]) —
/// pre-handshake peers pass `None` and can still read handshake and
/// control messages.
///
/// # Errors
/// [`WireError::Malformed`] on any byte-level mismatch, including
/// trailing garbage after a well-formed payload; never panics.
pub fn decode_message(
    body: &[u8],
    schema: Option<&FeatureSchema>,
) -> Result<Message, WireError> {
    let mut r = Reader::new(body);
    let need_schema = |r: &Reader<'_>| WireError::Malformed {
        offset: r.pos,
        expected: "handshake before serve traffic",
    };
    let message = match r.u8("message tag")? {
        0 => Message::Hello(decode_train_spec(&mut r)?),
        1 => Message::Ready { schema_digest: r.digest("schema digest")? },
        2 => {
            let id = r.u64("request id")?;
            let schema = schema.ok_or_else(|| need_schema(&r))?;
            Message::Serve { id, request: decode_request(&mut r, schema)? }
        }
        3 => {
            let id = r.u64("request id")?;
            let schema = schema.ok_or_else(|| need_schema(&r))?;
            Message::Served { id, response: decode_response(&mut r, schema)? }
        }
        4 => {
            let id = r.u64("request id")?;
            Message::Failed { id, error: decode_error(&mut r)? }
        }
        5 => Message::Ping { id: r.u64("ping id")? },
        6 => Message::Pong { id: r.u64("pong id")? },
        7 => Message::Shutdown,
        _ => {
            r.pos -= 1;
            return Err(r.err("message tag"));
        }
    };
    r.finish("end of message")?;
    Ok(message)
}

/// Convenience: the canonical encoded bytes of a [`WireResponse`] —
/// what the determinism suite compares across serving tiers.
pub fn response_bytes(response: &WireResponse) -> Vec<u8> {
    let mut w = Writer::new();
    encode_response(&mut w, response);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_and_caps() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", 64).unwrap();
        write_frame(&mut buf, b"", 64).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"");
        assert!(matches!(read_frame(&mut r, 64), Err(WireError::Closed)));
        // Write-side cap.
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &[0u8; 100], 64),
            Err(WireError::Oversized { len: 100, max: 64 })
        ));
        assert!(sink.is_empty(), "nothing written for an oversized frame");
        // Read-side cap: the body must not be consumed.
        let mut oversized = Vec::new();
        write_frame(&mut oversized, &[7u8; 32], 64).unwrap();
        let mut r = &oversized[..];
        assert!(matches!(
            read_frame(&mut r, 16),
            Err(WireError::Oversized { len: 32, max: 16 })
        ));
        // Truncated mid-frame: I/O error, not a panic or a hang.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, b"full frame", 64).unwrap();
        truncated.truncate(7);
        let mut r = &truncated[..];
        assert!(matches!(read_frame(&mut r, 64), Err(WireError::Io(_))));
        // Truncated inside the length prefix itself.
        let mut r = &[1u8, 0][..];
        assert!(matches!(read_frame(&mut r, 64), Err(WireError::Io(_))));
    }

    #[test]
    fn control_messages_round_trip_without_schema() {
        for message in [
            Message::Ping { id: 7 },
            Message::Pong { id: u64::MAX },
            Message::Shutdown,
            Message::Ready { schema_digest: Digest([1, 2]) },
            Message::Failed { id: 3, error: ServeError::Overloaded { capacity: 4 } },
        ] {
            let body = encode_message(&message);
            let back = decode_message(&body, None).unwrap();
            assert_eq!(encode_message(&back), body);
        }
    }

    #[test]
    fn train_spec_round_trips_bit_exactly() {
        let spec = TrainSpec {
            data: DataSpec { records_per_year: 77, n_years: 5, seed: 0xdead },
            config: AdminConfig {
                horizon: 3,
                future: FutureModelsParams {
                    predictor: FuturePredictor::ParamExtrapolation,
                    threshold: ThresholdPolicy::TargetPrecision(0.75),
                    forest: RandomForestParams {
                        feature_subsample: Some(3),
                        ..Default::default()
                    },
                    ..Default::default()
                },
                batch_parallelism: BatchParallelism::PerTimePoint,
                ..Default::default()
            },
        };
        let body = encode_message(&Message::Hello(spec));
        let back = decode_message(&body, None).unwrap();
        assert_eq!(encode_message(&back), body);
    }

    #[test]
    fn truncated_and_corrupt_bodies_are_typed_errors() {
        let body = encode_message(&Message::Ping { id: 42 });
        for cut in 0..body.len() {
            let err = decode_message(&body[..cut], None).unwrap_err();
            assert!(matches!(err, WireError::Malformed { .. }), "cut={cut}");
        }
        // Unknown message tag.
        assert!(matches!(
            decode_message(&[250], None),
            Err(WireError::Malformed { offset: 0, expected: "message tag" })
        ));
        // Trailing garbage after a valid message.
        let mut long = body.clone();
        long.push(9);
        assert!(matches!(
            decode_message(&long, None),
            Err(WireError::Malformed { expected: "end of message", .. })
        ));
    }
}
