//! The snapshot-store seam: pluggable persistence for served sessions.

// Decode/serve path: panics are denied outright here (tests and the
// few fn-level reasoned allows excepted) — hostile bytes and worker
// failures must surface as typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use jit_core::SessionSnapshot;
use jit_math::digest::Digest;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;

/// Everything a snapshot backend can fail with.
#[derive(Debug)]
pub enum StoreError {
    /// The backing SQL engine rejected a statement.
    Db(jit_db::DbError),
    /// A stored snapshot was recorded under a different feature schema
    /// than the one the store (and its serving system) runs now;
    /// replaying it could silently mis-serve, so loads refuse instead.
    SchemaMismatch {
        /// Digest of the schema the store expects.
        expected: Digest,
        /// Digest recorded with the snapshot.
        found: Digest,
    },
    /// Stored rows failed to decode back into a snapshot.
    Corrupt {
        /// The user whose snapshot is damaged.
        user_id: String,
        /// What failed to decode.
        detail: String,
    },
    /// The backend is unreachable/unusable (used by fault injection and
    /// future out-of-process backends).
    Unavailable(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Db(e) => write!(f, "snapshot database error: {e}"),
            StoreError::SchemaMismatch { expected, found } => write!(
                f,
                "snapshot schema digest {found} does not match the store's \
                 schema {expected}"
            ),
            StoreError::Corrupt { user_id, detail } => {
                write!(f, "stored snapshot for {user_id:?} is corrupt: {detail}")
            }
            StoreError::Unavailable(why) => {
                write!(f, "snapshot store unavailable: {why}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<jit_db::DbError> for StoreError {
    fn from(e: jit_db::DbError) -> Self {
        StoreError::Db(e)
    }
}

impl StoreError {
    /// `true` for failures that a bounded retry can plausibly clear: the
    /// backend being momentarily unreachable, or an I/O error from the
    /// durability layer (whose commit protocol rolls the log back to its
    /// committed length, making the next attempt safe). Schema
    /// mismatches, corrupt rows, and SQL rejections are deterministic —
    /// retrying them only repeats the failure.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StoreError::Unavailable(_) | StoreError::Db(jit_db::DbError::Io { .. })
        )
    }
}

/// Runs `f` up to 3 times, backing off briefly, while it fails with a
/// [transient](StoreError::is_transient) error. Deterministic errors and
/// the final attempt's failure surface unchanged — retrying never
/// reclassifies or swallows an error, it only buys another attempt.
pub fn retry_transient<T>(
    mut f: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    const ATTEMPTS: u32 = 3;
    let mut attempt = 0;
    loop {
        match f() {
            Err(e) if e.is_transient() && attempt + 1 < ATTEMPTS => {
                // jit-analyze: allow(no-wall-clock) — retry backoff pacing; the delay never feeds a digest or response
                std::thread::sleep(std::time::Duration::from_millis(1 << attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// A keyed store of [`SessionSnapshot`]s.
///
/// Methods take `&self` — implementations synchronize internally — so a
/// store can be driven from the sharded dispatcher's pool workers.
/// `save` overwrites; `load` returns `Ok(None)` for unknown ids (an
/// *absent* snapshot is not an error at this layer; the service turns it
/// into [`crate::ServeError::UnknownUser`] when a refresh needs it).
pub trait SnapshotStore: Send + Sync {
    /// Stores (or replaces) the snapshot for `user_id`.
    fn save(&self, user_id: &str, snapshot: &SessionSnapshot)
        -> Result<(), StoreError>;

    /// Loads the snapshot for `user_id`, if any.
    fn load(&self, user_id: &str) -> Result<Option<SessionSnapshot>, StoreError>;

    /// Removes the snapshot for `user_id`; `true` when one existed.
    fn remove(&self, user_id: &str) -> Result<bool, StoreError>;

    /// All stored user ids, sorted (deterministic iteration order).
    fn user_ids(&self) -> Result<Vec<String>, StoreError>;
}

/// The in-memory backend: snapshots live as long as the process.
#[derive(Default)]
pub struct MemorySnapshotStore {
    snapshots: RwLock<HashMap<String, SessionSnapshot>>,
}

impl MemorySnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        MemorySnapshotStore::default()
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.read().len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.snapshots.read().is_empty()
    }
}

impl fmt::Debug for MemorySnapshotStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySnapshotStore").field("len", &self.len()).finish()
    }
}

impl SnapshotStore for MemorySnapshotStore {
    fn save(
        &self,
        user_id: &str,
        snapshot: &SessionSnapshot,
    ) -> Result<(), StoreError> {
        self.snapshots.write().insert(user_id.to_string(), snapshot.clone());
        Ok(())
    }

    fn load(&self, user_id: &str) -> Result<Option<SessionSnapshot>, StoreError> {
        Ok(self.snapshots.read().get(user_id).cloned())
    }

    fn remove(&self, user_id: &str) -> Result<bool, StoreError> {
        Ok(self.snapshots.write().remove(user_id).is_some())
    }

    fn user_ids(&self) -> Result<Vec<String>, StoreError> {
        let mut ids: Vec<String> = self.snapshots.read().keys().cloned().collect();
        ids.sort();
        Ok(ids)
    }
}

/// The no-op backend: saves are discarded, loads always miss.
///
/// This is what a **stateless shard worker process** runs (see
/// `crate::supervisor`): the authoritative per-shard stores live in the
/// supervisor, which resolves [`crate::ServeRequest::Refresh`] before
/// dispatch and persists returned snapshots itself — a worker holding
/// its own store would just shadow state the supervisor already owns
/// (and lose it on restart).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSnapshotStore;

impl NullSnapshotStore {
    /// The store.
    pub fn new() -> Self {
        NullSnapshotStore
    }
}

impl SnapshotStore for NullSnapshotStore {
    fn save(
        &self,
        _user_id: &str,
        _snapshot: &SessionSnapshot,
    ) -> Result<(), StoreError> {
        Ok(())
    }

    fn load(&self, _user_id: &str) -> Result<Option<SessionSnapshot>, StoreError> {
        Ok(None)
    }

    fn remove(&self, _user_id: &str) -> Result<bool, StoreError> {
        Ok(false)
    }

    fn user_ids(&self) -> Result<Vec<String>, StoreError> {
        Ok(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_core::UserRequest;

    fn tiny_snapshot() -> SessionSnapshot {
        SessionSnapshot::from_parts(
            UserRequest::new(vec![1.0, 2.0]),
            vec![vec![1.0, 2.0], vec![2.0, 3.0]],
            vec![],
            vec![None, Some(Digest([1, 2]))],
        )
        .expect("well-formed parts")
    }

    #[test]
    fn memory_store_round_trip_and_listing() {
        let store = MemorySnapshotStore::new();
        assert!(store.is_empty());
        assert!(store.load("u1").unwrap().is_none());
        store.save("u2", &tiny_snapshot()).unwrap();
        store.save("u1", &tiny_snapshot()).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.user_ids().unwrap(), vec!["u1", "u2"]);
        let back = store.load("u1").unwrap().expect("stored");
        assert_eq!(back.fingerprints(), tiny_snapshot().fingerprints());
        assert!(store.remove("u1").unwrap());
        assert!(!store.remove("u1").unwrap());
        assert_eq!(store.user_ids().unwrap(), vec!["u2"]);
    }

    #[test]
    fn snapshot_from_parts_rejects_malformed_shapes() {
        let req = UserRequest::new(vec![1.0]);
        // Length mismatch between inputs and fingerprints.
        assert!(SessionSnapshot::from_parts(
            req.clone(),
            vec![vec![1.0]],
            vec![],
            vec![None, None],
        )
        .is_none());
        // No time points at all.
        assert!(
            SessionSnapshot::from_parts(req.clone(), vec![], vec![], vec![]).is_none()
        );
        // Candidate time index out of range.
        let bad_candidate = jit_core::Candidate {
            time_index: 5,
            profile: vec![1.0],
            diff: 0.0,
            gap: 0,
            confidence: 0.5,
        };
        assert!(SessionSnapshot::from_parts(
            req,
            vec![vec![1.0]],
            vec![bad_candidate],
            vec![None],
        )
        .is_none());
    }
}
