//! Exact text codecs for the snapshot parts that are not plain numbers.
//!
//! The SQL store keeps profiles, temporal inputs and candidates as
//! `REAL` columns (lossless since `jit-db`'s float round-trip fix) and
//! fingerprints as digest hex. What remains — constraint ASTs and
//! temporal update functions — is encoded here into compact text blobs
//! with every `f64` written as its 16-hex-digit IEEE-754 bit pattern, so
//! a decode is **bit-identical** to the encoded value: round-tripped
//! constraint sets compile to the same [`jit_constraints::BoundConstraint`]
//! content digests, which is what makes a persisted re-serve replay
//! exactly like an in-memory one.
//!
//! The grammar is length-/count-prefixed (no delimiters to escape):
//!
//! ```text
//! constraint := 'T'                                  -- True
//!             | 'C' op lin lin                       -- Cmp
//!             | 'A' count ':' constraint*            -- And
//!             | 'O' count ':' constraint*            -- Or
//!             | 'N' constraint                       -- Not
//! op         := 'l' | '<' | 'g' | '>' | '=' | '!'    -- Le Lt Ge Gt Eq Ne
//! lin        := 'L' count ':' f64 term*              -- constant, then terms
//! term       := var f64
//! var        := 'F' len ':' bytes | 'D' | 'G' | 'P'  -- feature, diff/gap/conf
//! f64        := 16 hex digits (IEEE-754 bits)
//! ```

// Decode/serve path: panics are denied outright here (tests and the
// few fn-level reasoned allows excepted) — hostile bytes and worker
// failures must surface as typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use jit_constraints::{CmpOp, Constraint, LinExpr, Special, VarRef};
use jit_data::{FeatureSchema, TemporalSpec};
use jit_temporal::update::{Override, TemporalUpdateFn};
use std::fmt;

/// A decode failure: where in the blob, and what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset into the encoded text.
    pub offset: usize,
    /// What the decoder expected at that offset.
    pub expected: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot codec: expected {} at byte {}", self.expected, self.offset)
    }
}

impl std::error::Error for CodecError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, expected: &'static str) -> CodecError {
        CodecError { offset: self.pos, expected }
    }

    fn next(&mut self, expected: &'static str) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.err(expected))?;
        self.pos += 1;
        Ok(b)
    }

    // Named `expect_byte` (not `expect`): this is a Result-returning
    // parser step, and the no-panic-paths contract reserves `.expect(`
    // for the panicking `Option`/`Result` method.
    fn expect_byte(&mut self, b: u8, expected: &'static str) -> Result<(), CodecError> {
        if self.next(expected)? == b {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.err(expected))
        }
    }

    /// Decimal count/length terminated by `:`.
    fn count(&mut self) -> Result<usize, CodecError> {
        let start = self.pos;
        let mut n: usize = 0;
        let mut digits = 0usize;
        loop {
            match self.next("decimal count")? {
                b @ b'0'..=b'9' => {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(usize::from(b - b'0')))
                        .ok_or(CodecError { offset: start, expected: "sane count" })?;
                    digits += 1;
                }
                b':' if digits > 0 => return Ok(n),
                _ => {
                    self.pos -= 1;
                    return Err(self.err("decimal count"));
                }
            }
        }
    }

    fn f64_bits(&mut self) -> Result<f64, CodecError> {
        if self.pos + 16 > self.bytes.len() {
            return Err(self.err("16 hex digits"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 16])
            .map_err(|_| self.err("16 hex digits"))?;
        let bits =
            u64::from_str_radix(hex, 16).map_err(|_| self.err("16 hex digits"))?;
        self.pos += 16;
        Ok(f64::from_bits(bits))
    }

    fn str_of(&mut self, len: usize) -> Result<&'a str, CodecError> {
        if self.pos + len > self.bytes.len() {
            return Err(self.err("length-prefixed string"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
            .map_err(|_| self.err("utf-8 string"))?;
        self.pos += len;
        Ok(s)
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn push_f64(out: &mut String, v: f64) {
    out.push_str(&format!("{:016x}", v.to_bits()));
}

/// Pushes a decimal count/length. Only f64 payloads must travel as
/// bits; `usize` counts format exactly in decimal.
fn push_usize(out: &mut String, n: usize) {
    // jit-analyze: allow(no-lossy-float-fmt) — usize is integral; decimal text is exact
    out.push_str(&n.to_string());
}

// ---------------------------------------------------------------------
// Constraints
// ---------------------------------------------------------------------

fn encode_lin(out: &mut String, e: &LinExpr) {
    let terms: Vec<(&VarRef, f64)> = e.terms().collect();
    out.push('L');
    push_usize(out, terms.len());
    out.push(':');
    push_f64(out, e.constant_part());
    for (var, coef) in terms {
        match var {
            VarRef::Feature(name) => {
                out.push('F');
                push_usize(out, name.len());
                out.push(':');
                out.push_str(name);
            }
            VarRef::Special(Special::Diff) => out.push('D'),
            VarRef::Special(Special::Gap) => out.push('G'),
            VarRef::Special(Special::Confidence) => out.push('P'),
        }
        push_f64(out, coef);
    }
}

fn decode_lin(cur: &mut Cursor<'_>) -> Result<LinExpr, CodecError> {
    cur.expect_byte(b'L', "'L' (linear expression)")?;
    let n = cur.count()?;
    let constant = cur.f64_bits()?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        let var = match cur.next("variable tag")? {
            b'F' => {
                let len = cur.count()?;
                VarRef::Feature(cur.str_of(len)?.to_owned())
            }
            b'D' => VarRef::Special(Special::Diff),
            b'G' => VarRef::Special(Special::Gap),
            b'P' => VarRef::Special(Special::Confidence),
            _ => {
                cur.pos -= 1;
                return Err(cur.err("variable tag F/D/G/P"));
            }
        };
        terms.push((var, cur.f64_bits()?));
    }
    Ok(LinExpr::from_terms(terms, constant))
}

fn op_char(op: CmpOp) -> char {
    match op {
        CmpOp::Le => 'l',
        CmpOp::Lt => '<',
        CmpOp::Ge => 'g',
        CmpOp::Gt => '>',
        CmpOp::Eq => '=',
        CmpOp::Ne => '!',
    }
}

fn encode_constraint_into(out: &mut String, c: &Constraint) {
    match c {
        Constraint::True => out.push('T'),
        Constraint::Cmp { lhs, op, rhs } => {
            out.push('C');
            out.push(op_char(*op));
            encode_lin(out, lhs);
            encode_lin(out, rhs);
        }
        Constraint::And(cs) => {
            out.push('A');
            push_usize(out, cs.len());
            out.push(':');
            for c in cs {
                encode_constraint_into(out, c);
            }
        }
        Constraint::Or(cs) => {
            out.push('O');
            push_usize(out, cs.len());
            out.push(':');
            for c in cs {
                encode_constraint_into(out, c);
            }
        }
        Constraint::Not(inner) => {
            out.push('N');
            encode_constraint_into(out, inner);
        }
    }
}

fn decode_constraint_inner(cur: &mut Cursor<'_>) -> Result<Constraint, CodecError> {
    match cur.next("constraint tag T/C/A/O/N")? {
        b'T' => Ok(Constraint::True),
        b'C' => {
            let op = match cur.next("comparison op")? {
                b'l' => CmpOp::Le,
                b'<' => CmpOp::Lt,
                b'g' => CmpOp::Ge,
                b'>' => CmpOp::Gt,
                b'=' => CmpOp::Eq,
                b'!' => CmpOp::Ne,
                _ => {
                    cur.pos -= 1;
                    return Err(cur.err("comparison op"));
                }
            };
            let lhs = decode_lin(cur)?;
            let rhs = decode_lin(cur)?;
            Ok(Constraint::Cmp { lhs, op, rhs })
        }
        b'A' => {
            let n = cur.count()?;
            let mut cs = Vec::with_capacity(n);
            for _ in 0..n {
                cs.push(decode_constraint_inner(cur)?);
            }
            Ok(Constraint::And(cs))
        }
        b'O' => {
            let n = cur.count()?;
            let mut cs = Vec::with_capacity(n);
            for _ in 0..n {
                cs.push(decode_constraint_inner(cur)?);
            }
            Ok(Constraint::Or(cs))
        }
        b'N' => Ok(Constraint::Not(Box::new(decode_constraint_inner(cur)?))),
        _ => {
            cur.pos -= 1;
            Err(cur.err("constraint tag T/C/A/O/N"))
        }
    }
}

/// Encodes a constraint AST into the codec's text form.
pub fn encode_constraint(c: &Constraint) -> String {
    let mut out = String::new();
    encode_constraint_into(&mut out, c);
    out
}

/// Decodes [`encode_constraint`] output. The whole text must be consumed.
pub fn decode_constraint(text: &str) -> Result<Constraint, CodecError> {
    let mut cur = Cursor::new(text);
    let c = decode_constraint_inner(&mut cur)?;
    if cur.at_end() {
        Ok(c)
    } else {
        Err(cur.err("end of constraint"))
    }
}

// ---------------------------------------------------------------------
// Temporal update functions
// ---------------------------------------------------------------------

fn encode_spec(out: &mut String, spec: &TemporalSpec) {
    match spec {
        TemporalSpec::Static => out.push('s'),
        TemporalSpec::Linear { per_period } => {
            out.push('l');
            push_f64(out, *per_period);
        }
        TemporalSpec::Compound { rate } => {
            out.push('c');
            push_f64(out, *rate);
        }
    }
}

fn decode_spec(cur: &mut Cursor<'_>) -> Result<TemporalSpec, CodecError> {
    match cur.next("temporal spec tag s/l/c")? {
        b's' => Ok(TemporalSpec::Static),
        b'l' => Ok(TemporalSpec::Linear { per_period: cur.f64_bits()? }),
        b'c' => Ok(TemporalSpec::Compound { rate: cur.f64_bits()? }),
        _ => {
            cur.pos -= 1;
            Err(cur.err("temporal spec tag s/l/c"))
        }
    }
}

/// Encodes an optional update function. `None` (schema default at serve
/// time) encodes as `"-"`.
pub fn encode_update_fn(update: Option<&TemporalUpdateFn>) -> String {
    let Some(update) = update else {
        return String::from("-");
    };
    let mut out = String::from("U");
    push_usize(&mut out, update.specs().len());
    out.push(':');
    for (spec, over) in update.specs().iter().zip(update.overrides()) {
        encode_spec(&mut out, spec);
        match over {
            None => out.push('n'),
            Some(Override::Spec(s)) => {
                out.push('o');
                encode_spec(&mut out, s);
            }
            Some(Override::Trajectory(traj)) => {
                out.push('t');
                push_usize(&mut out, traj.len());
                out.push(':');
                for v in traj {
                    push_f64(&mut out, *v);
                }
            }
        }
    }
    out
}

/// Decodes [`encode_update_fn`] output against the serving schema.
///
/// The encoded dimension must match `schema.dim()` — an update function
/// recorded under a different schema cannot be rebuilt faithfully (the
/// store separately rejects such snapshots by schema digest).
pub fn decode_update_fn(
    text: &str,
    schema: &FeatureSchema,
) -> Result<Option<TemporalUpdateFn>, CodecError> {
    if text == "-" {
        return Ok(None);
    }
    let mut cur = Cursor::new(text);
    cur.expect_byte(b'U', "'U' or '-'")?;
    let dim = cur.count()?;
    let mut specs = Vec::with_capacity(dim);
    let mut overrides = Vec::with_capacity(dim);
    for _ in 0..dim {
        specs.push(decode_spec(&mut cur)?);
        match cur.next("override tag n/o/t")? {
            b'n' => overrides.push(None),
            b'o' => overrides.push(Some(Override::Spec(decode_spec(&mut cur)?))),
            b't' => {
                let n = cur.count()?;
                let mut traj = Vec::with_capacity(n);
                for _ in 0..n {
                    traj.push(cur.f64_bits()?);
                }
                overrides.push(Some(Override::Trajectory(traj)));
            }
            _ => {
                cur.pos -= 1;
                return Err(cur.err("override tag n/o/t"));
            }
        }
    }
    if !cur.at_end() {
        return Err(cur.err("end of update function"));
    }
    TemporalUpdateFn::from_parts(schema, specs, overrides)
        .ok_or(CodecError { offset: 0, expected: "schema-dimension update fn" })
        .map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jit_constraints::builder::{confidence, diff, feature, gap};

    fn round_trip(c: &Constraint) {
        let text = encode_constraint(c);
        let back = decode_constraint(&text).expect("decodes");
        // Structural equality via re-encoding (Constraint lacks
        // PartialEq); the encoding writes every float's exact bits, so
        // equal encodings mean bit-identical ASTs.
        assert_eq!(encode_constraint(&back), text);
    }

    #[test]
    fn constraint_round_trips_cover_the_grammar() {
        round_trip(&Constraint::True);
        round_trip(&feature("income").le(80_000.0));
        round_trip(&gap().lt(3.0));
        round_trip(&diff().ge(-0.0));
        round_trip(&confidence().gt(0.75));
        round_trip(&feature("a b:c").ne(f64::MIN_POSITIVE / 2.0));
        round_trip(
            &feature("income")
                .le(80_000.0)
                .and(gap().le(2.0).or(diff().le(1500.0)))
                .and(Constraint::Not(Box::new(feature("debt").eq(0.1 + 0.2)))),
        );
        // Multi-term linear expressions keep coefficients bit-exactly.
        let lin = jit_constraints::LinExpr::feature("income")
            .plus(jit_constraints::LinExpr::feature("debt").times(-0.25))
            .offset(1e-300);
        round_trip(&Constraint::Cmp {
            lhs: lin,
            op: CmpOp::Le,
            rhs: jit_constraints::LinExpr::constant(5e-324),
        });
    }

    #[test]
    fn constraint_decode_rejects_malformed_text() {
        assert!(decode_constraint("").is_err());
        assert!(decode_constraint("X").is_err());
        assert!(decode_constraint("TT").is_err(), "trailing garbage");
        assert!(decode_constraint("Cz").is_err(), "bad op");
        assert!(decode_constraint("A2:T").is_err(), "count larger than body");
        assert!(decode_constraint("ClL0:zzzz").is_err(), "bad hex");
        let valid = encode_constraint(&feature("income").le(1.0));
        assert!(decode_constraint(&valid[..valid.len() - 1]).is_err(), "truncated");
    }

    #[test]
    fn update_fn_round_trips_bit_exactly() {
        let schema = FeatureSchema::lending_club();
        assert!(decode_update_fn("-", &schema).unwrap().is_none());
        let mut update = TemporalUpdateFn::from_schema(&schema);
        update.override_feature("debt", Override::Trajectory(vec![1_500.0, -0.0, 0.3]));
        update.override_feature("income", Override::Spec(TemporalSpec::Static));
        let text = encode_update_fn(Some(&update));
        let back = decode_update_fn(&text, &schema).unwrap().expect("some");
        assert_eq!(encode_update_fn(Some(&back)), text);
        // And behaviourally identical.
        let x = LendingClubProfile::john();
        for t in 0..4 {
            let a = update.project(&x, t);
            let b = back.project(&x, t);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    /// Local alias so the test reads clearly without a jit-data dev-dep
    /// on the generator; John's profile is a public fixture.
    struct LendingClubProfile;
    impl LendingClubProfile {
        fn john() -> Vec<f64> {
            vec![29.0, 0.0, 46_000.0, 2_300.0, 4.0, 24_000.0]
        }
    }

    #[test]
    fn update_fn_decode_rejects_wrong_dimension_and_garbage() {
        let schema = FeatureSchema::lending_club();
        assert!(decode_update_fn("U2:snsn", &schema).is_err(), "dim 2 != 6");
        assert!(decode_update_fn("", &schema).is_err());
        assert!(decode_update_fn("Ux", &schema).is_err());
        let valid = encode_update_fn(Some(&TemporalUpdateFn::from_schema(&schema)));
        assert!(decode_update_fn(&format!("{valid}z"), &schema).is_err());
    }
}
