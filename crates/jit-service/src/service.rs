//! The single-shard serving service.

use crate::api::{
    CohortMember, ReturningMember, ServeError, ServeReport, ServeRequest,
    ServeResponse, ServedUser, ShardReport,
};
use crate::store::{MemorySnapshotStore, SnapshotStore};
use jit_core::{
    AdminConfig, JustInTime, ReturningUser, SharedCellCache, TimePointServe,
    TrainError, UserSession,
};
use jit_data::FeatureSchema;
use jit_ml::Dataset;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// The serving service: a trained [`JustInTime`] system plus a
/// [`SnapshotStore`], behind the typed [`ServeRequest`] /
/// [`ServeResponse`] contract (see the crate docs).
///
/// Serving is bit-identical to the legacy `jit-core` entry points; what
/// the service adds is user identity, automatic snapshot persistence,
/// typed errors, the aggregate [`ServeReport`] — and a per-service
/// [`SharedCellCache`]: confidence cells computed for one user are
/// reused by every later user on the same model (see
/// `jit_core::candidates` for why that is provably output-preserving).
/// The cache's lifetime follows the model fingerprints: constructors
/// start it fresh, and [`JitService::with_cell_cache`] carries a prior
/// generation's cache across a retrain, dropping exactly the slots whose
/// models changed.
pub struct JitService {
    system: Arc<JustInTime>,
    store: Arc<dyn SnapshotStore>,
    /// Cross-user confidence cells, scoped to `system`'s model
    /// fingerprints.
    cache: Arc<SharedCellCache>,
    /// Shard index stamped into reports (0 for standalone services; the
    /// sharded dispatcher labels its workers).
    shard_label: usize,
}

impl fmt::Debug for JitService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JitService")
            .field("horizon", &self.system.config().horizon)
            .field("shard_label", &self.shard_label)
            .finish_non_exhaustive()
    }
}

impl JitService {
    /// Wraps a trained system with the given snapshot store.
    pub fn new(system: JustInTime, store: impl SnapshotStore + 'static) -> Self {
        Self::with_shared(Arc::new(system), Arc::new(store))
    }

    /// Wraps an already-shared system and store (how [`crate::ShardedService`]
    /// builds its shard workers). The cell cache starts empty.
    pub fn with_shared(system: Arc<JustInTime>, store: Arc<dyn SnapshotStore>) -> Self {
        JitService {
            system,
            store,
            cache: Arc::new(SharedCellCache::new()),
            shard_label: 0,
        }
    }

    /// [`JitService::with_shared`] adopting a **prior generation's** cell
    /// cache — the retrain handover: slots whose model fingerprints
    /// survive into `system` (pinned or undrifted models) carry their
    /// warm cells over, and every other slot is dropped here, precisely
    /// when the fingerprints change. Sound for any cache: stale slots
    /// are keyed by fingerprints the new system never produces, and this
    /// constructor removes them anyway to free the memory.
    pub fn with_cell_cache(
        system: Arc<JustInTime>,
        store: Arc<dyn SnapshotStore>,
        cache: Arc<SharedCellCache>,
    ) -> Self {
        cache.retain_models(system.model_keys());
        JitService { system, store, cache, shard_label: 0 }
    }

    /// A service over a fresh in-memory store.
    pub fn in_memory(system: JustInTime) -> Self {
        Self::new(system, MemorySnapshotStore::new())
    }

    /// Trains a system and wraps it — the one-call entry point.
    ///
    /// # Errors
    /// The typed [`TrainError`] from [`JustInTime::train`].
    pub fn train(
        config: AdminConfig,
        schema: &FeatureSchema,
        slices: &[Dataset],
        store: impl SnapshotStore + 'static,
    ) -> Result<Self, TrainError> {
        Ok(Self::new(JustInTime::train(config, schema, slices)?, store))
    }

    pub(crate) fn set_shard_label(&mut self, shard: usize) {
        self.shard_label = shard;
    }

    /// The trained system (read access; retraining means building a new
    /// service over the same store).
    pub fn system(&self) -> &JustInTime {
        &self.system
    }

    /// The shared handle to the system.
    pub fn system_arc(&self) -> &Arc<JustInTime> {
        &self.system
    }

    /// The snapshot store.
    pub fn store(&self) -> &dyn SnapshotStore {
        self.store.as_ref()
    }

    /// The shared handle to the store.
    pub fn store_arc(&self) -> &Arc<dyn SnapshotStore> {
        &self.store
    }

    /// The cross-user cell cache this service populates while serving.
    ///
    /// Hand it to [`JitService::with_cell_cache`] when building the
    /// next-generation service after a retrain to carry warm cells for
    /// surviving models across.
    pub fn cell_cache(&self) -> &Arc<SharedCellCache> {
        &self.cache
    }

    /// Serves one request — the one public serving entry point.
    ///
    /// All-or-nothing; sessions come back in request order; every served
    /// session's snapshot is stored under its user id before returning.
    /// See the crate docs for the full contract.
    ///
    /// # Errors
    /// The typed [`ServeError`] — never a panic: empty batches, duplicate
    /// or unknown user ids, per-user session failures (tagged with the
    /// user id) and store failures all surface as variants.
    pub fn serve(
        &self,
        request: ServeRequest,
    ) -> Result<ServeResponse<'_>, ServeError> {
        check_user_ids(&request)?;
        match request {
            ServeRequest::NewUser(member) => self.serve_cohort(vec![member]),
            ServeRequest::Batch(members) => self.serve_cohort(members),
            ServeRequest::Returning(members) => self.reserve_cohort(members),
            ServeRequest::Refresh(ids) => {
                let members =
                    ids.into_iter()
                        .map(|user_id| {
                            let prior = crate::store::retry_transient(|| {
                                self.store.load(&user_id)
                            })
                            .map_err(|error| ServeError::Store {
                                user_id: Some(user_id.clone()),
                                error,
                            })?
                            .ok_or_else(|| ServeError::UnknownUser(user_id.clone()))?;
                            Ok(ReturningMember {
                                user_id,
                                returning: ReturningUser::unchanged(prior),
                            })
                        })
                        .collect::<Result<Vec<_>, ServeError>>()?;
                self.reserve_cohort(members)
            }
        }
    }

    fn serve_cohort(
        &self,
        members: Vec<CohortMember>,
    ) -> Result<ServeResponse<'_>, ServeError> {
        let requests: Vec<jit_core::UserRequest> =
            members.iter().map(|m| m.request.clone()).collect();
        let sessions =
            self.system.serve_batch_shared(&requests, &self.cache).map_err(|e| {
                ServeError::Session {
                    user_id: members[e.user].user_id.clone(),
                    error: e.error,
                }
            })?;
        self.finish(members.into_iter().map(|m| m.user_id).collect(), sessions)
    }

    fn reserve_cohort(
        &self,
        members: Vec<ReturningMember>,
    ) -> Result<ServeResponse<'_>, ServeError> {
        let returning: Vec<ReturningUser> =
            members.iter().map(|m| m.returning.clone()).collect();
        let sessions = self
            .system
            .reserve_batch_shared(&returning, &self.cache)
            .map_err(|e| ServeError::Session {
                user_id: members[e.user].user_id.clone(),
                error: e.error,
            })?;
        self.finish(members.into_iter().map(|m| m.user_id).collect(), sessions)
    }

    /// Stores snapshots and assembles the response + report.
    fn finish<'a>(
        &self,
        user_ids: Vec<String>,
        sessions: Vec<UserSession<'a>>,
    ) -> Result<ServeResponse<'a>, ServeError> {
        let mut shard = ShardReport {
            shard: self.shard_label,
            users: 0,
            replayed_time_points: 0,
            recomputed_time_points: 0,
            cold_time_points: 0,
        };
        let mut users = Vec::with_capacity(sessions.len());
        for (user_id, session) in user_ids.into_iter().zip(sessions) {
            // Attribute a store failure to the user whose save failed:
            // saves run in request order, so a store dying mid-batch
            // reports the first user it lost (everything before it is
            // durably stored; nothing after it was attempted).
            let snapshot = session.snapshot();
            crate::store::retry_transient(|| self.store.save(&user_id, &snapshot))
                .map_err(|error| ServeError::Store {
                    user_id: Some(user_id.clone()),
                    error,
                })?;
            shard.users += 1;
            match session.reserve_report() {
                Some(report) => {
                    for served in report {
                        match served {
                            TimePointServe::Replayed => shard.replayed_time_points += 1,
                            TimePointServe::Recomputed => {
                                shard.recomputed_time_points += 1
                            }
                        }
                    }
                }
                None => shard.cold_time_points += session.temporal_inputs().len(),
            }
            users.push(ServedUser { user_id, session });
        }
        let report = ServeReport {
            users: shard.users,
            replayed_time_points: shard.replayed_time_points,
            recomputed_time_points: shard.recomputed_time_points,
            cold_time_points: shard.cold_time_points,
            shards: vec![shard],
        };
        Ok(ServeResponse { users, report })
    }
}

/// Shared request validation: batch variants must be non-empty and user
/// ids unique within one request.
pub(crate) fn check_user_ids(request: &ServeRequest) -> Result<(), ServeError> {
    if request.is_empty() {
        return Err(ServeError::EmptyBatch);
    }
    let mut seen = HashSet::new();
    for id in request.user_ids() {
        if !seen.insert(id) {
            return Err(ServeError::DuplicateUser(id.to_string()));
        }
    }
    Ok(())
}
