//! The typed request/response surface of the serving service.

use crate::store::StoreError;
use jit_core::{ReturningUser, SessionError, UserRequest, UserSession};
use std::fmt;

/// One identified user in a serving cohort.
#[derive(Clone, Debug)]
pub struct CohortMember {
    /// Stable user identity; snapshots are stored and refreshed under it.
    pub user_id: String,
    /// The serving request (profile, preferences, update-fn override).
    pub request: UserRequest,
}

impl CohortMember {
    /// Convenience constructor.
    pub fn new(user_id: impl Into<String>, request: UserRequest) -> Self {
        CohortMember { user_id: user_id.into(), request }
    }
}

/// One identified returning user, with their prior snapshot inline.
#[derive(Clone, Debug)]
pub struct ReturningMember {
    /// Stable user identity.
    pub user_id: String,
    /// The request to serve now plus the stored prior session.
    pub returning: ReturningUser,
}

impl ReturningMember {
    /// Convenience constructor.
    pub fn new(user_id: impl Into<String>, returning: ReturningUser) -> Self {
        ReturningMember { user_id: user_id.into(), returning }
    }
}

/// A serving request — the one entry point of the service tier.
///
/// All variants are all-or-nothing and respond in request order; see the
/// crate docs for the full contract.
#[derive(Clone, Debug)]
pub enum ServeRequest {
    /// Serve one first-visit user.
    NewUser(CohortMember),
    /// Serve a cohort of first-visit users through the amortized batch
    /// layer. Must be non-empty.
    Batch(Vec<CohortMember>),
    /// Re-serve returning users whose snapshots the caller holds.
    /// Must be non-empty.
    Returning(Vec<ReturningMember>),
    /// Re-serve returning users **by id**: snapshots are loaded from the
    /// service's [`crate::SnapshotStore`] and refreshed against the
    /// current system. Must be non-empty; unknown ids fail with
    /// [`ServeError::UnknownUser`].
    Refresh(Vec<String>),
}

impl ServeRequest {
    /// A [`ServeRequest::NewUser`] from parts.
    pub fn new_user(user_id: impl Into<String>, request: UserRequest) -> Self {
        ServeRequest::NewUser(CohortMember::new(user_id, request))
    }

    /// A [`ServeRequest::Batch`] from parts.
    pub fn batch(members: impl IntoIterator<Item = CohortMember>) -> Self {
        ServeRequest::Batch(members.into_iter().collect())
    }

    /// A [`ServeRequest::Returning`] from parts.
    pub fn returning(members: impl IntoIterator<Item = ReturningMember>) -> Self {
        ServeRequest::Returning(members.into_iter().collect())
    }

    /// A [`ServeRequest::Refresh`] from ids.
    pub fn refresh<I: Into<String>>(ids: impl IntoIterator<Item = I>) -> Self {
        ServeRequest::Refresh(ids.into_iter().map(Into::into).collect())
    }

    /// The user ids in request order.
    pub fn user_ids(&self) -> Vec<&str> {
        match self {
            ServeRequest::NewUser(m) => vec![m.user_id.as_str()],
            ServeRequest::Batch(ms) => ms.iter().map(|m| m.user_id.as_str()).collect(),
            ServeRequest::Returning(ms) => {
                ms.iter().map(|m| m.user_id.as_str()).collect()
            }
            ServeRequest::Refresh(ids) => ids.iter().map(String::as_str).collect(),
        }
    }

    /// Number of users addressed by the request.
    pub fn len(&self) -> usize {
        match self {
            ServeRequest::NewUser(_) => 1,
            ServeRequest::Batch(ms) => ms.len(),
            ServeRequest::Returning(ms) => ms.len(),
            ServeRequest::Refresh(ids) => ids.len(),
        }
    }

    /// `true` when the request addresses no users.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One served user in a [`ServeResponse`].
#[derive(Debug)]
pub struct ServedUser<'a> {
    /// The id the session was served (and its snapshot stored) under.
    pub user_id: String,
    /// The served session: candidates, queryable database, provenance.
    pub session: UserSession<'a>,
}

/// Aggregate provenance for one shard's slice of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index the users were routed to (always 0 for an unsharded
    /// [`crate::JitService`]).
    pub shard: usize,
    /// Users served by this shard.
    pub users: usize,
    /// Time points replayed from snapshots (fingerprint hit).
    pub replayed_time_points: usize,
    /// Time points recomputed because drift (or a preference change)
    /// invalidated their fingerprint.
    pub recomputed_time_points: usize,
    /// Time points computed cold (first-visit users carry no snapshot).
    pub cold_time_points: usize,
}

/// Aggregate serving report for one [`ServeResponse`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Users served.
    pub users: usize,
    /// Sum of replayed time points across users.
    pub replayed_time_points: usize,
    /// Sum of recomputed time points across users.
    pub recomputed_time_points: usize,
    /// Sum of cold-computed time points across users.
    pub cold_time_points: usize,
    /// Per-shard breakdown, in shard order (single entry for an
    /// unsharded service; only shards that served users appear).
    pub shards: Vec<ShardReport>,
}

impl ServeReport {
    /// Merges another report's counts into this one (sharded dispatch
    /// aggregation).
    pub(crate) fn absorb(&mut self, other: &ServeReport) {
        self.users += other.users;
        self.replayed_time_points += other.replayed_time_points;
        self.recomputed_time_points += other.recomputed_time_points;
        self.cold_time_points += other.cold_time_points;
        self.shards.extend(other.shards.iter().copied());
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} users ({} replayed / {} recomputed / {} cold time points, \
             {} shard{})",
            self.users,
            self.replayed_time_points,
            self.recomputed_time_points,
            self.cold_time_points,
            self.shards.len(),
            if self.shards.len() == 1 { "" } else { "s" },
        )
    }
}

/// A serving response: sessions **in request order** plus the aggregate
/// report.
#[derive(Debug)]
pub struct ServeResponse<'a> {
    /// One entry per requested user, in request order.
    pub users: Vec<ServedUser<'a>>,
    /// Aggregate provenance.
    pub report: ServeReport,
}

impl<'a> ServeResponse<'a> {
    /// The session served for `user_id`, if present.
    pub fn session_for(&self, user_id: &str) -> Option<&UserSession<'a>> {
        self.users.iter().find(|u| u.user_id == user_id).map(|u| &u.session)
    }
}

/// Everything that can go wrong serving a [`ServeRequest`] — the typed
/// replacement for the ad-hoc per-method errors of the legacy entry
/// points.
#[derive(Debug)]
pub enum ServeError {
    /// A batch variant addressed zero users.
    EmptyBatch,
    /// The same user id appeared twice in one request (snapshot-store
    /// writes would be order-dependent).
    DuplicateUser(String),
    /// A [`ServeRequest::Refresh`] id has no stored snapshot.
    UnknownUser(String),
    /// A per-user serving failure (dimension mismatch, unknown feature
    /// in preferences, database population), tagged with the user.
    Session {
        /// The failing user.
        user_id: String,
        /// The underlying session error.
        error: SessionError,
    },
    /// The snapshot store failed (I/O-level failure, corrupt rows, or a
    /// snapshot recorded under a different feature schema). When the
    /// failure happened while loading or saving a specific user's
    /// snapshot, `user_id` names that user — so a store dying *mid-batch*
    /// is attributed to the first request entry it failed on, exactly
    /// like a per-user [`ServeError::Session`] failure.
    Store {
        /// The user whose load/save failed, when attributable.
        user_id: Option<String>,
        /// The underlying store error.
        error: StoreError,
    },
    /// The serving tier's admission queue was full: the request was shed
    /// instead of queued. Load shedding is typed and immediate — an
    /// overloaded server answers `Overloaded`, it never hangs the caller.
    Overloaded {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// A shard worker process failed mid-request (crashed, was killed, or
    /// its pipe closed). The supervisor marks the shard dead and respawns
    /// it on next use; the in-flight request fails with this error,
    /// attributed to the earliest affected user in request order.
    Shard {
        /// Index of the failed shard.
        shard: usize,
        /// The earliest affected user, in request order.
        user_id: String,
        /// What the supervisor observed (broken pipe, early EOF, ...).
        detail: String,
    },
    /// The transport layer failed: connection I/O errors, malformed,
    /// truncated or oversized frames. Protocol failures are typed, never
    /// panics — a desynchronized connection is closed after reporting.
    Transport(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::EmptyBatch => write!(f, "request addresses no users"),
            ServeError::DuplicateUser(id) => {
                write!(f, "user {id:?} appears more than once in the request")
            }
            ServeError::UnknownUser(id) => {
                write!(f, "no stored snapshot for user {id:?}")
            }
            ServeError::Session { user_id, error } => {
                write!(f, "serving user {user_id:?} failed: {error}")
            }
            ServeError::Store { user_id: Some(id), error } => {
                write!(f, "snapshot store failure for user {id:?}: {error}")
            }
            ServeError::Store { user_id: None, error } => {
                write!(f, "snapshot store failure: {error}")
            }
            ServeError::Overloaded { capacity } => {
                write!(f, "admission queue full ({capacity} pending): request shed")
            }
            ServeError::Shard { shard, user_id, detail } => {
                write!(f, "shard {shard} failed serving user {user_id:?}: {detail}")
            }
            ServeError::Transport(detail) => {
                write!(f, "transport failure: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Session { error, .. } => Some(error),
            ServeError::Store { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<StoreError> for ServeError {
    fn from(error: StoreError) -> Self {
        ServeError::Store { user_id: None, error }
    }
}
