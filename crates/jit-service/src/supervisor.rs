//! The OS-process shard backend and its supervisor.
//!
//! [`ProcessShardBackend`] is the out-of-process twin of
//! [`crate::ShardedService`]: it launches one `jit-shardd` worker
//! *process* per shard, speaks the [`crate::wire`] protocol over the
//! workers' stdin/stdout pipes, routes users by the same jump hash
//! ([`crate::sharded::shard_index`]), and reassembles responses in
//! request order — bit-identical to the in-process dispatcher and to a
//! single unsharded [`crate::JitService`] (locked by
//! `tests/determinism.rs`).
//!
//! ## Shard processes are stateless
//!
//! A shard worker trains its system from the wire-carried [`TrainSpec`]
//! (training is bit-deterministic, so every worker — and every
//! *restarted* worker — reaches the same system) and then serves pure
//! compute: requests in, owned responses out. The authoritative
//! [`crate::SnapshotStore`]s live **in the supervisor**, one per shard:
//! the supervisor resolves [`ServeRequest::Refresh`] by loading
//! snapshots itself and sending them inline, and persists returned
//! snapshots after each successful cohort. A `kill -9`'d shard therefore
//! loses nothing — the store survives in the parent, the replacement
//! process retrains the identical system, and the next `Refresh` replays
//! bit-for-bit.
//!
//! The cross-user cell cache ([`jit_core::SharedCellCache`]) is part of
//! that stateless compute: each worker's [`crate::JitService`] owns its
//! cache inside the worker process, so a respawn starts the replacement
//! cold. That is a warmth loss only — cached cells are memoized
//! recomputation, never inputs — so restarted shards stay bit-identical,
//! just briefly slower until the cache re-fills.
//!
//! ## Supervision contract
//!
//! Failure detection is **on use**: a broken pipe or early EOF while
//! talking to a shard marks it dead, kills and reaps the child, and
//! fails the in-flight request with [`ServeError::Shard`] naming the
//! earliest affected user — all-or-nothing, exactly like any other
//! per-user serving failure. Respawn is lazy and synchronous: the next
//! request to touch the shard (or an explicit
//! [`ProcessShardBackend::ensure_healthy`]) spawns a replacement,
//! re-runs the `Hello`/`Ready` handshake and verifies the schema digest
//! before any traffic. No background threads, no timers — supervision is
//! deterministic and testable by polling [`ProcessShardBackend::health`]
//! with a deadline.

// Decode/serve path: panics are denied outright here (tests and the
// few fn-level reasoned allows excepted) — hostile bytes and worker
// failures must surface as typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::api::{ReturningMember, ServeError, ServeRequest};
use crate::net::ServeBackend;
use crate::service::check_user_ids;
use crate::sharded::{error_position, shard_index};
use crate::store::SnapshotStore;
use crate::wire::{self, Message, WireReport, WireResponse, MAX_FRAME_LEN};
use jit_core::{AdminConfig, JustInTime, ReturningUser, TrainError};
use jit_data::{FeatureSchema, LendingClubGenerator, LendingClubParams};
use jit_ml::Dataset;
use parking_lot::Mutex;
use std::fmt;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The synthetic-data half of a [`TrainSpec`]: which Lending-Club
/// history every shard regenerates before training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataSpec {
    /// Applications generated per year.
    pub records_per_year: usize,
    /// Number of yearly slices (taken from the start of the generator's
    /// year range).
    pub n_years: usize,
    /// Generator seed; the default matches
    /// [`LendingClubParams::default`].
    pub seed: u64,
}

impl Default for DataSpec {
    fn default() -> Self {
        DataSpec {
            records_per_year: 120,
            n_years: 4,
            seed: LendingClubParams::default().seed,
        }
    }
}

impl DataSpec {
    /// Regenerates the schema and training slices this spec describes —
    /// bit-identical in every process, which is what lets shard workers
    /// train independently yet identically.
    pub fn slices(&self) -> (FeatureSchema, Vec<Dataset>) {
        let gen = LendingClubGenerator::new(LendingClubParams {
            records_per_year: self.records_per_year.max(1),
            seed: self.seed,
            ..Default::default()
        });
        let schema = gen.schema().clone();
        let slices = gen
            .years()
            .into_iter()
            .take(self.n_years)
            .map(|y| LendingClubGenerator::to_dataset(&gen.records_for_year(y)))
            .collect();
        (schema, slices)
    }
}

/// Everything a shard worker needs to train the serving system from
/// scratch: the data recipe plus the full [`AdminConfig`]. Travels in
/// the wire handshake ([`Message::Hello`]); because training is
/// bit-deterministic, every worker holding the same spec serves
/// identically.
#[derive(Clone, Debug)]
pub struct TrainSpec {
    /// The training-data recipe.
    pub data: DataSpec,
    /// The full admin configuration.
    pub config: AdminConfig,
}

impl TrainSpec {
    /// The schema this spec trains under (no training required).
    pub fn schema(&self) -> FeatureSchema {
        LendingClubGenerator::new(LendingClubParams {
            records_per_year: self.data.records_per_year.max(1),
            seed: self.data.seed,
            ..Default::default()
        })
        .schema()
        .clone()
    }

    /// Trains the system the spec describes.
    ///
    /// # Errors
    /// The typed [`TrainError`] from [`JustInTime::train`].
    pub fn train(&self) -> Result<JustInTime, TrainError> {
        let (schema, slices) = self.data.slices();
        JustInTime::train(self.config.clone(), &schema, &slices)
    }
}

/// Locates the `jit-shardd` worker binary next to the current
/// executable (how examples and sibling bins find it): the `JIT_SHARDD`
/// environment variable wins, then `<exe dir>/jit-shardd`, then
/// `<exe dir>/../jit-shardd` (examples live one directory below the
/// bins).
pub fn locate_shardd() -> Option<PathBuf> {
    if let Some(path) = std::env::var_os("JIT_SHARDD") {
        return Some(PathBuf::from(path));
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let name = format!("jit-shardd{}", std::env::consts::EXE_SUFFIX);
    [dir.join(&name), dir.parent()?.join(&name)]
        .into_iter()
        .find(|candidate| candidate.is_file())
}

/// Configuration of the OS-process shard backend.
#[derive(Clone, Debug)]
pub struct ProcessShardConfig {
    /// Path to the `jit-shardd` worker binary (see [`locate_shardd`]).
    pub shardd: PathBuf,
    /// Number of shard worker processes.
    pub n_shards: usize,
    /// Frame cap for the worker pipes.
    pub max_frame_len: usize,
}

impl ProcessShardConfig {
    /// A config with the default frame cap.
    pub fn new(shardd: impl Into<PathBuf>, n_shards: usize) -> Self {
        ProcessShardConfig {
            shardd: shardd.into(),
            n_shards,
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

/// A live worker process with its pipe endpoints.
struct LiveShard {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

/// Supervisor-side state of one shard slot.
#[derive(Default)]
struct ShardSlot {
    live: Option<LiveShard>,
    /// Times a worker has been spawned into this slot.
    spawned: usize,
}

/// Health of one shard slot, as the supervisor sees it (a killed worker
/// still reads as alive until its next use — detection is on use).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// `true` when a worker process is attached to the slot.
    pub alive: bool,
    /// The attached worker's pid.
    pub pid: Option<u32>,
    /// Times the slot has been respawned after its first worker.
    pub restarts: usize,
}

/// The OS-process shard backend (see the module docs).
pub struct ProcessShardBackend {
    spec: TrainSpec,
    schema: FeatureSchema,
    config: ProcessShardConfig,
    stores: Vec<Arc<dyn SnapshotStore>>,
    shards: Vec<Mutex<ShardSlot>>,
    next_id: AtomicU64,
}

impl fmt::Debug for ProcessShardBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessShardBackend")
            .field("shards", &self.shards.len())
            .field("shardd", &self.config.shardd)
            .finish_non_exhaustive()
    }
}

impl ProcessShardBackend {
    /// Spawns `config.n_shards` worker processes, hands each the spec to
    /// train, and verifies every handshake before returning. Per-shard
    /// snapshot stores come from `store_for(shard)` and stay in the
    /// supervisor.
    ///
    /// # Errors
    /// [`ServeError::Transport`] when a worker cannot be spawned or its
    /// handshake fails (bad binary path, schema digest mismatch).
    ///
    /// # Panics
    /// Panics when `config.n_shards == 0`.
    pub fn spawn(
        spec: TrainSpec,
        config: ProcessShardConfig,
        mut store_for: impl FnMut(usize) -> Arc<dyn SnapshotStore>,
    ) -> Result<Self, ServeError> {
        // jit-analyze: allow(no-panic-paths) — documented `# Panics` contract: misconfiguration at spawn time, not serve-path input
        assert!(config.n_shards >= 1, "a shard backend needs at least one shard");
        let schema = spec.schema();
        let stores = (0..config.n_shards).map(&mut store_for).collect();
        let shards =
            (0..config.n_shards).map(|_| Mutex::new(ShardSlot::default())).collect();
        let backend = ProcessShardBackend {
            spec,
            schema,
            config,
            stores,
            shards,
            next_id: AtomicU64::new(1),
        };
        backend.ensure_healthy()?;
        Ok(backend)
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `user_id` is (always) routed to — same placement as
    /// [`crate::ShardedService::shard_of`].
    pub fn shard_of(&self, user_id: &str) -> usize {
        shard_index(user_id, self.shards.len())
    }

    /// The supervisor-held per-shard snapshot stores, in shard order.
    pub fn stores(&self) -> &[Arc<dyn SnapshotStore>] {
        &self.stores
    }

    /// The spec every worker trains from.
    pub fn spec(&self) -> &TrainSpec {
        &self.spec
    }

    /// Supervisor-side health of every shard slot.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, slot)| {
                let slot = slot.lock();
                ShardHealth {
                    shard,
                    alive: slot.live.is_some(),
                    pid: slot.live.as_ref().map(|l| l.child.id()),
                    restarts: slot.spawned.saturating_sub(1),
                }
            })
            .collect()
    }

    /// Respawns every dead shard (concurrently) and re-verifies its
    /// handshake. Idempotent; serving also respawns lazily on use, this
    /// just fronts the cost.
    ///
    /// # Errors
    /// [`ServeError::Transport`] naming the first shard that failed to
    /// come up.
    pub fn ensure_healthy(&self) -> Result<(), ServeError> {
        let results = jit_runtime::blocking_map(self.shards.len(), |shard| {
            let mut slot = self.shards[shard].lock();
            self.ensure_live(&mut slot)
        });
        for (shard, result) in results.into_iter().enumerate() {
            result.map_err(|detail| {
                ServeError::Transport(format!(
                    "shard {shard} failed to start: {detail}"
                ))
            })?;
        }
        Ok(())
    }

    /// Kills shard `shard`'s worker process with SIGKILL **without
    /// telling the supervisor** — the fault-injection entry point. The
    /// slot still reads alive; the next request routed there discovers
    /// the corpse, fails typed, and triggers the supervised respawn.
    /// Returns the killed worker's pid, or `None` when the slot had no
    /// live worker.
    pub fn kill_shard(&self, shard: usize) -> Option<u32> {
        let mut slot = self.shards[shard].lock();
        let live = slot.live.as_mut()?;
        let pid = live.child.id();
        // Kill and reap; the pipes stay in the slot so the supervisor
        // only learns of the death when it next uses them.
        let _ = live.child.kill();
        let _ = live.child.wait();
        Some(pid)
    }

    /// Sends every live worker an orderly [`Message::Shutdown`] and
    /// reaps it. [`Drop`] does the same (with a kill as backstop), so
    /// calling this is optional.
    pub fn shutdown(&self) {
        for slot in &self.shards {
            let mut slot = slot.lock();
            if let Some(mut live) = slot.live.take() {
                let _ = wire::write_frame(
                    &mut live.stdin,
                    &wire::encode_message(&Message::Shutdown),
                    self.config.max_frame_len,
                );
                // Closing stdin unblocks a worker waiting on a frame.
                drop(live.stdin);
                let _ = live.child.wait();
            }
        }
    }

    /// Serves one request across the shard processes — same contract and
    /// same bytes as [`crate::ShardedService::serve`].
    ///
    /// # Errors
    /// The typed [`ServeError`]; a dead worker yields
    /// [`ServeError::Shard`] attributed to the earliest affected user,
    /// and with several failing shards the error of the user earliest in
    /// request order wins.
    #[allow(clippy::expect_used)] // see jit-analyze annotation at the call site
    pub fn serve(&self, request: ServeRequest) -> Result<WireResponse, ServeError> {
        check_user_ids(&request)?;
        let n = self.shards.len();
        let all_ids: Vec<String> =
            request.user_ids().into_iter().map(str::to_string).collect();

        // Refresh is resolved here, against the supervisor's stores:
        // shard workers are stateless, so snapshots travel inline.
        let request = match request {
            ServeRequest::Refresh(ids) => {
                let members = ids
                    .into_iter()
                    .map(|user_id| {
                        let shard = shard_index(&user_id, n);
                        let prior = self.stores[shard]
                            .load(&user_id)
                            .map_err(|error| ServeError::Store {
                                user_id: Some(user_id.clone()),
                                error,
                            })?
                            .ok_or_else(|| ServeError::UnknownUser(user_id.clone()))?;
                        Ok(ReturningMember {
                            user_id,
                            returning: ReturningUser::unchanged(prior),
                        })
                    })
                    .collect::<Result<Vec<_>, ServeError>>()?;
                ServeRequest::Returning(members)
            }
            other => other,
        };

        // Split into per-shard sub-requests, remembering original
        // positions (same shapes as the in-process dispatcher).
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); n];
        let sub_requests: Vec<Option<ServeRequest>> = match request {
            ServeRequest::NewUser(member) => {
                let shard = shard_index(&member.user_id, n);
                positions[shard].push(0);
                let mut subs: Vec<Option<ServeRequest>> =
                    (0..n).map(|_| None).collect();
                subs[shard] = Some(ServeRequest::NewUser(member));
                subs
            }
            ServeRequest::Batch(members) => {
                split(members, &mut positions, n, |m| &m.user_id)
                    .into_iter()
                    .map(|ms| (!ms.is_empty()).then_some(ServeRequest::Batch(ms)))
                    .collect()
            }
            ServeRequest::Returning(members) => {
                split(members, &mut positions, n, |m| &m.user_id)
                    .into_iter()
                    .map(|ms| (!ms.is_empty()).then_some(ServeRequest::Returning(ms)))
                    .collect()
            }
            // jit-analyze: allow(no-panic-paths) — Refresh returns earlier in this fn; this arm is unreachable by construction
            ServeRequest::Refresh(_) => unreachable!("refresh resolved above"),
        };

        // One dedicated thread per active shard: these block on pipe
        // I/O, which is exactly what blocking_map is for.
        let active: Vec<(usize, Mutex<Option<ServeRequest>>)> = sub_requests
            .into_iter()
            .enumerate()
            .filter_map(|(s, r)| r.map(|r| (s, Mutex::new(Some(r)))))
            .collect();
        let results: Vec<Result<WireResponse, ServeError>> =
            jit_runtime::blocking_map(active.len(), |i| {
                let (shard, sub) = &active[i];
                // jit-analyze: allow(no-panic-paths) — blocking_map calls each index exactly once, so the slot is provably Some
                let sub = sub.lock().take().expect("each sub-request runs once");
                let first_user = all_ids[positions[*shard][0]].clone();
                self.call_shard(*shard, sub, first_user)
            });

        // Deterministic error choice: earliest failing user in request
        // order, exactly like the in-process dispatcher.
        let mut first_error: Option<(usize, ServeError)> = None;
        let mut responses: Vec<(usize, WireResponse)> = Vec::new();
        for ((shard, _), result) in active.iter().zip(results) {
            match result {
                Ok(response) => responses.push((*shard, response)),
                Err(error) => {
                    let position = error_position(&error, &all_ids, &positions[*shard]);
                    if first_error.as_ref().is_none_or(|(p, _)| position < *p) {
                        first_error = Some((position, error));
                    }
                }
            }
        }
        if let Some((_, error)) = first_error {
            return Err(error);
        }

        // Reassemble in request order and merge the totals.
        let total: usize = positions.iter().map(Vec::len).sum();
        let mut slots: Vec<Option<wire::WireServedUser>> =
            (0..total).map(|_| None).collect();
        let mut report = WireReport::default();
        for (shard, response) in responses {
            report.users += response.report.users;
            report.replayed_time_points += response.report.replayed_time_points;
            report.recomputed_time_points += response.report.recomputed_time_points;
            report.cold_time_points += response.report.cold_time_points;
            for (user, position) in response.users.into_iter().zip(&positions[shard]) {
                slots[*position] = Some(user);
            }
        }
        // A shard worker is another process: a reply carrying fewer
        // users than it was sent is a protocol violation to report, not
        // an invariant to assert.
        let mut users: Vec<wire::WireServedUser> = Vec::with_capacity(total);
        for (position, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(user) => users.push(user),
                None => {
                    return Err(ServeError::Transport(format!(
                        "shard worker dropped request position {position}"
                    )))
                }
            }
        }

        // Persist snapshots into the supervisor's stores in request
        // order — the same order (and the same mid-batch attribution)
        // an unsharded service uses.
        for user in &users {
            let shard = shard_index(&user.user_id, n);
            self.stores[shard].save(&user.user_id, &user.snapshot).map_err(
                |error| ServeError::Store {
                    user_id: Some(user.user_id.clone()),
                    error,
                },
            )?;
        }
        Ok(WireResponse { users, report })
    }

    /// One shard RPC under the slot lock: ensure a live worker, send the
    /// sub-request, read the reply. Any transport failure kills and
    /// detaches the worker and comes back as [`ServeError::Shard`].
    fn call_shard(
        &self,
        shard: usize,
        sub: ServeRequest,
        first_user: String,
    ) -> Result<WireResponse, ServeError> {
        let mut slot = self.shards[shard].lock();
        self.ensure_live(&mut slot).map_err(|detail| ServeError::Shard {
            shard,
            user_id: first_user.clone(),
            detail,
        })?;
        let Some(live) = slot.live.as_mut() else {
            return Err(ServeError::Shard {
                shard,
                user_id: first_user,
                detail: "ensure_live returned without a worker".to_string(),
            });
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        match self.rpc(live, id, &sub) {
            Ok(reply) => reply,
            Err(detail) => {
                // The worker is gone or desynchronized: kill, reap,
                // detach. The next request respawns it.
                if let Some(mut live) = slot.live.take() {
                    let _ = live.child.kill();
                    let _ = live.child.wait();
                }
                Err(ServeError::Shard { shard, user_id: first_user, detail })
            }
        }
    }

    /// The raw request/reply exchange. The outer error is a transport
    /// failure (worker must be replaced); the inner result is the typed
    /// serving outcome from a healthy worker.
    fn rpc(
        &self,
        live: &mut LiveShard,
        id: u64,
        sub: &ServeRequest,
    ) -> Result<Result<WireResponse, ServeError>, String> {
        let body = wire::encode_message(&Message::Serve { id, request: sub.clone() });
        wire::write_frame(&mut live.stdin, &body, self.config.max_frame_len)
            .map_err(|e| format!("request write failed: {e}"))?;
        let reply = wire::read_frame(&mut live.stdout, self.config.max_frame_len)
            .map_err(|e| format!("reply read failed: {e}"))?;
        match wire::decode_message(&reply, Some(&self.schema))
            .map_err(|e| format!("reply decode failed: {e}"))?
        {
            Message::Served { id: reply_id, response } if reply_id == id => {
                Ok(Ok(response))
            }
            Message::Failed { id: reply_id, error } if reply_id == id => Ok(Err(error)),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    /// Spawns and handshakes a worker into `slot` when none is attached.
    fn ensure_live(&self, slot: &mut ShardSlot) -> Result<(), String> {
        if slot.live.is_some() {
            return Ok(());
        }
        let mut child = Command::new(&self.config.shardd)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {:?} failed: {e}", self.config.shardd))?;
        let Some(mut stdin) = child.stdin.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err("worker stdin was not piped".to_string());
        };
        let Some(stdout) = child.stdout.take() else {
            let _ = child.kill();
            let _ = child.wait();
            return Err("worker stdout was not piped".to_string());
        };
        let mut stdout = BufReader::new(stdout);
        let handshake = (|| -> Result<(), String> {
            let hello = wire::encode_message(&Message::Hello(self.spec.clone()));
            wire::write_frame(&mut stdin, &hello, self.config.max_frame_len)
                .map_err(|e| format!("hello write failed: {e}"))?;
            let reply = wire::read_frame(&mut stdout, self.config.max_frame_len)
                .map_err(|e| format!("ready read failed: {e}"))?;
            match wire::decode_message(&reply, None)
                .map_err(|e| format!("ready decode failed: {e}"))?
            {
                Message::Ready { schema_digest } => {
                    let expected = self.schema.content_digest();
                    if schema_digest == expected {
                        Ok(())
                    } else {
                        Err(format!(
                            "schema digest mismatch: worker {schema_digest}, \
                             supervisor {expected}"
                        ))
                    }
                }
                other => Err(format!("unexpected handshake reply {other:?}")),
            }
        })();
        match handshake {
            Ok(()) => {
                slot.live = Some(LiveShard { child, stdin, stdout });
                slot.spawned += 1;
                Ok(())
            }
            Err(detail) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(detail)
            }
        }
    }
}

impl Drop for ProcessShardBackend {
    /// No orphaned workers: children are killed and reaped when the
    /// backend goes away (use [`ProcessShardBackend::shutdown`] first
    /// for an orderly exit).
    fn drop(&mut self) {
        for slot in &self.shards {
            if let Some(mut live) = slot.lock().live.take() {
                let _ = live.child.kill();
                let _ = live.child.wait();
            }
        }
    }
}

impl ServeBackend for ProcessShardBackend {
    fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    fn serve_wire(&self, request: ServeRequest) -> Result<WireResponse, ServeError> {
        self.serve(request)
    }
}

/// Partitions `members` into per-shard vectors, recording original
/// positions (the `ShardedService::split` shape, shared here).
fn split<M>(
    members: Vec<M>,
    positions: &mut [Vec<usize>],
    n_shards: usize,
    id_of: impl Fn(&M) -> &str,
) -> Vec<Vec<M>> {
    let mut out: Vec<Vec<M>> = (0..n_shards).map(|_| Vec::new()).collect();
    for (position, member) in members.into_iter().enumerate() {
        let shard = shard_index(id_of(&member), n_shards);
        positions[shard].push(position);
        out[shard].push(member);
    }
    out
}
