//! The TCP serving front end.
//!
//! [`NetServer`] accepts connections on a loopback (or any) TCP address
//! and speaks the [`crate::wire`] protocol: one length-prefixed frame
//! per message, requests correlated to replies by id. It fronts any
//! [`ServeBackend`] — a single [`crate::JitService`], the in-process
//! [`crate::ShardedService`], or the OS-process
//! [`crate::ProcessShardBackend`] — so the network tier adds transport
//! and admission control without touching serving semantics: responses
//! through the wire are **bit-identical** to in-process serving (locked
//! by `tests/determinism.rs`).
//!
//! ## Admission control
//!
//! Between the connection readers and the serving workers sits a
//! **bounded queue**. A request that arrives while the queue is full is
//! **shed immediately**: the client gets a typed
//! [`ServeError::Overloaded`] reply frame, never a hang and never an
//! unbounded backlog. Shedding happens on the connection thread (no
//! queue slot is consumed), so an overloaded server stays responsive to
//! every connected client.
//!
//! ## Failure semantics
//!
//! Protocol failures are typed, never panics: a malformed, truncated or
//! oversized frame gets a best-effort [`Message::Failed`] reply carrying
//! [`ServeError::Transport`], then the connection is closed (a
//! desynchronized peer cannot be re-synchronized safely). A dropped
//! connection simply ends its reader thread; jobs already admitted still
//! run, and their replies fail silently into the closed socket —
//! serving state (the backend's snapshot stores) is owned behind the
//! backend and unaffected.
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] (also run on drop) is orderly and
//! deadlock-free: the queue closes (new requests shed), workers drain
//! every admitted job, then connections and the acceptor are woken and
//! joined. No sleeps anywhere — tests poll [`NetServer::stats`] with a
//! deadline.

// Decode/serve path: panics are denied outright here (tests and the
// few fn-level reasoned allows excepted) — hostile bytes and worker
// failures must surface as typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::api::{ServeError, ServeRequest};
use crate::service::JitService;
use crate::sharded::ShardedService;
use crate::wire::{self, Message, WireError, WireResponse, MAX_FRAME_LEN};
use jit_data::FeatureSchema;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// What the network tier serves: a schema (to decode request frames)
/// plus owned-value serving. Implemented by [`JitService`],
/// [`ShardedService`] and [`crate::ProcessShardBackend`].
pub trait ServeBackend: Send + Sync {
    /// The feature schema requests are decoded against.
    fn schema(&self) -> &FeatureSchema;

    /// Serves one request, returning the owned wire-level response
    /// (shard-count-invariant bytes — see [`crate::wire`]).
    ///
    /// # Errors
    /// The typed [`ServeError`].
    fn serve_wire(&self, request: ServeRequest) -> Result<WireResponse, ServeError>;
}

impl ServeBackend for JitService {
    fn schema(&self) -> &FeatureSchema {
        self.system().schema()
    }

    fn serve_wire(&self, request: ServeRequest) -> Result<WireResponse, ServeError> {
        self.serve(request).map(|r| WireResponse::from_response(&r))
    }
}

impl ServeBackend for ShardedService {
    fn schema(&self) -> &FeatureSchema {
        self.system().schema()
    }

    fn serve_wire(&self, request: ServeRequest) -> Result<WireResponse, ServeError> {
        self.serve(request).map(|r| WireResponse::from_response(&r))
    }
}

/// Configuration of the TCP front end.
#[derive(Clone, Copy, Debug)]
pub struct NetServerConfig {
    /// Serving worker threads draining the admission queue.
    pub workers: usize,
    /// Admission-queue capacity; requests beyond it are shed with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Frame cap for reads and writes.
    pub max_frame_len: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig { workers: 2, queue_capacity: 64, max_frame_len: MAX_FRAME_LEN }
    }
}

/// A point-in-time snapshot of server counters (tests poll this with a
/// deadline instead of sleeping).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted so far.
    pub connections: u64,
    /// Requests served to completion (ok or typed serving error).
    pub served: u64,
    /// Requests shed with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Requests currently waiting in the admission queue.
    pub queued: usize,
    /// Requests currently executing on a worker.
    pub in_flight: usize,
}

/// One admitted request: reply frames go back through the originating
/// connection's shared write half.
struct Job {
    id: u64,
    request: ServeRequest,
    reply: Arc<Mutex<TcpStream>>,
}

/// Queue state under the mutex: jobs plus the open flag (closed on
/// shutdown so workers can drain and exit).
struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Shared {
    backend: Arc<dyn ServeBackend>,
    config: NetServerConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    shutdown: AtomicBool,
    connections: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    in_flight: AtomicUsize,
    /// Write halves of live connections, so shutdown can unblock their
    /// reader threads.
    streams: Mutex<Vec<Arc<Mutex<TcpStream>>>>,
}

// The std mutexes here guard plain data; a poisoned lock (a panicking
// worker) must not wedge shutdown, so recover the inner state.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Shared {
    /// Admits a job or sheds it; `Err(capacity)` means the queue was
    /// full (or closing) and nothing was enqueued.
    fn try_push(&self, job: Job) -> Result<(), usize> {
        let mut queue = lock(&self.queue);
        if !queue.open || queue.jobs.len() >= self.config.queue_capacity {
            return Err(self.config.queue_capacity);
        }
        queue.jobs.push_back(job);
        drop(queue);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` when the queue is closed *and*
    /// drained (workers finish every admitted job before exiting).
    fn pop(&self) -> Option<Job> {
        let mut queue = lock(&self.queue);
        loop {
            if let Some(job) = queue.jobs.pop_front() {
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                return Some(job);
            }
            if !queue.open {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Best-effort reply frame (the peer may already be gone).
    fn send(&self, reply: &Mutex<TcpStream>, message: &Message) {
        let body = wire::encode_message(message);
        let mut stream = lock(reply);
        let _ = wire::write_frame(&mut *stream, &body, self.config.max_frame_len);
    }
}

/// The TCP front end (see the module docs).
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port), spawns the acceptor and `config.workers` serving workers,
    /// and starts serving `backend`.
    ///
    /// # Errors
    /// The bind error, verbatim.
    pub fn bind(
        backend: Arc<dyn ServeBackend>,
        addr: &str,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            backend,
            config,
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), open: true }),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            streams: Mutex::new(Vec::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(NetServer { addr, shared, acceptor: Some(acceptor), workers })
    }

    /// The bound address (the actual port for `"…:0"` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.shared.connections.load(Ordering::SeqCst),
            served: self.shared.served.load(Ordering::SeqCst),
            shed: self.shared.shed.load(Ordering::SeqCst),
            queued: lock(&self.shared.queue).jobs.len(),
            in_flight: self.shared.in_flight.load(Ordering::SeqCst),
        }
    }

    /// Orderly shutdown: close the queue, drain the workers, then wake
    /// and join the acceptor and every connection. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // 1. No new admissions; workers drain what was admitted.
        lock(&self.shared.queue).open = false;
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // 2. Unblock connection readers and the acceptor.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for stream in lock(&self.shared.streams).drain(..) {
            let _ = lock(&stream).shutdown(std::net::Shutdown::Both);
        }
        let _ = TcpStream::connect(self.addr); // wake `accept`
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Ok(write_half) = stream.try_clone() else { continue };
        shared.connections.fetch_add(1, Ordering::SeqCst);
        let reply = Arc::new(Mutex::new(write_half));
        lock(&shared.streams).push(Arc::clone(&reply));
        let shared = Arc::clone(shared);
        conns.push(std::thread::spawn(move || connection_loop(stream, reply, &shared)));
    }
    for conn in conns {
        let _ = conn.join();
    }
}

/// Reads frames off one connection, answering pings inline, admitting
/// serve requests, and shedding what the queue rejects.
fn connection_loop(stream: TcpStream, reply: Arc<Mutex<TcpStream>>, shared: &Shared) {
    let max = shared.config.max_frame_len;
    let mut reader = BufReader::new(stream);
    loop {
        let body = match wire::read_frame(&mut reader, max) {
            Ok(body) => body,
            Err(WireError::Closed) => return,
            Err(error) => {
                // Malformed length prefix, oversized frame, torn read:
                // reply typed, then drop the (desynchronized) peer.
                shared.send(
                    &reply,
                    &Message::Failed {
                        id: 0,
                        error: ServeError::Transport(error.to_string()),
                    },
                );
                let _ = lock(&reply).shutdown(std::net::Shutdown::Both);
                return;
            }
        };
        match wire::decode_message(&body, Some(shared.backend.schema())) {
            Ok(Message::Serve { id, request }) => {
                if let Err(capacity) =
                    shared.try_push(Job { id, request, reply: Arc::clone(&reply) })
                {
                    shared.shed.fetch_add(1, Ordering::SeqCst);
                    shared.send(
                        &reply,
                        &Message::Failed {
                            id,
                            error: ServeError::Overloaded { capacity },
                        },
                    );
                }
            }
            Ok(Message::Ping { id }) => shared.send(&reply, &Message::Pong { id }),
            Ok(Message::Shutdown) => return,
            Ok(other) => {
                shared.send(
                    &reply,
                    &Message::Failed {
                        id: 0,
                        error: ServeError::Transport(format!(
                            "unexpected client message {other:?}"
                        )),
                    },
                );
                let _ = lock(&reply).shutdown(std::net::Shutdown::Both);
                return;
            }
            Err(error) => {
                shared.send(
                    &reply,
                    &Message::Failed {
                        id: 0,
                        error: ServeError::Transport(error.to_string()),
                    },
                );
                let _ = lock(&reply).shutdown(std::net::Shutdown::Both);
                return;
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.pop() {
        let reply = match shared.backend.serve_wire(job.request) {
            Ok(response) => Message::Served { id: job.id, response },
            Err(error) => Message::Failed { id: job.id, error },
        };
        shared.send(&job.reply, &reply);
        shared.served.fetch_add(1, Ordering::SeqCst);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Bounded retry policy for [`NetClient::connect_with_retry`]: how many
/// connection attempts to make and how the pause between them grows.
///
/// Only `ECONNREFUSED` is retried — it is the one failure that a server
/// still binding its listener produces, and the one that waiting can
/// cure. Every other error (unreachable host, reset, bad address)
/// surfaces immediately.
#[derive(Clone, Copy, Debug)]
pub struct ConnectRetry {
    /// Total connection attempts (≥ 1; the first attempt counts).
    pub attempts: u32,
    /// Pause before the second attempt; doubles each retry.
    pub initial_backoff: std::time::Duration,
    /// Cap on the doubling backoff.
    pub max_backoff: std::time::Duration,
}

impl Default for ConnectRetry {
    fn default() -> Self {
        ConnectRetry {
            attempts: 8,
            initial_backoff: std::time::Duration::from_millis(5),
            max_backoff: std::time::Duration::from_millis(250),
        }
    }
}

impl ConnectRetry {
    /// A single attempt: [`NetClient::connect`]'s behavior.
    pub fn none() -> Self {
        ConnectRetry { attempts: 1, ..ConnectRetry::default() }
    }
}

/// A blocking client for the TCP front end: one request in flight at a
/// time, replies correlated by id. Concurrency comes from opening more
/// clients (each is its own connection).
pub struct NetClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    schema: FeatureSchema,
    max_frame_len: usize,
    next_id: u64,
}

impl NetClient {
    /// Connects to `addr`; `schema` must match the server's (responses
    /// are decoded against it — the process backend's handshake digest
    /// check guards the cross-process variant of this invariant).
    ///
    /// # Errors
    /// [`ServeError::Transport`] on connect failure.
    pub fn connect(
        addr: impl std::net::ToSocketAddrs,
        schema: FeatureSchema,
    ) -> Result<NetClient, ServeError> {
        NetClient::connect_with_retry(addr, schema, ConnectRetry::none())
    }

    /// Connects like [`NetClient::connect`], but rides out a server that
    /// has not finished binding yet: `ECONNREFUSED` is retried up to
    /// `retry.attempts` times with doubling backoff.
    ///
    /// # Errors
    /// [`ServeError::Transport`] when the final attempt fails or the
    /// failure is not a refused connection.
    pub fn connect_with_retry(
        addr: impl std::net::ToSocketAddrs,
        schema: FeatureSchema,
        retry: ConnectRetry,
    ) -> Result<NetClient, ServeError> {
        let attempts = retry.attempts.max(1);
        let mut backoff = retry.initial_backoff;
        let mut attempt = 0;
        let writer = loop {
            match TcpStream::connect(&addr) {
                Ok(stream) => break stream,
                Err(e)
                    if e.kind() == std::io::ErrorKind::ConnectionRefused
                        && attempt + 1 < attempts =>
                {
                    // jit-analyze: allow(no-wall-clock) — client connect backoff; pacing only, never feeds output
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(retry.max_backoff);
                    attempt += 1;
                }
                Err(e) => {
                    return Err(ServeError::Transport(format!(
                        "connect failed after {} attempt(s): {e}",
                        attempt + 1
                    )))
                }
            }
        };
        let reader = writer
            .try_clone()
            .map_err(|e| ServeError::Transport(format!("clone failed: {e}")))?;
        Ok(NetClient {
            writer,
            reader: BufReader::new(reader),
            schema,
            max_frame_len: MAX_FRAME_LEN,
            next_id: 1,
        })
    }

    /// Overrides the frame cap (tests exercise small caps).
    pub fn set_max_frame_len(&mut self, max: usize) {
        self.max_frame_len = max;
    }

    /// Serves one request over the connection.
    ///
    /// # Errors
    /// The server's typed [`ServeError`] (shed requests come back as
    /// [`ServeError::Overloaded`]), or [`ServeError::Transport`] when
    /// the connection itself fails.
    pub fn serve(&mut self, request: ServeRequest) -> Result<WireResponse, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let body = wire::encode_message(&Message::Serve { id, request });
        wire::write_frame(&mut self.writer, &body, self.max_frame_len)?;
        match self.read_reply(id)? {
            Message::Served { response, .. } => Ok(response),
            Message::Failed { error, .. } => Err(error),
            other => {
                Err(ServeError::Transport(format!("unexpected server reply {other:?}")))
            }
        }
    }

    /// Round-trips a ping (health probe).
    ///
    /// # Errors
    /// [`ServeError::Transport`] when the connection fails or the reply
    /// does not correlate.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let body = wire::encode_message(&Message::Ping { id });
        wire::write_frame(&mut self.writer, &body, self.max_frame_len)?;
        match self.read_reply(id)? {
            Message::Pong { .. } => Ok(()),
            Message::Failed { error, .. } => Err(error),
            other => {
                Err(ServeError::Transport(format!("unexpected ping reply {other:?}")))
            }
        }
    }

    /// Reads the reply for `id`. A `Failed { id: 0, … }` frame is a
    /// connection-level protocol error report and matches any request.
    fn read_reply(&mut self, id: u64) -> Result<Message, ServeError> {
        let body = wire::read_frame(&mut self.reader, self.max_frame_len)?;
        let message = wire::decode_message(&body, Some(&self.schema))?;
        let reply_id = match &message {
            Message::Served { id, .. }
            | Message::Failed { id, .. }
            | Message::Pong { id } => *id,
            other => {
                return Err(ServeError::Transport(format!(
                    "unexpected server message {other:?}"
                )))
            }
        };
        if reply_id == id || reply_id == 0 {
            Ok(message)
        } else {
            Err(ServeError::Transport(format!(
                "reply id {reply_id} does not match request id {id}"
            )))
        }
    }
}
