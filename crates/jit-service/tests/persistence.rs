//! Property tests for snapshot persistence: a `SessionSnapshot` pushed
//! through a [`SnapshotStore`] (both backends) and loaded back must
//! re-serve **bit-identically** to reserving from the original in-memory
//! snapshot — under no drift and partial drift, for 1/2/8 worker
//! threads and both batch policies.
//!
//! This is the end-to-end guarantee the store stack (lossless jit-db
//! float literals, digest hex, the exact constraint/update-fn codec)
//! exists to provide; any lossy byte anywhere breaks fingerprint
//! equality and shows up here as a spurious recompute or a diverging
//! candidate bit pattern.

// Test code: assertion-style unwraps are the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use jit_core::{
    AdminConfig, BatchParallelism, JustInTime, ReturningUser, TimePointServe,
    UserRequest, UserSession,
};
use jit_data::{FeatureSchema, LendingClubGenerator, LendingClubParams};
use jit_ml::{Dataset, RandomForestParams};
use jit_service::{DbSnapshotStore, MemorySnapshotStore, SnapshotStore};
use proptest::prelude::*;
use std::sync::OnceLock;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn systems() -> &'static Vec<(usize, BatchParallelism, JustInTime)> {
    static SYSTEMS: OnceLock<Vec<(usize, BatchParallelism, JustInTime)>> =
        OnceLock::new();
    SYSTEMS.get_or_init(|| {
        let gen = LendingClubGenerator::new(LendingClubParams {
            records_per_year: 120,
            ..Default::default()
        });
        let slices: Vec<Dataset> = gen
            .years()
            .into_iter()
            .take(4)
            .map(|y| LendingClubGenerator::to_dataset(&gen.records_for_year(y)))
            .collect();
        let mut out = Vec::new();
        for policy in [BatchParallelism::PerUser, BatchParallelism::PerTimePoint] {
            for threads in THREAD_COUNTS {
                let config = AdminConfig {
                    horizon: 2,
                    threads,
                    batch_threads: threads,
                    batch_parallelism: policy,
                    future: jit_temporal::future::FutureModelsParams {
                        n_landmarks: 20,
                        pool_slices: 2,
                        forest: RandomForestParams { n_trees: 6, ..Default::default() },
                        ..Default::default()
                    },
                    candidates: jit_core::CandidateParams {
                        beam_width: 4,
                        max_iters: 3,
                        top_k: 4,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let system = JustInTime::train(config, gen.schema(), &slices)
                    .expect("property fixture trains");
                out.push((threads, policy, system));
            }
        }
        out
    })
}

fn schema() -> &'static FeatureSchema {
    static SCHEMA: OnceLock<FeatureSchema> = OnceLock::new();
    SCHEMA.get_or_init(FeatureSchema::lending_club)
}

type Print = Vec<(usize, Vec<u64>, u64, u64)>;

fn print(session: &UserSession<'_>) -> Print {
    session
        .candidates()
        .iter()
        .map(|c| {
            (
                c.time_index,
                c.profile.iter().map(|v| v.to_bits()).collect(),
                c.diff.to_bits(),
                c.confidence.to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn stored_snapshots_reserve_bit_identically_to_in_memory_ones(
        income_cap in 50_000.0f64..120_000.0,
        debt_floor in 0.0f64..100.0,
        drift_t in 0usize..3,
    ) {
        use jit_constraints::builder::{feature, gap};
        for (threads, policy, system) in systems() {
            // A request with preferences whose constants exercise the
            // codec's float path (arbitrary f64s from the strategy).
            let request = system
                .session_builder(&LendingClubGenerator::john())
                .constraint(feature("income").le(income_cap))
                .constraint(feature("debt").ge(debt_floor))
                .override_feature(
                    "debt",
                    jit_temporal::update::Override::Trajectory(
                        vec![debt_floor + 1_000.0, debt_floor],
                    ),
                )
                .build();
            let cold = system
                .serve_batch(std::slice::from_ref(&request))
                .expect("cold serve");
            let snapshot = cold[0].snapshot();

            let memory = MemorySnapshotStore::new();
            let db = DbSnapshotStore::in_new_database(schema()).expect("open");
            memory.save("u", &snapshot).expect("memory save");
            db.save("u", &snapshot).expect("db save");

            for store in [&memory as &dyn SnapshotStore, &db] {
                let loaded = store.load("u").expect("load").expect("stored");

                // No drift: both replay fully and match bit-for-bit.
                let from_memory = system
                    .reserve(&ReturningUser::unchanged(snapshot.clone()))
                    .expect("reserve in-memory");
                let from_store = system
                    .reserve(&ReturningUser::unchanged(loaded.clone()))
                    .expect("reserve loaded");
                prop_assert_eq!(
                    print(&from_store),
                    print(&from_memory),
                    "no-drift divergence (threads={}, policy={:?})",
                    threads,
                    policy
                );
                prop_assert!(from_store
                    .reserve_report()
                    .expect("reserved")
                    .iter()
                    .all(|o| *o == TimePointServe::Replayed));

                // Partial drift: a new preference at one time point;
                // that point recomputes, the rest replay — identically
                // from the stored and in-memory snapshots.
                let drifted_request = {
                    let mut r = request.clone();
                    r.constraints.add_at(drift_t, gap().le(1.0));
                    r
                };
                let warm_memory = system
                    .reserve(&ReturningUser::with_request(
                        snapshot.clone(),
                        drifted_request.clone(),
                    ))
                    .expect("partial reserve in-memory");
                let warm_store = system
                    .reserve(&ReturningUser::with_request(
                        loaded,
                        drifted_request.clone(),
                    ))
                    .expect("partial reserve loaded");
                prop_assert_eq!(
                    print(&warm_store),
                    print(&warm_memory),
                    "partial-drift divergence (threads={}, policy={:?})",
                    threads,
                    policy
                );
                prop_assert_eq!(
                    warm_store.reserve_report(),
                    warm_memory.reserve_report()
                );
                let report = warm_store.reserve_report().expect("reserved");
                prop_assert_eq!(report[drift_t], TimePointServe::Recomputed);
                prop_assert_eq!(
                    report
                        .iter()
                        .filter(|o| **o == TimePointServe::Replayed)
                        .count(),
                    report.len() - 1
                );
            }
        }
    }

    #[test]
    fn store_round_trip_preserves_every_snapshot_byte(
        bump in 0u64..u64::MAX,
    ) {
        // Direct store round-trip on a snapshot with adversarial floats
        // in the request (bit-pattern probing beyond what real serves
        // produce): save -> load must preserve profile/input/candidate
        // bits, fingerprints and constraint digests exactly.
        let (_, _, system) = &systems()[0];
        let mut profile = LendingClubGenerator::john();
        // Perturb one coordinate by an arbitrary ULP pattern within
        // schema bounds (keep it finite and in range).
        profile[2] = 46_000.0 + (bump % 1_000) as f64 + 0.1 + 0.2;
        let request = UserRequest::new(profile);
        let cold = system
            .serve_batch(std::slice::from_ref(&request))
            .expect("cold serve");
        let snapshot = cold[0].snapshot();

        let db = DbSnapshotStore::in_new_database(schema()).expect("open");
        db.save("u", &snapshot).expect("save");
        let loaded = db.load("u").expect("load").expect("stored");

        prop_assert_eq!(loaded.fingerprints(), snapshot.fingerprints());
        let bits = |rows: &[Vec<f64>]| -> Vec<Vec<u64>> {
            rows.iter()
                .map(|r| r.iter().map(|v| v.to_bits()).collect())
                .collect()
        };
        prop_assert_eq!(
            bits(loaded.temporal_inputs()),
            bits(snapshot.temporal_inputs())
        );
        prop_assert_eq!(
            bits(std::slice::from_ref(&loaded.request.profile)),
            bits(std::slice::from_ref(&snapshot.request.profile))
        );
        prop_assert_eq!(loaded.candidates().len(), snapshot.candidates().len());
        for (a, b) in loaded.candidates().iter().zip(snapshot.candidates()) {
            prop_assert_eq!(a.time_index, b.time_index);
            prop_assert_eq!(a.diff.to_bits(), b.diff.to_bits());
            prop_assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
    }
}
