//! Integration tests for the serving service: the typed-error contract
//! (every public entry point returns a [`ServeError`] instead of
//! panicking), snapshot persistence through both store backends, and
//! the sharded dispatcher's routing invariants.

// Test code: assertion-style unwraps are the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use jit_core::{JustInTime, UserRequest};
use jit_data::{FeatureSchema, LendingClubGenerator, LendingClubParams};
use jit_ml::{Dataset, RandomForestParams};
use jit_service::{
    CohortMember, DbSnapshotStore, JitService, MemorySnapshotStore, ReturningMember,
    ServeError, ServeRequest, ShardedService, SnapshotStore, StoreError,
};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------
// Fixture: one small trained system, shared across tests
// ---------------------------------------------------------------------

fn small_config(horizon: usize) -> jit_core::AdminConfig {
    jit_core::AdminConfig {
        horizon,
        future: jit_temporal::future::FutureModelsParams {
            n_landmarks: 20,
            pool_slices: 2,
            forest: RandomForestParams { n_trees: 6, ..Default::default() },
            ..Default::default()
        },
        candidates: jit_core::CandidateParams {
            beam_width: 4,
            max_iters: 3,
            top_k: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn fixture() -> &'static (Arc<JustInTime>, FeatureSchema) {
    static FIXTURE: OnceLock<(Arc<JustInTime>, FeatureSchema)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gen = LendingClubGenerator::new(LendingClubParams {
            records_per_year: 120,
            ..Default::default()
        });
        let slices: Vec<Dataset> = gen
            .years()
            .into_iter()
            .take(4)
            .map(|y| LendingClubGenerator::to_dataset(&gen.records_for_year(y)))
            .collect();
        let schema = gen.schema().clone();
        let system = JustInTime::train(small_config(2), &schema, &slices)
            .expect("fixture trains");
        (Arc::new(system), schema)
    })
}

fn shared_system() -> Arc<JustInTime> {
    Arc::clone(&fixture().0)
}

fn fresh_service() -> JitService {
    JitService::with_shared(shared_system(), Arc::new(MemorySnapshotStore::new()))
}

fn john_member(id: &str) -> CohortMember {
    CohortMember::new(id, UserRequest::new(LendingClubGenerator::john()))
}

type Print = Vec<(usize, Vec<u64>, u64, u64)>;

fn print(session: &jit_core::UserSession<'_>) -> Print {
    session
        .candidates()
        .iter()
        .map(|c| {
            (
                c.time_index,
                c.profile.iter().map(|v| v.to_bits()).collect(),
                c.diff.to_bits(),
                c.confidence.to_bits(),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------
// Happy paths: service output === legacy entry points, snapshots stored
// ---------------------------------------------------------------------

#[test]
fn new_user_matches_legacy_session_and_stores_snapshot() {
    let system = shared_system();
    let service = fresh_service();
    let response = service
        .serve(ServeRequest::new_user("john", john_member("x").request))
        .unwrap();
    assert_eq!(response.users.len(), 1);
    assert_eq!(response.users[0].user_id, "john");
    assert_eq!(response.report.users, 1);
    assert_eq!(response.report.cold_time_points, 3);
    assert_eq!(response.report.replayed_time_points, 0);
    assert_eq!(response.report.shards.len(), 1);

    let legacy = system
        .session(&LendingClubGenerator::john(), &Default::default(), None)
        .unwrap();
    assert_eq!(print(&response.users[0].session), print(&legacy));
    // The snapshot landed in the store under the user id.
    assert_eq!(service.store().user_ids().unwrap(), vec!["john"]);
}

#[test]
fn batch_then_refresh_replays_everything() {
    let service = fresh_service();
    let cohort = vec![john_member("a"), john_member("b")];
    let first = service.serve(ServeRequest::batch(cohort)).unwrap();
    let first_prints: Vec<Print> =
        first.users.iter().map(|u| print(&u.session)).collect();
    drop(first);

    let refreshed = service.serve(ServeRequest::refresh(["a", "b"])).unwrap();
    assert_eq!(refreshed.report.users, 2);
    assert_eq!(refreshed.report.replayed_time_points, 6, "no drift: all replay");
    assert_eq!(refreshed.report.recomputed_time_points, 0);
    let prints: Vec<Print> =
        refreshed.users.iter().map(|u| print(&u.session)).collect();
    assert_eq!(prints, first_prints);
    // Response order is request order, not store order.
    assert_eq!(refreshed.users[0].user_id, "a");
    assert_eq!(refreshed.users[1].user_id, "b");
}

#[test]
fn returning_inline_matches_refresh() {
    let service = fresh_service();
    let first =
        service.serve(ServeRequest::new_user("u", john_member("u").request)).unwrap();
    let snapshot = first.users[0].session.snapshot();
    drop(first);
    let inline = service
        .serve(ServeRequest::returning([ReturningMember::new(
            "u",
            jit_core::ReturningUser::unchanged(snapshot),
        )]))
        .unwrap();
    let by_id = service.serve(ServeRequest::refresh(["u"])).unwrap();
    assert_eq!(print(&inline.users[0].session), print(&by_id.users[0].session));
}

// ---------------------------------------------------------------------
// Typed errors: every entry point, no panics
// ---------------------------------------------------------------------

#[test]
fn empty_batches_are_typed_errors() {
    let service = fresh_service();
    for request in [
        ServeRequest::Batch(vec![]),
        ServeRequest::Returning(vec![]),
        ServeRequest::Refresh(vec![]),
    ] {
        assert!(matches!(service.serve(request), Err(ServeError::EmptyBatch)));
    }
}

#[test]
fn duplicate_user_ids_are_typed_errors() {
    let service = fresh_service();
    let err = service
        .serve(ServeRequest::batch([john_member("dup"), john_member("dup")]))
        .unwrap_err();
    assert!(matches!(err, ServeError::DuplicateUser(id) if id == "dup"));
}

#[test]
fn unknown_refresh_id_is_a_typed_error() {
    let service = fresh_service();
    service.serve(ServeRequest::new_user("known", john_member("x").request)).unwrap();
    let err = service.serve(ServeRequest::refresh(["known", "ghost"])).unwrap_err();
    assert!(matches!(err, ServeError::UnknownUser(id) if id == "ghost"));
}

#[test]
fn per_user_session_errors_carry_the_user_id() {
    let service = fresh_service();
    // Wrong dimension (schema mismatch between profile and system).
    let err = service
        .serve(ServeRequest::batch([
            john_member("fine"),
            CohortMember::new("short", UserRequest::new(vec![1.0])),
        ]))
        .unwrap_err();
    match err {
        ServeError::Session { user_id, error } => {
            assert_eq!(user_id, "short");
            assert!(matches!(
                error,
                jit_core::SessionError::DimensionMismatch { expected: 6, found: 1 }
            ));
        }
        other => panic!("expected Session error, got {other:?}"),
    }
    // Unknown feature in preferences.
    let mut prefs = jit_constraints::ConstraintSet::new();
    prefs.add(jit_constraints::builder::feature("fico").ge(700.0));
    let err = service
        .serve(ServeRequest::new_user(
            "bad-prefs",
            UserRequest {
                profile: LendingClubGenerator::john(),
                constraints: prefs,
                update_fn: None,
            },
        ))
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::Session { user_id, error: jit_core::SessionError::UnknownFeature(f) }
            if user_id == "bad-prefs" && f == "fico"
    ));
    // Nothing was stored for the failing batch (all-or-nothing).
    assert!(service.store().user_ids().unwrap().is_empty());
}

/// A store whose writes always fail — the fault-injection backend.
#[derive(Debug)]
struct BrokenStore;

impl SnapshotStore for BrokenStore {
    fn save(&self, _: &str, _: &jit_core::SessionSnapshot) -> Result<(), StoreError> {
        Err(StoreError::Unavailable("disk on fire".to_string()))
    }

    fn load(&self, _: &str) -> Result<Option<jit_core::SessionSnapshot>, StoreError> {
        Err(StoreError::Unavailable("disk on fire".to_string()))
    }

    fn remove(&self, _: &str) -> Result<bool, StoreError> {
        Err(StoreError::Unavailable("disk on fire".to_string()))
    }

    fn user_ids(&self) -> Result<Vec<String>, StoreError> {
        Err(StoreError::Unavailable("disk on fire".to_string()))
    }
}

#[test]
fn store_failures_are_typed_errors_not_panics() {
    let service = JitService::with_shared(shared_system(), Arc::new(BrokenStore));
    let err = service
        .serve(ServeRequest::new_user("u", john_member("u").request))
        .unwrap_err();
    assert!(matches!(
        &err,
        ServeError::Store { user_id: Some(id), error: StoreError::Unavailable(_) }
            if id == "u"
    ));
    let err = service.serve(ServeRequest::refresh(["u"])).unwrap_err();
    assert!(matches!(
        &err,
        ServeError::Store { user_id: Some(id), error: StoreError::Unavailable(_) }
            if id == "u"
    ));
}

#[test]
fn db_store_rejects_snapshots_from_a_different_schema() {
    let (_, schema) = fixture();
    let db = Arc::new(jit_db::Database::new());
    let store = DbSnapshotStore::open(Arc::clone(&db), schema).unwrap();
    let service = JitService::with_shared(shared_system(), Arc::new(store));
    service.serve(ServeRequest::new_user("u", john_member("u").request)).unwrap();

    // Re-open the same database under a different schema: the persisted
    // snapshot must be refused, not replayed.
    let mut features = schema.features().to_vec();
    features[0].max += 1.0;
    let other_schema = FeatureSchema::new(features);
    let reopened = DbSnapshotStore::open(db, &other_schema).unwrap();
    let err = reopened.load("u").unwrap_err();
    assert!(matches!(err, StoreError::SchemaMismatch { .. }), "{err:?}");
}

#[test]
fn db_store_reports_corrupt_rows_as_typed_errors() {
    let (_, schema) = fixture();
    let db = Arc::new(jit_db::Database::new());
    let store = DbSnapshotStore::open(Arc::clone(&db), schema).unwrap();
    let service = JitService::with_shared(shared_system(), Arc::new(store));
    service.serve(ServeRequest::new_user("u", john_member("u").request)).unwrap();

    // Vandalize the persisted rows: losing the temporal inputs must
    // surface as StoreError::Corrupt on load, never a shape-invalid
    // snapshot that mis-serves downstream.
    db.execute("DELETE FROM jit_snapshot_inputs WHERE user_id = 'u'").unwrap();
    let err = service.serve(ServeRequest::refresh(["u"])).unwrap_err();
    assert!(
        matches!(
            &err,
            ServeError::Store { error: StoreError::Corrupt { user_id, .. }, .. }
                if user_id == "u"
        ),
        "{err:?}"
    );
}

// ---------------------------------------------------------------------
// DbSnapshotStore: SQL round-trip + restart survival
// ---------------------------------------------------------------------

#[test]
fn db_store_round_trips_snapshots_bit_exactly() {
    let (system, schema) = fixture();
    // A request exercising every serialized part: preferences with
    // scopes and awkward floats, a trajectory override, constraints.
    use jit_constraints::builder::{diff, feature, gap};
    let request = system
        .session_builder(&LendingClubGenerator::john())
        .constraint(gap().le(2.0))
        .constraint_at(1, feature("income").le(80_000.5))
        .constraint(diff().le(0.1 + 0.2).or(feature("debt").ge(-0.0)))
        .override_feature(
            "debt",
            jit_temporal::update::Override::Trajectory(vec![1_500.0, 0.25]),
        )
        .build();
    let session = system.serve_batch(std::slice::from_ref(&request)).unwrap();
    let snapshot = session[0].snapshot();

    let store = DbSnapshotStore::in_new_database(schema).unwrap();
    store.save("john", &snapshot).unwrap();
    let loaded = store.load("john").unwrap().expect("stored");

    // Fingerprints, inputs and candidates round-trip bit-exactly...
    assert_eq!(loaded.fingerprints(), snapshot.fingerprints());
    assert_eq!(loaded.temporal_inputs(), snapshot.temporal_inputs());
    assert_eq!(loaded.candidates().len(), snapshot.candidates().len());
    for (a, b) in loaded.candidates().iter().zip(snapshot.candidates()) {
        assert_eq!(a.time_index, b.time_index);
        assert_eq!(a.gap, b.gap);
        assert_eq!(a.diff.to_bits(), b.diff.to_bits());
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        let bits = |p: &[f64]| p.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.profile), bits(&b.profile));
    }
    // ...and re-serving from the loaded snapshot replays like the
    // original (same fingerprints -> full replay, bit-identical output).
    let from_memory =
        system.reserve(&jit_core::ReturningUser::unchanged(snapshot)).unwrap();
    let from_store =
        system.reserve(&jit_core::ReturningUser::unchanged(loaded)).unwrap();
    assert_eq!(print(&from_store), print(&from_memory));
    assert!(from_store
        .reserve_report()
        .unwrap()
        .iter()
        .all(|o| *o == jit_core::TimePointServe::Replayed));
}

#[test]
fn db_store_survives_service_restart() {
    let (_, schema) = fixture();
    let db = Arc::new(jit_db::Database::new());
    let reference_print;
    {
        let store = DbSnapshotStore::open(Arc::clone(&db), schema).unwrap();
        let service = JitService::with_shared(shared_system(), Arc::new(store));
        let response = service
            .serve(ServeRequest::new_user("survivor", john_member("x").request))
            .unwrap();
        reference_print = print(&response.users[0].session);
        // Service, system and store dropped here; only `db` survives.
    }
    let store = DbSnapshotStore::open(db, schema).unwrap();
    assert_eq!(store.user_ids().unwrap(), vec!["survivor"]);
    let service = JitService::with_shared(shared_system(), Arc::new(store));
    let refreshed = service.serve(ServeRequest::refresh(["survivor"])).unwrap();
    assert_eq!(print(&refreshed.users[0].session), reference_print);
    assert_eq!(refreshed.report.replayed_time_points, 3);
    // remove() reports truthfully across restarts too.
    assert!(service.store().remove("survivor").unwrap());
    assert!(!service.store().remove("survivor").unwrap());
    assert!(service.store().user_ids().unwrap().is_empty());
}

// ---------------------------------------------------------------------
// Sharding: routing invariants (bit-identity lives in the workspace
// determinism suite)
// ---------------------------------------------------------------------

#[test]
fn sharded_service_routes_consistently_and_reassembles_in_order() {
    let sharded = ShardedService::from_shared(shared_system(), 4, 0, |_| {
        Arc::new(MemorySnapshotStore::new())
    });
    let ids: Vec<String> = (0..12).map(|i| format!("user-{i}")).collect();
    let members: Vec<CohortMember> = ids.iter().map(|id| john_member(id)).collect();
    let response = sharded.serve(ServeRequest::batch(members)).unwrap();
    assert_eq!(response.report.users, 12);
    let got: Vec<&str> = response.users.iter().map(|u| u.user_id.as_str()).collect();
    assert_eq!(got, ids.iter().map(String::as_str).collect::<Vec<_>>());
    // Every user's snapshot lives exactly on its consistent shard.
    for id in &ids {
        let home = sharded.shard_of(id);
        for (s, shard) in sharded.shards().iter().enumerate() {
            let stored = shard.store().load(id).unwrap().is_some();
            assert_eq!(stored, s == home, "user {id} on shard {s}");
        }
    }
    // Refresh round-trips through the per-shard stores.
    let refreshed = sharded.serve(ServeRequest::refresh(ids.clone())).unwrap();
    assert_eq!(refreshed.report.replayed_time_points, 12 * 3);
    // Reports aggregate only shards that served users.
    assert!(refreshed.report.shards.iter().all(|s| s.users > 0));
    assert_eq!(refreshed.report.shards.iter().map(|s| s.users).sum::<usize>(), 12);
}

#[test]
fn sharded_errors_are_typed_and_deterministic() {
    let sharded = ShardedService::from_shared(shared_system(), 3, 1, |_| {
        Arc::new(MemorySnapshotStore::new())
    });
    for request in [ServeRequest::Batch(vec![]), ServeRequest::Refresh(vec![])] {
        assert!(matches!(sharded.serve(request), Err(ServeError::EmptyBatch)));
    }
    let err = sharded
        .serve(ServeRequest::batch([john_member("dup"), john_member("dup")]))
        .unwrap_err();
    assert!(matches!(err, ServeError::DuplicateUser(_)));
    // The earliest failing user in request order wins, whatever its shard.
    let err = sharded
        .serve(ServeRequest::batch([
            john_member("ok-0"),
            CohortMember::new("bad-1", UserRequest::new(vec![1.0])),
            CohortMember::new("bad-2", UserRequest::new(vec![2.0, 3.0])),
        ]))
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::Session { user_id, .. } if user_id == "bad-1"
    ));
    // Unknown refresh ids surface from the owning shard.
    let err = sharded.serve(ServeRequest::refresh(["nobody"])).unwrap_err();
    assert!(matches!(err, ServeError::UnknownUser(id) if id == "nobody"));
}
