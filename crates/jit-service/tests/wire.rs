//! Property tests for the wire codec: bit-exact round trips under
//! adversarial float bit patterns and arbitrary user-id strings, and
//! typed (never panicking) rejection of malformed, truncated and
//! corrupted frames.

// Test code: assertion-style unwraps are the point.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use jit_core::UserRequest;
use jit_data::FeatureSchema;
use jit_service::wire::{self, Message, WireError};
use jit_service::{CohortMember, ServeError, ServeRequest};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

// ---------------------------------------------------------------------
// Adversarial strategies (custom impls — the vendored proptest shim has
// no `any`/`prop_flat_map`)
// ---------------------------------------------------------------------

/// Floats chosen to break naive codecs: NaNs with payloads, signed
/// zeros, subnormals, infinities, and raw random bit patterns.
fn adversarial_f64(rng: &mut TestRng) -> f64 {
    match rng.i128_in(0, 9) {
        0 => f64::NAN,
        1 => f64::from_bits(0x7ff8_0000_dead_beef), // quiet NaN, payload
        2 => f64::from_bits(0xfff0_0000_0000_0001), // signaling-ish NaN
        3 => -0.0,
        4 => f64::from_bits(1),       // smallest subnormal
        5 => f64::MIN_POSITIVE / 4.0, // subnormal
        6 => f64::INFINITY,
        7 => f64::NEG_INFINITY,
        _ => f64::from_bits(rng.next_u64()),
    }
}

#[derive(Clone, Debug)]
struct AdversarialProfile {
    max_len: usize,
}

impl Strategy for AdversarialProfile {
    type Value = Vec<f64>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.i128_in(1, self.max_len as i128) as usize;
        (0..n).map(|_| adversarial_f64(rng)).collect()
    }
}

/// User ids drawn from a hostile palette: quotes, backslashes, newlines,
/// NUL, multi-byte unicode, emoji.
#[derive(Clone, Debug)]
struct AdversarialId;

impl Strategy for AdversarialId {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        const PALETTE: &[char] =
            &['a', 'Z', '0', '"', '\'', '\\', '\n', '\t', '\0', ' ', 'é', '漢', '🦀'];
        let n = rng.i128_in(0, 24) as usize;
        (0..n)
            .map(|_| PALETTE[rng.i128_in(0, PALETTE.len() as i128 - 1) as usize])
            .collect()
    }
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

// ---------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serve_request_round_trips_bit_exactly(
        profile_a in AdversarialProfile { max_len: 12 },
        profile_b in AdversarialProfile { max_len: 12 },
        id_a in AdversarialId,
        id_b in AdversarialId,
        cap_bits in 0u64..u64::MAX,
        scope_t in 0usize..4,
    ) {
        let schema = FeatureSchema::lending_club();
        // Distinct ids (suffix makes hostile duplicates unique).
        let id_a = format!("{id_a}#a");
        let id_b = format!("{id_b}#b");
        let mut request_b = UserRequest::new(profile_b.clone());
        // Constraint constants with arbitrary bit patterns must survive
        // the trip exactly (the text codec inside the wire codec).
        let cap = f64::from_bits(cap_bits);
        if cap.is_finite() {
            request_b
                .constraints
                .add_at(scope_t, jit_constraints::builder::feature("income").le(cap));
        }
        let original = ServeRequest::Batch(vec![
            CohortMember::new(id_a.clone(), UserRequest::new(profile_a.clone())),
            CohortMember::new(id_b.clone(), request_b),
        ]);

        let encoded = wire::encode_message(&Message::Serve { id: 7, request: original });
        let decoded = wire::decode_message(&encoded, Some(&schema)).expect("decodes");
        let Message::Serve { id: 7, request: ServeRequest::Batch(members) } = decoded
        else {
            panic!("wrong message shape");
        };
        prop_assert_eq!(members.len(), 2);
        prop_assert_eq!(&members[0].user_id, &id_a);
        prop_assert_eq!(&members[1].user_id, &id_b);
        prop_assert_eq!(bits(&members[0].request.profile), bits(&profile_a));
        prop_assert_eq!(bits(&members[1].request.profile), bits(&profile_b));
        // Re-encoding the decoded value reproduces identical bytes —
        // the codec has one canonical form.
        let again = wire::encode_message(&Message::Serve {
            id: 7,
            request: ServeRequest::Batch(members),
        });
        prop_assert_eq!(again, encoded);
    }

    #[test]
    fn error_frames_round_trip_with_canonical_reencoding(
        id in AdversarialId,
        capacity in 0usize..1_000_000,
        shard in 0usize..64,
    ) {
        for error in [
            ServeError::EmptyBatch,
            ServeError::DuplicateUser(id.clone()),
            ServeError::UnknownUser(id.clone()),
            ServeError::Overloaded { capacity },
            ServeError::Shard { shard, user_id: id.clone(), detail: id.clone() },
            ServeError::Transport(id.clone()),
        ] {
            let encoded = wire::encode_message(&Message::Failed { id: 3, error });
            let decoded = wire::decode_message(&encoded, None).expect("decodes");
            let again = wire::encode_message(&decoded);
            prop_assert_eq!(again, encoded);
        }
    }

    #[test]
    fn frames_round_trip_and_truncations_are_typed(
        body in proptest::collection::vec(0u8..255, 0..200),
        cut in 0usize..205,
    ) {
        // Full frame round-trips...
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &body, wire::MAX_FRAME_LEN).expect("write");
        let back = wire::read_frame(&mut framed.as_slice(), wire::MAX_FRAME_LEN)
            .expect("read");
        prop_assert_eq!(&back, &body);

        // ...and every strict prefix fails typed, never panics, never
        // fabricates data.
        let cut = cut.min(framed.len().saturating_sub(1));
        let result = wire::read_frame(&mut framed[..cut].as_ref(), wire::MAX_FRAME_LEN);
        match result {
            Err(WireError::Closed) => prop_assert_eq!(cut, 0),
            Err(WireError::Io(e)) => {
                prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            Err(other) => panic!("unexpected error shape: {other}"),
            Ok(_) => panic!("a truncated frame must not parse"),
        }
    }

    #[test]
    fn corrupt_and_truncated_bodies_never_panic(
        profile in AdversarialProfile { max_len: 8 },
        id in AdversarialId,
        cut_num in 0usize..10_000,
        flip_pos in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let schema = FeatureSchema::lending_club();
        let encoded = wire::encode_message(&Message::Serve {
            id: 1,
            request: ServeRequest::new_user(id, UserRequest::new(profile)),
        });

        // Truncation at every relative position: must be a typed error
        // (a strict prefix can never satisfy the trailing-bytes check).
        let cut = cut_num % encoded.len();
        prop_assert!(wire::decode_message(&encoded[..cut], Some(&schema)).is_err());

        // A flipped bit anywhere: decode may succeed (the flip landed in
        // a float payload) or fail typed — it must never panic and never
        // over-allocate past the frame.
        let mut corrupt = encoded.clone();
        let pos = flip_pos % corrupt.len();
        corrupt[pos] ^= 1 << flip_bit;
        let _ = wire::decode_message(&corrupt, Some(&schema));
    }
}

// ---------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------

#[test]
fn oversized_write_and_read_are_refused_before_any_allocation() {
    // Writing past the cap fails without emitting anything.
    let mut out = Vec::new();
    let err = wire::write_frame(&mut out, &[0u8; 64], 16).unwrap_err();
    assert!(matches!(err, WireError::Oversized { len: 64, max: 16 }));
    assert!(out.is_empty());

    // Reading a frame that *claims* to be enormous fails on the length
    // prefix alone — the payload is never allocated or awaited.
    let mut claim = Vec::new();
    claim.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = wire::read_frame(&mut claim.as_slice(), 1 << 20).unwrap_err();
    assert!(matches!(err, WireError::Oversized { .. }));
}

#[test]
fn wire_errors_convert_to_typed_transport_serve_errors() {
    let err: ServeError = WireError::Closed.into();
    assert!(matches!(err, ServeError::Transport(_)));
    let err: ServeError =
        WireError::Malformed { offset: 3, expected: "user id" }.into();
    match err {
        ServeError::Transport(detail) => {
            assert!(detail.contains("user id"), "{detail}")
        }
        other => panic!("expected Transport, got {other:?}"),
    }
}
