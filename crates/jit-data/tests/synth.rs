//! The synthetic generator's contracts: bit-determinism across thread
//! counts, schema/domain conformance of every generated row, cohort
//! filter semantics and registry hygiene.

use jit_data::scenario::{ScenarioRegistry, ScenarioSpec, Workload};
use jit_data::synth::SyntheticGenerator;
use jit_data::FeatureKind;
use proptest::prelude::*;

/// Bitwise dataset equality (PartialEq on f64 would also pass for
/// `-0.0 == 0.0`; the determinism contract is stronger).
fn datasets_bit_equal(a: &jit_ml::Dataset, b: &jit_ml::Dataset) -> bool {
    a.len() == b.len()
        && (0..a.len()).all(|i| {
            a.label(i) == b.label(i)
                && a.row(i).len() == b.row(i).len()
                && a.row(i)
                    .iter()
                    .zip(b.row(i))
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

#[test]
fn slices_bit_identical_across_1_2_8_threads() {
    let spec = ScenarioSpec::credit(3).with_rows_per_slice(3_000);
    let baseline = SyntheticGenerator::new(&spec, 1);
    for threads in [2usize, 8] {
        let parallel = SyntheticGenerator::new(&spec, threads);
        for slice in [0usize, 3, 9] {
            assert!(
                datasets_bit_equal(&baseline.slice(slice), &parallel.slice(slice)),
                "slice {slice} differs at threads={threads}"
            );
        }
    }
    // And across reruns of the same generator.
    assert!(datasets_bit_equal(&baseline.slice(0), &baseline.slice(0)));
}

#[test]
fn cohorts_bit_identical_across_threads_and_reruns() {
    let spec = ScenarioSpec::credit(5).with_cohort_size(2_000);
    let baseline = SyntheticGenerator::new(&spec, 1).cohort();
    assert_eq!(baseline.len(), 2_000);
    for threads in [2usize, 8] {
        assert_eq!(
            baseline,
            SyntheticGenerator::new(&spec, threads).cohort(),
            "cohort differs at threads={threads}"
        );
    }
    assert_eq!(baseline, SyntheticGenerator::new(&spec, 1).cohort(), "rerun");
}

/// The committed population-scale spec: a 100k-user cohort, generated
/// bit-identically at every thread count (the ISSUE's acceptance bar).
#[test]
fn committed_100k_cohort_is_deterministic() {
    let spec = ScenarioSpec::credit_100k();
    assert_eq!(spec.total_cohort_size(), 100_000);
    let a = SyntheticGenerator::new(&spec, 2).population_digest(0);
    let b = SyntheticGenerator::new(&spec, 8).population_digest(0);
    assert_eq!(a, b, "population digest must be thread-count invariant");
}

#[test]
fn churn_scenario_generates_and_validates() {
    let spec = ScenarioSpec::churn(9);
    spec.validate().expect("builtin spec must validate");
    let gen = SyntheticGenerator::new(&spec, 2);
    let slice = gen.slice(0);
    assert_eq!(slice.len(), spec.rows_per_slice);
    assert!(slice.labels().iter().any(|l| *l));
    assert!(slice.labels().iter().any(|l| !*l));
}

#[test]
fn cohort_filters_honor_the_oracle() {
    let spec = ScenarioSpec::credit(13).with_cohort_size(600);
    let gen = SyntheticGenerator::new(&spec, 4);
    let present = gen.present_slice();
    for user in gen.cohort() {
        let p = gen.oracle_probability(&user.profile, present);
        match user.cohort.as_str() {
            "rejected" => assert!(p < 0.5, "{}: p={p}", user.user_id),
            "walk-ins" => {} // unfiltered
            other => panic!("unexpected cohort {other:?}"),
        }
    }
}

#[test]
fn with_cohort_size_preserves_mix_and_total() {
    for total in [8usize, 100, 1_001, 100_000] {
        let spec = ScenarioSpec::credit(1).with_cohort_size(total);
        assert_eq!(spec.total_cohort_size(), total, "total={total}");
        assert!(spec.cohorts.iter().all(|c| c.size >= 1));
    }
}

#[test]
fn validate_rejects_inconsistent_specs() {
    let mut bad = ScenarioSpec::credit(0);
    bad.label.weights.pop();
    assert!(bad.validate().is_err(), "weight arity mismatch must fail");

    let mut bad = ScenarioSpec::credit(0);
    bad.cohorts[1].name = bad.cohorts[0].name.clone();
    assert!(bad.validate().is_err(), "duplicate cohort names must fail");

    let mut bad = ScenarioSpec::credit(0);
    bad.rows_per_slice = 0;
    assert!(bad.validate().is_err(), "empty slices must fail");
}

#[test]
fn registry_builtins_and_digests() {
    let registry = ScenarioRegistry::builtin();
    for name in ["lendingclub", "synth/credit", "synth/credit-100k", "synth/churn"] {
        assert!(registry.get(name).is_some(), "{name} must be registered");
    }
    assert_eq!(registry.names().len(), registry.len());
    // Digests identify workloads: distinct scenarios, distinct digests;
    // the digest is stable across clones.
    let credit = registry.get("synth/credit").unwrap();
    let churn = registry.get("synth/churn").unwrap();
    assert_ne!(credit.content_digest(), churn.content_digest());
    assert_eq!(credit.content_digest(), credit.clone().content_digest());
    // Seed changes change the digest (they change every generated bit).
    let reseeded = Workload::Synthetic(ScenarioSpec::credit(0x0dd5_eed5 + 1));
    assert_ne!(credit.content_digest(), reseeded.content_digest());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated row satisfies its declared schema/domain: in
    /// bounds, integral where ordinal, 0/1 where binary — for arbitrary
    /// seeds and slice indices, in both builtin scenarios.
    #[test]
    fn generated_rows_satisfy_their_schema(seed in 0u64..1_000, slice in 0usize..12) {
        for spec in [
            ScenarioSpec::credit(seed).with_rows_per_slice(200),
            ScenarioSpec::churn(seed).with_rows_per_slice(200),
        ] {
            let gen = SyntheticGenerator::new(&spec, 2);
            let schema = gen.schema().clone();
            let data = gen.slice(slice);
            for i in 0..data.len() {
                let row = data.row(i);
                prop_assert!(schema.row_in_bounds(row));
                for (v, meta) in row.iter().zip(schema.features()) {
                    match meta.kind {
                        FeatureKind::Continuous => {}
                        FeatureKind::Ordinal => {
                            prop_assert_eq!(v.fract(), 0.0, "{} not integral", meta.name)
                        }
                        FeatureKind::Binary => {
                            prop_assert!(*v == 0.0 || *v == 1.0)
                        }
                    }
                }
            }
        }
    }

    /// Cohort profiles satisfy the schema too, and user ids are unique.
    #[test]
    fn cohort_profiles_satisfy_schema(seed in 0u64..1_000) {
        let spec = ScenarioSpec::credit(seed).with_cohort_size(64);
        let gen = SyntheticGenerator::new(&spec, 2);
        let schema = gen.schema().clone();
        let cohort = gen.cohort();
        let mut seen = std::collections::HashSet::new();
        for user in &cohort {
            prop_assert!(schema.row_in_bounds(&user.profile));
            prop_assert!(seen.insert(user.user_id.clone()), "dup id {}", user.user_id);
        }
    }

    /// The oracle is a probability, and drifting the slice index moves
    /// it (concept drift is real, monotone step by step in expectation).
    #[test]
    fn oracle_probability_well_formed(seed in 0u64..1_000) {
        let spec = ScenarioSpec::credit(seed);
        let gen = SyntheticGenerator::new(&spec, 1);
        let data = gen.slice(0);
        for i in 0..data.len().min(50) {
            for s in [0usize, 4, 9] {
                let p = gen.oracle_probability(data.row(i), s);
                prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
            }
        }
    }
}
