//! Seeded, bit-deterministic synthetic population generator.
//!
//! Where [`crate::lendingclub`] is one hand-written workload, this module
//! turns a declarative [`ScenarioSpec`]
//! into data: labeled training slices and identified serving cohorts, at
//! any size from 8 users to millions.
//!
//! ## Determinism contract
//!
//! Generation is **bit-deterministic for every thread count**: each row
//! derives its own SplitMix64 stream from `(spec seed, stream tag, row
//! index)` *before* work is dispatched to the `jit-runtime` pool — the
//! same fork-streams-before-dispatch discipline training uses, taken to
//! its strongest form (a per-row pure function). No draw ever depends on
//! which worker ran a neighbouring row or how the pool chunked the index
//! space, so `generate` with 1, 2 or 8 threads — or in two different
//! processes — produces byte-identical [`Dataset`]s and cohorts.
//!
//! Cohort membership filters (e.g. "rejected at present") use
//! deterministic rejection sampling: attempt indices are drawn in order
//! and the first `size` accepted attempts win, which is again
//! independent of the parallel schedule.

use crate::scenario::{CohortFilter, ScenarioSpec};
use crate::schema::FeatureSchema;
use jit_math::digest::{splitmix64, Digest, DigestWriter};
use jit_math::rng::Rng;
use jit_ml::Dataset;
use jit_runtime::Runtime;

/// A parameterized sampling distribution for one feature.
///
/// `shift` (covariate drift, in units of the distribution's location
/// parameter) moves the location: the mean for [`Distribution::Normal`],
/// the bounds for [`Distribution::Uniform`], the log-location for
/// [`Distribution::LogNormal`] and the success probability (clamped to
/// `[0, 1]`) for [`Distribution::Bernoulli`].
#[derive(Clone, Debug, PartialEq)]
pub enum Distribution {
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Gaussian.
    Normal {
        /// Location.
        mean: f64,
        /// Spread (must be finite and non-negative).
        std_dev: f64,
    },
    /// `exp(Normal(location, scale))` — heavy-tailed positives (incomes,
    /// balances, loan amounts).
    LogNormal {
        /// Log-space location (`exp(location)` is the median).
        location: f64,
        /// Log-space spread.
        scale: f64,
    },
    /// `1.0` with probability `p`, else `0.0`.
    Bernoulli {
        /// Success probability.
        p: f64,
    },
}

impl Distribution {
    /// Draws one value with the location shifted by `shift`.
    pub fn sample(&self, rng: &mut Rng, shift: f64) -> f64 {
        match *self {
            Distribution::Uniform { lo, hi } => rng.uniform(lo + shift, hi + shift),
            Distribution::Normal { mean, std_dev } => {
                rng.normal_with(mean + shift, std_dev)
            }
            Distribution::LogNormal { location, scale } => {
                rng.normal_with(location + shift, scale).exp()
            }
            Distribution::Bernoulli { p } => {
                if rng.bernoulli((p + shift).clamp(0.0, 1.0)) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Folds every parameter into a content digest.
    pub fn digest_into(&self, w: &mut DigestWriter) {
        match *self {
            Distribution::Uniform { lo, hi } => {
                w.write_u64(0);
                w.write_f64(lo);
                w.write_f64(hi);
            }
            Distribution::Normal { mean, std_dev } => {
                w.write_u64(1);
                w.write_f64(mean);
                w.write_f64(std_dev);
            }
            Distribution::LogNormal { location, scale } => {
                w.write_u64(2);
                w.write_f64(location);
                w.write_f64(scale);
            }
            Distribution::Bernoulli { p } => {
                w.write_u64(3);
                w.write_f64(p);
            }
        }
    }
}

/// The label model: a drifting logistic oracle over normalized features.
///
/// Each feature is normalized to roughly `[-1, 1]` by its schema bounds
/// (`(x - mid) / halfspan`), so weights are comparable across features
/// regardless of raw units. At history slice `s` the oracle score is
///
/// ```text
/// z(x, s) = bias + bias_drift·s + Σᵢ (weightᵢ + weight_driftᵢ·s) · normᵢ(xᵢ)
/// p(x, s) = σ(sharpness · z(x, s))
/// ```
///
/// so non-zero `weight_drift` entries are **concept drift**: the same
/// applicant's approval probability changes as slices advance, which is
/// what the recourse-invalidation harness measures.
#[derive(Clone, Debug, PartialEq)]
pub struct LabelModel {
    /// Per-feature weight at slice 0 (length = number of features).
    pub weights: Vec<f64>,
    /// Intercept at slice 0.
    pub bias: f64,
    /// Additive per-slice weight drift (length = number of features).
    pub weight_drift: Vec<f64>,
    /// Additive per-slice intercept drift.
    pub bias_drift: f64,
    /// Logistic steepness; larger = less label noise.
    pub sharpness: f64,
    /// `true` samples labels from `Bernoulli(p)` (noisy, like real
    /// decisions); `false` thresholds at `p >= 0.5` (noise-free oracle).
    pub noisy: bool,
}

impl LabelModel {
    /// Folds every parameter into a content digest.
    pub fn digest_into(&self, w: &mut DigestWriter) {
        w.write_f64s(&self.weights);
        w.write_f64(self.bias);
        w.write_f64s(&self.weight_drift);
        w.write_f64(self.bias_drift);
        w.write_f64(self.sharpness);
        w.write_bool(self.noisy);
    }
}

/// One identified member of a generated serving cohort.
#[derive(Clone, Debug, PartialEq)]
pub struct CohortUser {
    /// Name of the cohort the user belongs to.
    pub cohort: String,
    /// Stable unique user id (`"{cohort}-{index:06}"`).
    pub user_id: String,
    /// The user's present profile, sanitized into the schema's domain.
    pub profile: Vec<f64>,
}

/// Stream tags keep row streams for different purposes disjoint even at
/// equal indices.
const SLICE_TAG: u64 = 0x534c_4943_455f_5441; // "SLICE_TA"
const COHORT_TAG: u64 = 0x434f_484f_5254_5f54; // "COHORT_T"

/// Pure per-row stream derivation: the whole determinism contract hangs
/// on this being a function of `(seed, stream, index)` only.
fn stream_seed(seed: u64, stream: u64, index: u64) -> u64 {
    splitmix64(
        splitmix64(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9),
    )
}

/// The generator: a validated [`ScenarioSpec`] plus a `jit-runtime` pool.
///
/// All outputs are bit-identical for every `threads` value (see the
/// module docs for the contract).
pub struct SyntheticGenerator {
    spec: ScenarioSpec,
    schema: FeatureSchema,
    runtime: Runtime,
}

impl SyntheticGenerator {
    /// Builds a generator; `threads` follows the `jit-runtime`
    /// convention (`0` = one per core, `1` = serial).
    ///
    /// # Panics
    /// When the spec fails [`ScenarioSpec::validate`] — generating from
    /// an inconsistent spec would silently mis-label.
    pub fn new(spec: &ScenarioSpec, threads: usize) -> Self {
        if let Err(why) = spec.validate() {
            panic!("invalid scenario spec {:?}: {why}", spec.name);
        }
        SyntheticGenerator {
            schema: spec.schema(),
            spec: spec.clone(),
            runtime: Runtime::new(threads),
        }
    }

    /// The spec this generator realizes.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The schema built from the spec's feature metadata.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Samples one profile at absolute slice index `slice` (covariate
    /// drift applied), sanitized into the schema domain.
    fn sample_row(&self, rng: &mut Rng, slice: usize) -> Vec<f64> {
        self.spec
            .features
            .iter()
            .map(|f| {
                let shift = f.drift_per_slice * slice as f64;
                f.meta.sanitize(f.dist.sample(rng, shift))
            })
            .collect()
    }

    /// The oracle's approval probability for `profile` under the label
    /// model at absolute slice index `slice` (concept drift applied).
    pub fn oracle_probability(&self, profile: &[f64], slice: usize) -> f64 {
        let label = &self.spec.label;
        let s = slice as f64;
        let mut z = label.bias + label.bias_drift * s;
        for (i, f) in self.spec.features.iter().enumerate() {
            let mid = (f.meta.min + f.meta.max) / 2.0;
            let halfspan = (f.meta.max - f.meta.min) / 2.0;
            let norm = if halfspan > 0.0 {
                (profile[i] - mid) / halfspan
            } else {
                profile[i] - mid
            };
            z += (label.weights[i] + label.weight_drift[i] * s) * norm;
        }
        1.0 / (1.0 + (-label.sharpness * z).exp())
    }

    /// Generates the labeled training slice at absolute index `slice`
    /// (`rows_per_slice` rows), in parallel, bit-identically for any
    /// thread count.
    pub fn slice(&self, slice: usize) -> Dataset {
        let n = self.spec.rows_per_slice;
        let generated = self.runtime.parallel_map(n, |i| {
            let mut rng = Rng::seeded(stream_seed(
                self.spec.seed,
                SLICE_TAG ^ slice as u64,
                i as u64,
            ));
            let row = self.sample_row(&mut rng, slice);
            let p = self.oracle_probability(&row, slice);
            let label = if self.spec.label.noisy { rng.bernoulli(p) } else { p >= 0.5 };
            (row, label)
        });
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for (row, label) in generated {
            rows.push(row);
            labels.push(label);
        }
        Dataset::from_rows(rows, labels)
    }

    /// The training history at drift step `k`: `history_slices` slices
    /// starting at absolute index `k * drift.slices_per_step`. Step 0 is
    /// the initial training window; each step slides it forward, which
    /// moves both covariate and concept drift through the models.
    pub fn history(&self, drift_step: usize) -> Vec<Dataset> {
        let first = drift_step * self.spec.drift.slices_per_step;
        (first..first + self.spec.history_slices).map(|s| self.slice(s)).collect()
    }

    /// The absolute slice index cohort members are sampled at (the last
    /// slice of the step-0 training window — "the present").
    pub fn present_slice(&self) -> usize {
        self.spec.history_slices.saturating_sub(1)
    }

    /// Generates every declared cohort, in spec order, with stable user
    /// ids. Filtered cohorts use deterministic rejection sampling (see
    /// the module docs); an infeasible filter (acceptance below ~1/64)
    /// panics rather than looping forever.
    pub fn cohort(&self) -> Vec<CohortUser> {
        let present = self.present_slice();
        let mut users = Vec::new();
        for (c_idx, cohort) in self.spec.cohorts.iter().enumerate() {
            let mut accepted: Vec<Vec<f64>> = Vec::with_capacity(cohort.size);
            let wave = cohort.size.clamp(1024, 1 << 16);
            let mut next_attempt = 0usize;
            let max_attempts = cohort.size.saturating_mul(64).max(1 << 16);
            while accepted.len() < cohort.size {
                assert!(
                    next_attempt < max_attempts,
                    "cohort {:?} filter accepts too few profiles \
                     ({}/{} after {} attempts)",
                    cohort.name,
                    accepted.len(),
                    cohort.size,
                    next_attempt,
                );
                let rows = self.runtime.parallel_map(wave, |j| {
                    let attempt = (next_attempt + j) as u64;
                    let mut rng = Rng::seeded(stream_seed(
                        self.spec.seed,
                        COHORT_TAG ^ c_idx as u64,
                        attempt,
                    ));
                    let row = self.sample_row(&mut rng, present);
                    let p = self.oracle_probability(&row, present);
                    let keep = match cohort.filter {
                        CohortFilter::All => true,
                        CohortFilter::Rejected => p < 0.5,
                        CohortFilter::Approved => p >= 0.5,
                    };
                    keep.then_some(row)
                });
                for row in rows.into_iter().flatten() {
                    if accepted.len() == cohort.size {
                        break;
                    }
                    accepted.push(row);
                }
                next_attempt += wave;
            }
            users.extend(accepted.into_iter().enumerate().map(|(i, profile)| {
                CohortUser {
                    cohort: cohort.name.clone(),
                    user_id: format!("{}-{i:06}", cohort.name),
                    profile,
                }
            }));
        }
        users
    }

    /// A digest of the generated population at `drift_step`: every
    /// history row, label and cohort profile, bit for bit. Two runs (or
    /// two processes) agree on this digest exactly when generation was
    /// bit-identical — the comparison basis of the determinism suites.
    pub fn population_digest(&self, drift_step: usize) -> Digest {
        let mut w = DigestWriter::new("jit-data/synth-population");
        w.write_digest(self.spec.content_digest());
        w.write_usize(drift_step);
        for slice in self.history(drift_step) {
            w.write_usize(slice.len());
            for i in 0..slice.len() {
                w.write_f64s(slice.row(i));
                w.write_bool(slice.label(i));
            }
        }
        let cohort = self.cohort();
        w.write_usize(cohort.len());
        for user in &cohort {
            w.write_str(&user.user_id);
            w.write_f64s(&user.profile);
        }
        w.finish()
    }
}
