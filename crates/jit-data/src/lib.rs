//! # jit-data
//!
//! Data substrate for JustInTime: feature schemas, the synthetic
//! Lending-Club-like workload, and the declarative scenario layer
//! ([`scenario`] + [`synth`]) that generates arbitrary seeded
//! populations — from 8 users to millions — bit-identically for any
//! thread count.
//!
//! The paper demonstrates over the *Lending Club Loan Data* Kaggle dataset
//! (~1M loan applications, 2007–2018). That dataset is not redistributable
//! here, so this crate generates a synthetic equivalent with the same
//! statistical structure the system exercises (see DESIGN.md §2):
//!
//! * the paper's six features — age, household status, annual income,
//!   monthly debt, job seniority, requested loan amount;
//! * timestamped labeled rows spanning 2007–2018;
//! * **concept drift** in the approval rule, including the paper's
//!   motivating example: for applicants over 30, income requirements relax
//!   over the years while debt requirements tighten (Example I.1's "John");
//! * covariate drift (wage growth, rising debt loads).
//!
//! Everything is seeded and parameterized, so experiments are reproducible.

#![forbid(unsafe_code)]

pub mod csv;
pub mod lendingclub;
pub mod scenario;
pub mod schema;
pub mod synth;

pub use lendingclub::{LendingClubGenerator, LendingClubParams, LoanRecord};
pub use scenario::{
    CohortFilter, CohortSpec, DriftSchedule, LendingClubScenario, ScenarioRegistry,
    ScenarioSpec, SyntheticFeature, Workload,
};
pub use schema::{FeatureKind, FeatureMeta, FeatureSchema, Mutability, TemporalSpec};
pub use synth::{CohortUser, Distribution, LabelModel, SyntheticGenerator};
