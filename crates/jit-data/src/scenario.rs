//! Declarative scenario specs and the scenario registry.
//!
//! Motivated by Tempo-style declarative workload specs (see PAPERS.md):
//! a scenario is **data, not code**. [`ScenarioSpec`] declares the
//! feature schema (bounds, kinds, temporal evolution, mutability — the
//! same [`FeatureMeta`] the engine's domain constraints are derived
//! from), per-feature sampling distributions with covariate drift, a
//! drifting logistic label model (concept drift), a drift schedule for
//! retraining, cohort mixes and the serving time horizon. Everything
//! else — generation, training, serving, invalidation measurement — is
//! generic machinery driven by the spec.
//!
//! What stays code: the two irreducibly procedural pieces. Sampling
//! itself lives in [`crate::synth`] (with its bit-determinism
//! contract), and the hand-written Lending Club workload
//! ([`crate::lendingclub`], whose oracle encodes the paper's
//! Example I.1 verbatim) joins the registry as a [`Workload`] variant
//! rather than being forced through the declarative mold.
//!
//! [`ScenarioRegistry`] names both kinds: look a workload up by name
//! (`"lendingclub"`, `"synth/credit"`, …), get slices and cohorts out,
//! and feed them to the serving stack. The registry is how bins, CI
//! smokes and benchmarks reference scenarios without hard-coding them.

use crate::lendingclub::{LendingClubGenerator, LendingClubParams};
use crate::schema::{FeatureMeta, FeatureSchema};
use crate::synth::{CohortUser, Distribution, LabelModel, SyntheticGenerator};
use jit_math::digest::{Digest, DigestWriter};
use jit_ml::Dataset;
use std::collections::BTreeMap;

/// One declared feature: serving metadata plus its generative model.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticFeature {
    /// Schema metadata (name, kind, bounds, temporal spec, mutability) —
    /// exactly what serving derives domain constraints from.
    pub meta: FeatureMeta,
    /// Sampling distribution at slice 0.
    pub dist: Distribution,
    /// Additive location drift per history slice (covariate drift), in
    /// the units of the distribution's location parameter.
    pub drift_per_slice: f64,
}

/// How membership in a [`CohortSpec`] is decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CohortFilter {
    /// Every sampled profile joins.
    All,
    /// Only profiles the present-slice oracle rejects (`p < 0.5`) — the
    /// population recourse is *for*.
    Rejected,
    /// Only profiles the present-slice oracle approves.
    Approved,
}

/// One named cohort in the scenario's serving mix.
#[derive(Clone, Debug, PartialEq)]
pub struct CohortSpec {
    /// Cohort name; becomes the user-id prefix, so it must be unique
    /// within the spec.
    pub name: String,
    /// Number of members to generate.
    pub size: usize,
    /// Membership filter.
    pub filter: CohortFilter,
}

/// The retraining schedule the invalidation harness advances through.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftSchedule {
    /// Number of retrain steps after the initial training.
    pub steps: usize,
    /// How many slices the training window slides per step (how fast
    /// drift moves through the models).
    pub slices_per_step: usize,
    /// Time points `t < pinned_time_points` whose models (and digests)
    /// are **pinned** across retrains — partial drift. Pinned time
    /// points replay on refresh, so invalidation reports exercise the
    /// replayed / surviving middle ground instead of classifying every
    /// pair as overturned; `0` lets every model drift.
    pub pinned_time_points: usize,
}

/// A fully declarative synthetic scenario. See the module docs for the
/// declarative-vs-code boundary and [`crate::synth`] for the generator's
/// determinism contract.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Registry name (convention: `"synth/<something>"`).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// The features, in schema order.
    pub features: Vec<SyntheticFeature>,
    /// The drifting label oracle.
    pub label: LabelModel,
    /// The retraining schedule.
    pub drift: DriftSchedule,
    /// The serving cohorts, generated at the present slice.
    pub cohorts: Vec<CohortSpec>,
    /// Slices per training window.
    pub history_slices: usize,
    /// Labeled rows per slice.
    pub rows_per_slice: usize,
    /// Serving horizon `T` (time points `0..=T`).
    pub horizon: usize,
    /// Calendar year of `t = 0` (presentation only).
    pub start_year: u32,
    /// Base seed; every generated bit derives from it.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The serving schema declared by the spec.
    pub fn schema(&self) -> FeatureSchema {
        FeatureSchema::new(self.features.iter().map(|f| f.meta.clone()).collect())
    }

    /// Total declared cohort size.
    pub fn total_cohort_size(&self) -> usize {
        self.cohorts.iter().map(|c| c.size).sum()
    }

    /// Structural consistency check; [`SyntheticGenerator::new`] refuses
    /// specs that fail it.
    ///
    /// # Errors
    /// A human-readable description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        let d = self.features.len();
        if d == 0 {
            return Err("a scenario needs at least one feature".into());
        }
        if self.label.weights.len() != d || self.label.weight_drift.len() != d {
            return Err(format!(
                "label model is over {} weights but the spec declares {d} features",
                self.label.weights.len().max(self.label.weight_drift.len()),
            ));
        }
        if !(self.label.sharpness.is_finite() && self.label.sharpness > 0.0) {
            return Err("label sharpness must be finite and positive".into());
        }
        if self.rows_per_slice == 0 {
            return Err("rows_per_slice must be positive".into());
        }
        if self.history_slices < 2 {
            return Err("a training window needs at least 2 slices".into());
        }
        if self.horizon == 0 {
            return Err("the serving horizon must be at least 1".into());
        }
        if self.drift.slices_per_step == 0 {
            return Err("drift.slices_per_step must be positive".into());
        }
        let mut names = std::collections::HashSet::new();
        for c in &self.cohorts {
            if c.name.is_empty() || c.size == 0 {
                return Err(format!("cohort {:?} must be named and non-empty", c.name));
            }
            if !names.insert(c.name.as_str()) {
                return Err(format!("duplicate cohort name {:?}", c.name));
            }
        }
        Ok(())
    }

    /// Content digest over every generation-relevant field: two specs
    /// with equal digests generate bit-identical populations.
    pub fn content_digest(&self) -> Digest {
        let mut w = DigestWriter::new("jit-data/scenario-spec");
        w.write_str(&self.name);
        w.write_usize(self.features.len());
        for f in &self.features {
            // The meta fields travel through the schema digest below;
            // here only the generative side.
            f.dist.digest_into(&mut w);
            w.write_f64(f.drift_per_slice);
        }
        w.write_digest(self.schema().content_digest());
        self.label.digest_into(&mut w);
        w.write_usize(self.drift.steps);
        w.write_usize(self.drift.slices_per_step);
        w.write_usize(self.drift.pinned_time_points);
        w.write_usize(self.cohorts.len());
        for c in &self.cohorts {
            w.write_str(&c.name);
            w.write_usize(c.size);
            w.write_u64(match c.filter {
                CohortFilter::All => 0,
                CohortFilter::Rejected => 1,
                CohortFilter::Approved => 2,
            });
        }
        w.write_usize(self.history_slices);
        w.write_usize(self.rows_per_slice);
        w.write_usize(self.horizon);
        w.write_u64(u64::from(self.start_year));
        w.write_u64(self.seed);
        w.finish()
    }

    /// Rescales the cohort mix to `total` members, preserving the
    /// declared proportions (largest-remainder rounding, every cohort
    /// kept non-empty). The knob behind `jit-scenariorun --users`.
    #[must_use]
    pub fn with_cohort_size(mut self, total: usize) -> Self {
        let current: usize = self.total_cohort_size();
        if current == 0 || self.cohorts.is_empty() || total == 0 {
            return self;
        }
        let n = self.cohorts.len();
        let mut sizes: Vec<usize> = Vec::with_capacity(n);
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
        for (i, c) in self.cohorts.iter().enumerate() {
            let exact = total as f64 * c.size as f64 / current as f64;
            let floor = (exact.floor() as usize).max(1);
            sizes.push(floor);
            remainders.push((i, exact - exact.floor()));
        }
        // Hand out the remaining members by descending fractional part
        // (ties broken by spec order, so the result is deterministic).
        remainders
            .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut assigned: usize = sizes.iter().sum();
        let mut k = 0;
        while assigned < total {
            sizes[remainders[k % n].0] += 1;
            assigned += 1;
            k += 1;
        }
        while assigned > total {
            // Over-assignment can only come from the max(1) floors; trim
            // the largest cohorts first, never below one member.
            let i = (0..n).max_by_key(|&i| sizes[i]).unwrap_or(0);
            if sizes[i] <= 1 {
                break;
            }
            sizes[i] -= 1;
            assigned -= 1;
        }
        for (c, size) in self.cohorts.iter_mut().zip(sizes) {
            c.size = size;
        }
        self
    }

    /// Overrides the number of drift steps (the `--steps` knob).
    #[must_use]
    pub fn with_drift_steps(mut self, steps: usize) -> Self {
        self.drift.steps = steps;
        self
    }

    /// Overrides how many leading time points are pinned across
    /// retrains ([`DriftSchedule::pinned_time_points`]).
    #[must_use]
    pub fn with_pinned_time_points(mut self, pinned: usize) -> Self {
        self.drift.pinned_time_points = pinned;
        self
    }

    /// Overrides the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the rows generated per training slice.
    #[must_use]
    pub fn with_rows_per_slice(mut self, rows: usize) -> Self {
        self.rows_per_slice = rows;
        self
    }

    /// The built-in credit-underwriting scenario: eight features with
    /// covariate drift (wage growth, rising debt) and concept drift
    /// (debt weighting tightens, score weighting rises), a mostly-
    /// rejected serving mix, horizon 3.
    pub fn credit(seed: u64) -> Self {
        use crate::schema::{FeatureKind, Mutability, TemporalSpec};
        let f = |meta, dist, drift_per_slice| SyntheticFeature {
            meta,
            dist,
            drift_per_slice,
        };
        ScenarioSpec {
            name: "synth/credit".into(),
            description: "drifting credit underwriting over 8 features".into(),
            features: vec![
                f(
                    FeatureMeta::new(
                        "age",
                        FeatureKind::Ordinal,
                        18.0,
                        80.0,
                        TemporalSpec::Linear { per_period: 1.0 },
                        Mutability::Immutable,
                    ),
                    Distribution::Normal { mean: 38.0, std_dev: 11.0 },
                    0.0,
                ),
                f(
                    FeatureMeta::new(
                        "income",
                        FeatureKind::Continuous,
                        0.0,
                        300_000.0,
                        TemporalSpec::Compound { rate: 0.03 },
                        Mutability::Actionable,
                    ),
                    Distribution::LogNormal { location: 10.85, scale: 0.45 },
                    0.01,
                ),
                f(
                    FeatureMeta::new(
                        "monthly_debt",
                        FeatureKind::Continuous,
                        0.0,
                        20_000.0,
                        TemporalSpec::Static,
                        Mutability::Actionable,
                    ),
                    Distribution::Normal { mean: 1_800.0, std_dev: 700.0 },
                    15.0,
                ),
                f(
                    FeatureMeta::new(
                        "savings",
                        FeatureKind::Continuous,
                        0.0,
                        500_000.0,
                        TemporalSpec::Compound { rate: 0.02 },
                        Mutability::Actionable,
                    ),
                    Distribution::LogNormal { location: 9.2, scale: 0.8 },
                    0.005,
                ),
                f(
                    FeatureMeta::new(
                        "employment_years",
                        FeatureKind::Ordinal,
                        0.0,
                        45.0,
                        TemporalSpec::Linear { per_period: 1.0 },
                        Mutability::Actionable,
                    ),
                    Distribution::Normal { mean: 8.0, std_dev: 6.0 },
                    0.0,
                ),
                f(
                    FeatureMeta::new(
                        "homeowner",
                        FeatureKind::Binary,
                        0.0,
                        1.0,
                        TemporalSpec::Static,
                        Mutability::Immutable,
                    ),
                    Distribution::Bernoulli { p: 0.55 },
                    0.003,
                ),
                f(
                    FeatureMeta::new(
                        "loan_amount",
                        FeatureKind::Continuous,
                        1_000.0,
                        80_000.0,
                        TemporalSpec::Static,
                        Mutability::Actionable,
                    ),
                    Distribution::LogNormal { location: 9.6, scale: 0.5 },
                    0.004,
                ),
                f(
                    FeatureMeta::new(
                        "credit_score",
                        FeatureKind::Ordinal,
                        300.0,
                        850.0,
                        TemporalSpec::Linear { per_period: 4.0 },
                        Mutability::Actionable,
                    ),
                    Distribution::Normal { mean: 660.0, std_dev: 70.0 },
                    0.4,
                ),
            ],
            label: LabelModel {
                weights: vec![0.1, 1.2, -1.0, 0.5, 0.4, 0.25, -0.9, 1.4],
                bias: -0.55,
                weight_drift: vec![0.0, -0.03, -0.06, 0.0, 0.0, 0.0, 0.0, 0.04],
                bias_drift: -0.01,
                sharpness: 2.0,
                noisy: true,
            },
            drift: DriftSchedule {
                steps: 2,
                slices_per_step: 1,
                pinned_time_points: 2,
            },
            cohorts: vec![
                CohortSpec {
                    name: "rejected".into(),
                    size: 96,
                    filter: CohortFilter::Rejected,
                },
                CohortSpec {
                    name: "walk-ins".into(),
                    size: 32,
                    filter: CohortFilter::All,
                },
            ],
            history_slices: 8,
            rows_per_slice: 2_500,
            horizon: 3,
            start_year: 2026,
            seed,
        }
    }

    /// The committed population-scale spec: [`ScenarioSpec::credit`]
    /// with a 100 000-user cohort mix. Generation stays bit-identical
    /// across thread counts and reruns at this size (locked down by the
    /// determinism suites); serve it through `ShardedService` via
    /// `jit-scenariorun` when you want the full end-to-end run.
    pub fn credit_100k() -> Self {
        let mut spec = Self::credit(0x0dd5_eed5).with_cohort_size(100_000);
        spec.name = "synth/credit-100k".into();
        spec.description = "the credit scenario at a 100k-user serving cohort".into();
        spec
    }

    /// The built-in subscription-churn scenario: six features, retention
    /// label, price sensitivity sharpening over time.
    pub fn churn(seed: u64) -> Self {
        use crate::schema::{FeatureKind, Mutability, TemporalSpec};
        let f = |meta, dist, drift_per_slice| SyntheticFeature {
            meta,
            dist,
            drift_per_slice,
        };
        ScenarioSpec {
            name: "synth/churn".into(),
            description: "subscription retention under rising price sensitivity".into(),
            features: vec![
                f(
                    FeatureMeta::new(
                        "tenure_months",
                        FeatureKind::Ordinal,
                        0.0,
                        240.0,
                        TemporalSpec::Linear { per_period: 12.0 },
                        Mutability::Immutable,
                    ),
                    Distribution::LogNormal { location: 3.0, scale: 0.9 },
                    0.2,
                ),
                f(
                    FeatureMeta::new(
                        "monthly_fee",
                        FeatureKind::Continuous,
                        5.0,
                        200.0,
                        TemporalSpec::Compound { rate: 0.05 },
                        Mutability::Actionable,
                    ),
                    Distribution::Normal { mean: 42.0, std_dev: 18.0 },
                    0.6,
                ),
                f(
                    FeatureMeta::new(
                        "weekly_usage_hours",
                        FeatureKind::Continuous,
                        0.0,
                        80.0,
                        TemporalSpec::Static,
                        Mutability::Actionable,
                    ),
                    Distribution::LogNormal { location: 1.6, scale: 0.7 },
                    -0.01,
                ),
                f(
                    FeatureMeta::new(
                        "support_tickets",
                        FeatureKind::Ordinal,
                        0.0,
                        50.0,
                        TemporalSpec::Static,
                        Mutability::Actionable,
                    ),
                    Distribution::LogNormal { location: 0.3, scale: 1.0 },
                    0.01,
                ),
                f(
                    FeatureMeta::new(
                        "autopay",
                        FeatureKind::Binary,
                        0.0,
                        1.0,
                        TemporalSpec::Static,
                        Mutability::Actionable,
                    ),
                    Distribution::Bernoulli { p: 0.4 },
                    0.005,
                ),
                f(
                    FeatureMeta::new(
                        "discount_rate",
                        FeatureKind::Continuous,
                        0.0,
                        0.5,
                        TemporalSpec::Static,
                        Mutability::Actionable,
                    ),
                    Distribution::Uniform { lo: 0.0, hi: 0.3 },
                    0.002,
                ),
            ],
            label: LabelModel {
                weights: vec![0.8, -0.9, 1.1, -0.7, 0.5, 0.6],
                bias: 0.15,
                weight_drift: vec![0.0, -0.05, 0.02, 0.0, 0.0, 0.03],
                bias_drift: -0.015,
                sharpness: 1.8,
                noisy: true,
            },
            drift: DriftSchedule {
                steps: 2,
                slices_per_step: 1,
                pinned_time_points: 0,
            },
            cohorts: vec![CohortSpec {
                name: "at-risk".into(),
                size: 64,
                filter: CohortFilter::Rejected,
            }],
            history_slices: 6,
            rows_per_slice: 2_000,
            horizon: 3,
            start_year: 2026,
            seed,
        }
    }
}

/// The hand-written Lending Club workload packaged for the registry:
/// the same [`LendingClubGenerator`] the rest of the repo uses, with the
/// serving knobs a registry entry needs (horizon, drift schedule,
/// cohort size). Drift step `k` extends the history by `k` more years —
/// the generator's oracle already drifts year over year (Example I.1),
/// so sliding the window retrains genuinely different models.
#[derive(Clone, Debug, PartialEq)]
pub struct LendingClubScenario {
    /// Generator parameters.
    pub params: LendingClubParams,
    /// Serving horizon `T`.
    pub horizon: usize,
    /// Retrain steps (each adds one year of history).
    pub drift_steps: usize,
    /// Members of the served cohort (rejected applicants from the last
    /// training year).
    pub cohort_size: usize,
}

impl Default for LendingClubScenario {
    fn default() -> Self {
        LendingClubScenario {
            params: LendingClubParams::default(),
            horizon: 3,
            drift_steps: 2,
            cohort_size: 64,
        }
    }
}

/// A named workload: either a declarative synthetic scenario or the
/// code-defined Lending Club generator, behind one interface the
/// serving/invalidation machinery consumes.
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// A declarative [`ScenarioSpec`] realized by [`SyntheticGenerator`].
    Synthetic(ScenarioSpec),
    /// The hand-written Lending Club workload.
    LendingClub(LendingClubScenario),
}

impl Workload {
    /// The registry name.
    pub fn name(&self) -> &str {
        match self {
            Workload::Synthetic(spec) => &spec.name,
            Workload::LendingClub(_) => "lendingclub",
        }
    }

    /// The serving schema.
    pub fn schema(&self) -> FeatureSchema {
        match self {
            Workload::Synthetic(spec) => spec.schema(),
            Workload::LendingClub(lc) => {
                LendingClubGenerator::new(lc.params.clone()).schema().clone()
            }
        }
    }

    /// The serving horizon `T`.
    pub fn horizon(&self) -> usize {
        match self {
            Workload::Synthetic(spec) => spec.horizon,
            Workload::LendingClub(lc) => lc.horizon,
        }
    }

    /// Calendar year of `t = 0` (presentation only).
    pub fn start_year(&self) -> u32 {
        match self {
            Workload::Synthetic(spec) => spec.start_year,
            Workload::LendingClub(lc) => lc.params.end_year + 1,
        }
    }

    /// Number of retrain steps in the drift schedule.
    pub fn drift_steps(&self) -> usize {
        match self {
            Workload::Synthetic(spec) => spec.drift.steps,
            Workload::LendingClub(lc) => lc.drift_steps,
        }
    }

    /// Leading time points pinned across retrains
    /// ([`DriftSchedule::pinned_time_points`]). The Lending Club
    /// workload has no pinning: its oracle drifts every year.
    pub fn pinned_time_points(&self) -> usize {
        match self {
            Workload::Synthetic(spec) => spec.drift.pinned_time_points,
            Workload::LendingClub(_) => 0,
        }
    }

    /// The training slices at drift step `k` (step 0 is the initial
    /// window). Generation is bit-identical for every `threads` value.
    pub fn history(&self, drift_step: usize, threads: usize) -> Vec<Dataset> {
        match self {
            Workload::Synthetic(spec) => {
                SyntheticGenerator::new(spec, threads).history(drift_step)
            }
            Workload::LendingClub(lc) => {
                let params = LendingClubParams {
                    end_year: lc.params.end_year + drift_step as u32,
                    ..lc.params.clone()
                };
                let gen = LendingClubGenerator::new(params);
                gen.years()
                    .into_iter()
                    .map(|y| LendingClubGenerator::to_dataset(&gen.records_for_year(y)))
                    .collect()
            }
        }
    }

    /// The identified serving cohort, generated at the present slice.
    pub fn cohort(&self, threads: usize) -> Vec<CohortUser> {
        match self {
            Workload::Synthetic(spec) => {
                SyntheticGenerator::new(spec, threads).cohort()
            }
            Workload::LendingClub(lc) => {
                let gen = LendingClubGenerator::new(lc.params.clone());
                let year = lc.params.end_year;
                let rejected: Vec<Vec<f64>> = gen
                    .records_for_year(year)
                    .into_iter()
                    .filter(|r| gen.oracle_probability(&r.features, year) < 0.5)
                    .map(|r| r.features)
                    .take(lc.cohort_size)
                    .collect();
                assert!(
                    rejected.len() == lc.cohort_size,
                    "lendingclub year {year} has only {} rejected applicants, \
                     cohort needs {}; raise records_per_year",
                    rejected.len(),
                    lc.cohort_size,
                );
                rejected
                    .into_iter()
                    .enumerate()
                    .map(|(i, profile)| CohortUser {
                        cohort: "lc-rejected".into(),
                        user_id: format!("lc-rejected-{i:06}"),
                        profile,
                    })
                    .collect()
            }
        }
    }

    /// Content digest of the workload definition.
    pub fn content_digest(&self) -> Digest {
        match self {
            Workload::Synthetic(spec) => spec.content_digest(),
            Workload::LendingClub(lc) => {
                let mut w = DigestWriter::new("jit-data/lendingclub-scenario");
                w.write_u64(u64::from(lc.params.start_year));
                w.write_u64(u64::from(lc.params.end_year));
                w.write_usize(lc.params.records_per_year);
                w.write_f64(lc.params.oracle_sharpness);
                w.write_u64(lc.params.seed);
                w.write_usize(lc.horizon);
                w.write_usize(lc.drift_steps);
                w.write_usize(lc.cohort_size);
                w.finish()
            }
        }
    }

    /// Rescales the served cohort to `total` users (see
    /// [`ScenarioSpec::with_cohort_size`]).
    #[must_use]
    pub fn with_cohort_size(self, total: usize) -> Self {
        match self {
            Workload::Synthetic(spec) => {
                Workload::Synthetic(spec.with_cohort_size(total))
            }
            Workload::LendingClub(mut lc) => {
                lc.cohort_size = total;
                Workload::LendingClub(lc)
            }
        }
    }

    /// Overrides the number of drift steps.
    #[must_use]
    pub fn with_drift_steps(self, steps: usize) -> Self {
        match self {
            Workload::Synthetic(spec) => {
                Workload::Synthetic(spec.with_drift_steps(steps))
            }
            Workload::LendingClub(mut lc) => {
                lc.drift_steps = steps;
                Workload::LendingClub(lc)
            }
        }
    }
}

/// The name → [`Workload`] registry. `BTreeMap`-backed so listings are
/// sorted and deterministic.
#[derive(Clone, Debug, Default)]
pub struct ScenarioRegistry {
    entries: BTreeMap<String, Workload>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in registry: the Lending Club workload plus the
    /// committed synthetic scenarios.
    pub fn builtin() -> Self {
        let mut reg = Self::new();
        reg.register(Workload::LendingClub(LendingClubScenario::default()));
        reg.register(Workload::Synthetic(ScenarioSpec::credit(0x0dd5_eed5)));
        reg.register(Workload::Synthetic(ScenarioSpec::credit_100k()));
        reg.register(Workload::Synthetic(ScenarioSpec::churn(0xc0ff_ee00)));
        reg
    }

    /// Registers `workload` under [`Workload::name`]; returns the entry
    /// it replaced, if any.
    pub fn register(&mut self, workload: Workload) -> Option<Workload> {
        self.entries.insert(workload.name().to_string(), workload)
    }

    /// Looks a workload up by name.
    pub fn get(&self, name: &str) -> Option<&Workload> {
        self.entries.get(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// The registered workloads, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Workload)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered workloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
