//! Minimal CSV persistence for loan records.
//!
//! The original system keeps its raw training data in MySQL; here the
//! excerpt shown to the demo audience (§III "an excerpt of the raw training
//! data") is materialized as a CSV file. The format is fixed-column —
//! `year,age,household,income,debt,seniority,loan_amount,approved` — so no
//! quoting/escaping machinery is needed, and the parser validates
//! everything it reads.

use crate::lendingclub::LoanRecord;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Column header written/expected by this module.
pub const HEADER: &str =
    "year,age,household,income,debt,seniority,loan_amount,approved";

/// Errors raised while reading loan-record CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        reason: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Malformed { line, reason } => {
                write!(f, "malformed csv at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Serializes records to a writer, header first.
pub fn write_records<W: Write>(out: W, records: &[LoanRecord]) -> Result<(), CsvError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{HEADER}")?;
    for r in records {
        let f = &r.features;
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            r.year,
            f[0],
            f[1],
            f[2],
            f[3],
            f[4],
            f[5],
            if r.approved { 1 } else { 0 }
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes records to a file path.
pub fn write_records_to_path<P: AsRef<Path>>(
    path: P,
    records: &[LoanRecord],
) -> Result<(), CsvError> {
    let file = std::fs::File::create(path)?;
    write_records(file, records)
}

/// Parses records from a reader; validates the header and every field.
pub fn read_records<R: BufRead>(input: R) -> Result<Vec<LoanRecord>, CsvError> {
    let mut records = Vec::new();
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or(CsvError::Malformed { line: 1, reason: "empty file".to_string() })??;
    if header.trim() != HEADER {
        return Err(CsvError::Malformed {
            line: 1,
            reason: format!("expected header {HEADER:?}, found {header:?}"),
        });
    }
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 8 {
            return Err(CsvError::Malformed {
                line: line_no,
                reason: format!("expected 8 fields, found {}", parts.len()),
            });
        }
        let field = |j: usize| -> Result<f64, CsvError> {
            parts[j].trim().parse::<f64>().map_err(|e| CsvError::Malformed {
                line: line_no,
                reason: format!("field {j} ({:?}): {e}", parts[j]),
            })
        };
        let year = parts[0].trim().parse::<u32>().map_err(|e| CsvError::Malformed {
            line: line_no,
            reason: format!("year ({:?}): {e}", parts[0]),
        })?;
        let features =
            vec![field(1)?, field(2)?, field(3)?, field(4)?, field(5)?, field(6)?];
        let approved = match parts[7].trim() {
            "1" => true,
            "0" => false,
            other => {
                return Err(CsvError::Malformed {
                    line: line_no,
                    reason: format!("approved must be 0/1, found {other:?}"),
                })
            }
        };
        records.push(LoanRecord { year, features, approved });
    }
    Ok(records)
}

/// Parses records from a file path.
pub fn read_records_from_path<P: AsRef<Path>>(
    path: P,
) -> Result<Vec<LoanRecord>, CsvError> {
    let file = std::fs::File::open(path)?;
    read_records(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lendingclub::{LendingClubGenerator, LendingClubParams};

    fn sample_records() -> Vec<LoanRecord> {
        let g = LendingClubGenerator::new(LendingClubParams {
            records_per_year: 20,
            ..Default::default()
        });
        g.records_for_year(2012)
    }

    #[test]
    fn roundtrip_preserves_records() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_records(&mut buf, &records).unwrap();
        let back = read_records(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.len(), records.len());
        for (a, b) in back.iter().zip(&records) {
            assert_eq!(a.year, b.year);
            assert_eq!(a.approved, b.approved);
            for (x, y) in a.features.iter().zip(&b.features) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rejects_bad_header() {
        let data = b"wrong,header\n".to_vec();
        let err = read_records(std::io::BufReader::new(data.as_slice())).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let data = format!("{HEADER}\n2010,1,2,3\n");
        let err = read_records(std::io::BufReader::new(data.as_bytes())).unwrap_err();
        match err {
            CsvError::Malformed { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("8 fields"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_non_numeric_field() {
        let data = format!("{HEADER}\n2010,abc,0,1,2,3,4,1\n");
        let err = read_records(std::io::BufReader::new(data.as_bytes())).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 2, .. }));
    }

    #[test]
    fn rejects_bad_approved_flag() {
        let data = format!("{HEADER}\n2010,30,0,50000,1000,5,10000,yes\n");
        let err = read_records(std::io::BufReader::new(data.as_bytes())).unwrap_err();
        match err {
            CsvError::Malformed { reason, .. } => assert!(reason.contains("0/1")),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn skips_blank_lines() {
        let data = format!("{HEADER}\n\n2010,30,0,50000,1000,5,10000,1\n\n");
        let records = read_records(std::io::BufReader::new(data.as_bytes())).unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].approved);
    }

    #[test]
    fn empty_file_is_error() {
        let err = read_records(std::io::BufReader::new(&b""[..])).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 1, .. }));
    }

    #[test]
    fn file_path_roundtrip() {
        let records = sample_records();
        let dir = std::env::temp_dir().join("jit_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.csv");
        write_records_to_path(&path, &records).unwrap();
        let back = read_records_from_path(&path).unwrap();
        assert_eq!(back.len(), records.len());
        std::fs::remove_file(&path).ok();
    }
}
