//! Synthetic Lending-Club-like loan application data with concept drift.
//!
//! Substitutes the Kaggle *Lending Club Loan Data* used by the paper's demo
//! (≈1M applications, 2007–2018). The generator reproduces the properties
//! JustInTime actually exercises:
//!
//! * **Covariate drift** — incomes grow year over year, debt loads creep
//!   upward, so the feature distribution at 2018 differs from 2007.
//! * **Concept drift** — the approval rule itself changes. Following the
//!   paper's Example I.1, for applicants **over 30** the income requirement
//!   relaxes with the years while the debt requirement tightens. A
//!   2008–2009 "credit crunch" penalty adds a realistic non-monotone bump.
//! * **Label noise** — approvals are sampled from the oracle probability,
//!   not thresholded, so learned models face a realistic Bayes error.
//!
//! The oracle rule is exposed ([`LendingClubGenerator::oracle_probability`])
//! so experiments can compare *predicted* future models against the *true*
//! future rule (experiment E4 in DESIGN.md).

use crate::schema::{lending_idx as idx, FeatureSchema};
use jit_math::rng::Rng;
use jit_ml::Dataset;

/// One synthetic loan application.
#[derive(Clone, Debug, PartialEq)]
pub struct LoanRecord {
    /// Application year (2007–2018 by default).
    pub year: u32,
    /// Feature vector in [`FeatureSchema::lending_club`] order.
    pub features: Vec<f64>,
    /// Whether the oracle approved the application.
    pub approved: bool,
}

/// Generator parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct LendingClubParams {
    /// First application year (inclusive).
    pub start_year: u32,
    /// Last application year (inclusive).
    pub end_year: u32,
    /// Applications generated per year.
    pub records_per_year: usize,
    /// Steepness of the oracle's probability; larger = less label noise.
    pub oracle_sharpness: f64,
    /// Base RNG seed; everything downstream derives from it.
    pub seed: u64,
}

impl Default for LendingClubParams {
    fn default() -> Self {
        LendingClubParams {
            start_year: 2007,
            end_year: 2018,
            records_per_year: 1200,
            oracle_sharpness: 2.5,
            seed: 0x1e4d_c1b0,
        }
    }
}

/// Synthesizes drifting loan-application data.
#[derive(Clone, Debug)]
pub struct LendingClubGenerator {
    params: LendingClubParams,
    schema: FeatureSchema,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LendingClubGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics when `start_year > end_year` or `records_per_year == 0`.
    pub fn new(params: LendingClubParams) -> Self {
        assert!(params.start_year <= params.end_year, "year range out of order");
        assert!(params.records_per_year > 0, "records_per_year must be positive");
        LendingClubGenerator { params, schema: FeatureSchema::lending_club() }
    }

    /// Generator with default parameters.
    pub fn with_defaults() -> Self {
        Self::new(LendingClubParams::default())
    }

    /// The schema of the generated features.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// The generator parameters.
    pub fn params(&self) -> &LendingClubParams {
        &self.params
    }

    /// Inclusive list of years covered.
    pub fn years(&self) -> Vec<u32> {
        (self.params.start_year..=self.params.end_year).collect()
    }

    /// Deterministically samples the applications of one year.
    ///
    /// Each `(seed, year)` pair owns an independent RNG stream, so a single
    /// year can be regenerated without producing the whole range.
    pub fn records_for_year(&self, year: u32) -> Vec<LoanRecord> {
        assert!(
            (self.params.start_year..=self.params.end_year).contains(&year),
            "year outside generator range"
        );
        let mut rng = Rng::seeded(self.params.seed ^ (u64::from(year) << 20));
        (0..self.params.records_per_year)
            .map(|_| self.sample_record(year, &mut rng))
            .collect()
    }

    /// Generates the full 2007–2018 record stream.
    pub fn all_records(&self) -> Vec<LoanRecord> {
        self.years().into_iter().flat_map(|y| self.records_for_year(y)).collect()
    }

    fn sample_record(&self, year: u32, rng: &mut Rng) -> LoanRecord {
        let yr = (year - self.params.start_year) as f64;

        // Age skews young with a long right tail.
        let age = (21.0 + rng.normal_with(14.0, 9.0).abs()).clamp(18.0, 80.0).round();
        // Seniority correlates with age, capped by working years.
        let max_seniority = (age - 18.0).max(0.0);
        let seniority = rng
            .normal_with((age - 22.0).max(0.0) * 0.45, 3.0)
            .clamp(0.0, max_seniority)
            .round();
        // Income: lognormal with wage growth over the years and a
        // seniority premium.
        let base_income = 42_000.0 + 1_500.0 * yr;
        let income = (base_income
            * (0.25 * (seniority / 10.0) + rng.normal_with(0.0, 0.45)).exp())
        .clamp(8_000.0, 900_000.0);
        // Home ownership rises with age.
        let own_prob = 0.7 * sigmoid((age - 35.0) / 8.0);
        let household = if rng.bernoulli(own_prob) { 1.0 } else { 0.0 };
        // Monthly debt: debt-to-income ratio drifts upward over the years.
        let dti = (rng.normal_with(0.30 + 0.006 * yr, 0.13)).clamp(0.0, 1.2);
        let debt = (income / 12.0 * dti).clamp(0.0, 60_000.0);
        // Requested loan amount, mildly income-linked.
        let loan = (8_000.0 + 0.12 * income + rng.normal_with(0.0, 6_000.0))
            .clamp(1_000.0, 60_000.0);

        let features = vec![age, household, income, debt, seniority, loan];
        let p = self.oracle_probability(&features, year);
        let approved = rng.bernoulli(p);
        LoanRecord { year, features, approved }
    }

    /// The drifting ground-truth approval score (log-odds scale).
    ///
    /// Encodes the paper's motivating drift: for applicants over 30 the
    /// income weight decays with `year` while the debt weight grows. A
    /// 2008–2009 credit-crunch penalty makes the drift non-monotone.
    pub fn oracle_score(&self, features: &[f64], year: u32) -> f64 {
        assert_eq!(features.len(), self.schema.dim(), "feature dimension mismatch");
        let yr = (year.max(self.params.start_year) - self.params.start_year) as f64;
        let age = features[idx::AGE];
        let income = features[idx::INCOME].max(1.0);
        let debt = features[idx::DEBT];
        let seniority = features[idx::SENIORITY];
        let household = features[idx::HOUSEHOLD];
        let loan = features[idx::LOAN_AMOUNT];

        // Debt burden is normalized against a *fixed* reference income
        // rather than the applicant's own: this decouples the income and
        // debt channels so the cohort drift below cleanly realizes the
        // paper's story ("income requirements relax while debt
        // requirements tighten") — with applicant-relative DTI, raising
        // income would implicitly loosen the debt term too.
        let debt_load = debt * 12.0 / 52_000.0;
        let lti = loan / income;

        // Base weights at 2007.
        let mut w_income = 1.1;
        let mut w_dti = 2.6;
        if age > 30.0 {
            // Example I.1: income requirements relax, debt tightens.
            w_income *= (1.0 - 0.055 * yr).max(0.25);
            w_dti *= 1.0 + 0.075 * yr;
        }
        let crunch = match year {
            2008 | 2009 => 0.9,
            2010 => 0.4,
            _ => 0.0,
        };

        w_income * (income / 52_000.0).ln()
            - w_dti * (debt_load - 0.34)
            - 1.4 * (lti - 0.35)
            + 0.35 * household
            + 0.05 * seniority.min(15.0)
            - crunch
    }

    /// Oracle approval probability (the Bayes-optimal score).
    pub fn oracle_probability(&self, features: &[f64], year: u32) -> f64 {
        sigmoid(self.params.oracle_sharpness * self.oracle_score(features, year))
    }

    /// Converts records into a training [`Dataset`] (unit weights).
    pub fn to_dataset(records: &[LoanRecord]) -> Dataset {
        let rows = records.iter().map(|r| r.features.clone()).collect();
        let labels = records.iter().map(|r| r.approved).collect();
        Dataset::from_rows(rows, labels)
    }

    /// The paper's running-example applicant "John": 29 years old, renter,
    /// modest income, sizable debt, oversized loan request — solidly
    /// rejected at the present time (oracle probability ≈ 3%).
    pub fn john() -> Vec<f64> {
        vec![29.0, 0.0, 45_000.0, 3_200.0, 4.0, 28_000.0]
    }

    /// Five denied applications for the demo reenactment (§III: "a
    /// reenactment of five real-life loan applications that were denied").
    /// Profiles are chosen to be rejected by the oracle at `start_year`
    /// for five *different* dominant reasons.
    pub fn demo_applicants() -> Vec<(String, Vec<f64>)> {
        vec![
            ("john-high-debt".to_string(), Self::john()),
            // Income too low for the requested amount.
            (
                "amara-low-income".to_string(),
                vec![24.0, 0.0, 21_000.0, 700.0, 1.0, 30_000.0],
            ),
            // Debt-to-income ratio extreme despite a high income.
            (
                "bianca-dti".to_string(),
                vec![41.0, 1.0, 95_000.0, 7_200.0, 12.0, 18_000.0],
            ),
            // Loan-to-income far above policy.
            (
                "carlos-oversized-loan".to_string(),
                vec![33.0, 0.0, 38_000.0, 900.0, 6.0, 55_000.0],
            ),
            // Young, no seniority, renter, thin margins on every factor.
            (
                "dana-thin-file".to_string(),
                vec![21.0, 0.0, 26_000.0, 850.0, 0.0, 15_000.0],
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LendingClubGenerator {
        LendingClubGenerator::new(LendingClubParams {
            records_per_year: 300,
            ..Default::default()
        })
    }

    #[test]
    fn record_counts_and_years() {
        let g = small();
        assert_eq!(g.years().len(), 12);
        let all = g.all_records();
        assert_eq!(all.len(), 12 * 300);
        assert!(all.iter().all(|r| (2007..=2018).contains(&r.year)));
    }

    #[test]
    fn records_within_schema_bounds() {
        let g = small();
        let schema = g.schema().clone();
        for r in g.records_for_year(2012) {
            assert!(schema.row_in_bounds(&r.features), "row {:?}", r.features);
        }
    }

    #[test]
    fn generation_is_deterministic_per_year() {
        let g = small();
        assert_eq!(g.records_for_year(2010), g.records_for_year(2010));
        assert_ne!(g.records_for_year(2010), g.records_for_year(2011));
    }

    #[test]
    fn different_seeds_differ() {
        let a = LendingClubGenerator::new(LendingClubParams {
            seed: 1,
            records_per_year: 50,
            ..Default::default()
        });
        let b = LendingClubGenerator::new(LendingClubParams {
            seed: 2,
            records_per_year: 50,
            ..Default::default()
        });
        assert_ne!(a.records_for_year(2010), b.records_for_year(2010));
    }

    #[test]
    fn approval_rate_is_reasonable() {
        let g = small();
        let all = g.all_records();
        let rate = all.iter().filter(|r| r.approved).count() as f64 / all.len() as f64;
        assert!((0.2..=0.8).contains(&rate), "approval rate {rate} unrealistic");
    }

    #[test]
    fn incomes_drift_upward() {
        let g = small();
        let mean_income = |year: u32| {
            let rs = g.records_for_year(year);
            rs.iter().map(|r| r.features[idx::INCOME]).sum::<f64>() / rs.len() as f64
        };
        assert!(mean_income(2018) > mean_income(2007) * 1.1);
    }

    #[test]
    fn oracle_drift_matches_example_i1() {
        // For an over-30 applicant, higher income helps less in 2018 than
        // 2007, while lower debt helps more — the John story.
        let g = small();
        let base = vec![35.0, 0.0, 50_000.0, 2_000.0, 8.0, 20_000.0];
        let mut richer = base.clone();
        richer[idx::INCOME] = 60_000.0;
        let mut less_debt = base.clone();
        less_debt[idx::DEBT] = 1_000.0;

        let income_gain_2007 =
            g.oracle_score(&richer, 2007) - g.oracle_score(&base, 2007);
        let income_gain_2018 =
            g.oracle_score(&richer, 2018) - g.oracle_score(&base, 2018);
        let debt_gain_2007 =
            g.oracle_score(&less_debt, 2007) - g.oracle_score(&base, 2007);
        let debt_gain_2018 =
            g.oracle_score(&less_debt, 2018) - g.oracle_score(&base, 2018);

        assert!(income_gain_2018 < income_gain_2007, "income should relax");
        assert!(debt_gain_2018 > debt_gain_2007, "debt should tighten");
    }

    #[test]
    fn under_30_unaffected_by_cohort_drift() {
        let g = small();
        let base = vec![25.0, 0.0, 50_000.0, 2_000.0, 3.0, 20_000.0];
        let mut richer = base.clone();
        richer[idx::INCOME] = 60_000.0;
        let gain_2007 = g.oracle_score(&richer, 2007) - g.oracle_score(&base, 2007);
        let gain_2018 = g.oracle_score(&richer, 2018) - g.oracle_score(&base, 2018);
        assert!((gain_2007 - gain_2018).abs() < 1e-9);
    }

    #[test]
    fn credit_crunch_lowers_scores() {
        let g = small();
        let x = vec![25.0, 0.0, 50_000.0, 1_200.0, 3.0, 15_000.0];
        assert!(g.oracle_score(&x, 2008) < g.oracle_score(&x, 2007));
        assert!(g.oracle_score(&x, 2009) < g.oracle_score(&x, 2011));
    }

    #[test]
    fn john_is_rejected_at_start() {
        let g = small();
        let p = g.oracle_probability(&LendingClubGenerator::john(), 2007);
        assert!(p < 0.5, "John must start rejected, got {p}");
    }

    #[test]
    fn demo_applicants_all_rejected_at_start() {
        let g = small();
        for (name, x) in LendingClubGenerator::demo_applicants() {
            let p = g.oracle_probability(&x, 2007);
            assert!(p < 0.5, "{name} should be rejected, got {p}");
        }
    }

    #[test]
    fn to_dataset_preserves_rows() {
        let g = small();
        let records = g.records_for_year(2015);
        let d = LendingClubGenerator::to_dataset(&records);
        assert_eq!(d.len(), records.len());
        assert_eq!(d.dim(), 6);
        assert_eq!(d.row(0), records[0].features.as_slice());
        assert_eq!(d.label(0), records[0].approved);
    }

    #[test]
    fn oracle_probability_in_unit_interval() {
        let g = small();
        for r in g.records_for_year(2013).iter().take(100) {
            let p = g.oracle_probability(&r.features, 2013);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
