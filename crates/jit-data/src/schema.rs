//! Feature schemas: names, kinds, bounds, temporal evolution and
//! mutability.
//!
//! The schema is the shared vocabulary between crates:
//!
//! * `jit-temporal` reads [`TemporalSpec`] to build the paper's *Temporal
//!   Update Function* (Definition II.4) — `age` increases by `Δ` per time
//!   step, seniority usually follows, income gets an expected growth trend.
//! * `jit-constraints` resolves feature *names* to vector indices.
//! * the candidates generator respects [`Mutability`] — a proposal never
//!   touches an immutable feature (one cannot decrease one's age, §II-A).

/// The value type of a feature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureKind {
    /// Real-valued (income, debt).
    Continuous,
    /// Integer-valued but ordered (age, seniority years).
    Ordinal,
    /// Zero/one indicator (household status: 0 = renter, 1 = owner).
    Binary,
}

/// How a feature evolves with time *by itself*, i.e. the per-feature
/// component `f(x, t)[v]` of the Temporal Update Function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TemporalSpec {
    /// Unchanged by the passage of time (loan amount, household status).
    Static,
    /// Grows by `per_period` every time step of length Δ (age: 1.0/year,
    /// seniority: ~1.0/year while employed).
    Linear {
        /// Additive growth per period.
        per_period: f64,
    },
    /// Grows multiplicatively by `rate` per period (expected wage growth).
    Compound {
        /// Multiplicative growth rate per period (0.03 = +3%/period).
        rate: f64,
    },
}

impl TemporalSpec {
    /// Value of a feature `t` periods into the future.
    pub fn project(&self, value: f64, t: usize) -> f64 {
        match self {
            TemporalSpec::Static => value,
            TemporalSpec::Linear { per_period } => value + per_period * t as f64,
            TemporalSpec::Compound { rate } => value * (1.0 + rate).powi(t as i32),
        }
    }
}

/// Whether the *user* can deliberately change a feature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutability {
    /// Freely modifiable by a plan of action (income, debt, loan amount).
    Actionable,
    /// Cannot be changed by the user (age); it may still evolve temporally.
    Immutable,
}

/// Metadata for one feature.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureMeta {
    /// Column name; also the SQL column name in the candidates table.
    pub name: String,
    /// Value type.
    pub kind: FeatureKind,
    /// Smallest admissible value (domain integrity constraint).
    pub min: f64,
    /// Largest admissible value.
    pub max: f64,
    /// Temporal evolution of the feature.
    pub temporal: TemporalSpec,
    /// Whether users may modify the feature deliberately.
    pub mutability: Mutability,
}

impl FeatureMeta {
    /// Convenience constructor.
    pub fn new(
        name: &str,
        kind: FeatureKind,
        min: f64,
        max: f64,
        temporal: TemporalSpec,
        mutability: Mutability,
    ) -> Self {
        assert!(min <= max, "feature bounds out of order");
        FeatureMeta { name: name.to_string(), kind, min, max, temporal, mutability }
    }

    /// Clamps and, for non-continuous kinds, rounds a raw value into the
    /// feature's domain.
    pub fn sanitize(&self, value: f64) -> f64 {
        let v = match self.kind {
            FeatureKind::Continuous => value,
            FeatureKind::Ordinal => value.round(),
            FeatureKind::Binary => {
                if value >= 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
        };
        v.clamp(self.min, self.max)
    }
}

/// An ordered collection of feature metadata defining the input space
/// `R^d`.
#[derive(Clone, Debug)]
pub struct FeatureSchema {
    features: Vec<FeatureMeta>,
}

impl FeatureSchema {
    /// Builds a schema from feature metadata.
    ///
    /// # Panics
    /// Panics on duplicate feature names.
    pub fn new(features: Vec<FeatureMeta>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for f in &features {
            assert!(seen.insert(f.name.clone()), "duplicate feature name {}", f.name);
        }
        FeatureSchema { features }
    }

    /// Number of features `d`.
    pub fn dim(&self) -> usize {
        self.features.len()
    }

    /// Metadata of feature `i`.
    pub fn feature(&self, i: usize) -> &FeatureMeta {
        &self.features[i]
    }

    /// All features in order.
    pub fn features(&self) -> &[FeatureMeta] {
        &self.features
    }

    /// Index of the feature with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }

    /// Feature names in order.
    pub fn names(&self) -> Vec<&str> {
        self.features.iter().map(|f| f.name.as_str()).collect()
    }

    /// Lower bounds vector.
    pub fn mins(&self) -> Vec<f64> {
        self.features.iter().map(|f| f.min).collect()
    }

    /// Upper bounds vector.
    pub fn maxs(&self) -> Vec<f64> {
        self.features.iter().map(|f| f.max).collect()
    }

    /// Applies per-feature sanitization to a full profile vector.
    pub fn sanitize_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim(), "row dimension mismatch");
        row.iter().zip(&self.features).map(|(v, f)| f.sanitize(*v)).collect()
    }

    /// [`FeatureSchema::sanitize_row`] without the allocation: overwrites
    /// `row` with its sanitized values (hot path of the candidates
    /// search, which sanitizes thousands of trial profiles per session).
    pub fn sanitize_row_in_place(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.dim(), "row dimension mismatch");
        for (v, f) in row.iter_mut().zip(&self.features) {
            *v = f.sanitize(*v);
        }
    }

    /// Content digest of the schema: every field that influences
    /// sanitization, bounds checking, temporal projection or mutability.
    ///
    /// Two schemas with equal digests behave identically in every
    /// serving-relevant way, so the digest participates in the
    /// per-time-point fingerprints that incremental re-serving diffs.
    pub fn content_digest(&self) -> jit_math::Digest {
        let mut w = jit_math::DigestWriter::new("jit-data/schema");
        w.write_usize(self.features.len());
        for f in &self.features {
            w.write_str(&f.name);
            w.write_u64(match f.kind {
                FeatureKind::Continuous => 0,
                FeatureKind::Ordinal => 1,
                FeatureKind::Binary => 2,
            });
            w.write_f64(f.min);
            w.write_f64(f.max);
            match f.temporal {
                TemporalSpec::Static => w.write_u64(0),
                TemporalSpec::Linear { per_period } => {
                    w.write_u64(1);
                    w.write_f64(per_period);
                }
                TemporalSpec::Compound { rate } => {
                    w.write_u64(2);
                    w.write_f64(rate);
                }
            }
            w.write_u64(match f.mutability {
                Mutability::Actionable => 0,
                Mutability::Immutable => 1,
            });
        }
        w.finish()
    }

    /// `true` when every coordinate lies within its feature's bounds.
    pub fn row_in_bounds(&self, row: &[f64]) -> bool {
        row.len() == self.dim()
            && row
                .iter()
                .zip(&self.features)
                .all(|(v, f)| *v >= f.min - 1e-9 && *v <= f.max + 1e-9)
    }

    /// The paper's loan-application schema: Age, Household status, Annual
    /// Income, Monthly Debt, Job Seniority, Loan Amount (Example I.1).
    ///
    /// Temporal specs assume Δ = 1 year per time step: age and seniority
    /// advance linearly, income follows expected wage growth, debt/loan are
    /// under the user's control and hence static by default.
    pub fn lending_club() -> Self {
        FeatureSchema::new(vec![
            FeatureMeta::new(
                "age",
                FeatureKind::Ordinal,
                18.0,
                100.0,
                TemporalSpec::Linear { per_period: 1.0 },
                Mutability::Immutable,
            ),
            FeatureMeta::new(
                "household",
                FeatureKind::Binary,
                0.0,
                1.0,
                TemporalSpec::Static,
                Mutability::Actionable,
            ),
            FeatureMeta::new(
                "income",
                FeatureKind::Continuous,
                0.0,
                2_000_000.0,
                TemporalSpec::Compound { rate: 0.02 },
                Mutability::Actionable,
            ),
            FeatureMeta::new(
                "debt",
                FeatureKind::Continuous,
                0.0,
                100_000.0,
                TemporalSpec::Static,
                Mutability::Actionable,
            ),
            FeatureMeta::new(
                "seniority",
                FeatureKind::Ordinal,
                0.0,
                60.0,
                TemporalSpec::Linear { per_period: 1.0 },
                Mutability::Immutable,
            ),
            FeatureMeta::new(
                "loan_amount",
                FeatureKind::Continuous,
                500.0,
                100_000.0,
                TemporalSpec::Static,
                Mutability::Actionable,
            ),
        ])
    }
}

/// Well-known indices into the lending-club schema, for readable call
/// sites.
pub mod lending_idx {
    /// Applicant age in years.
    pub const AGE: usize = 0;
    /// Household status (0 = renter, 1 = owner).
    pub const HOUSEHOLD: usize = 1;
    /// Annual income in dollars.
    pub const INCOME: usize = 2;
    /// Monthly debt obligations in dollars.
    pub const DEBT: usize = 3;
    /// Job seniority in years.
    pub const SENIORITY: usize = 4;
    /// Requested loan amount in dollars.
    pub const LOAN_AMOUNT: usize = 5;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_digest_is_stable_and_sensitive() {
        let a = FeatureSchema::lending_club();
        let b = FeatureSchema::lending_club();
        assert_eq!(a.content_digest(), b.content_digest());
        // Any byte of any field must matter.
        let mut metas: Vec<FeatureMeta> = a.features().to_vec();
        metas[2].max += 1.0;
        let changed = FeatureSchema::new(metas);
        assert_ne!(a.content_digest(), changed.content_digest());
    }

    #[test]
    fn temporal_projection() {
        assert_eq!(TemporalSpec::Static.project(5.0, 10), 5.0);
        assert_eq!(TemporalSpec::Linear { per_period: 1.0 }.project(29.0, 3), 32.0);
        let compound = TemporalSpec::Compound { rate: 0.1 }.project(100.0, 2);
        assert!((compound - 121.0).abs() < 1e-9);
    }

    #[test]
    fn projection_at_zero_is_identity() {
        for spec in [
            TemporalSpec::Static,
            TemporalSpec::Linear { per_period: 2.0 },
            TemporalSpec::Compound { rate: 0.5 },
        ] {
            assert_eq!(spec.project(42.0, 0), 42.0);
        }
    }

    #[test]
    fn sanitize_by_kind() {
        let f = FeatureMeta::new(
            "x",
            FeatureKind::Ordinal,
            0.0,
            10.0,
            TemporalSpec::Static,
            Mutability::Actionable,
        );
        assert_eq!(f.sanitize(3.4), 3.0);
        assert_eq!(f.sanitize(-5.0), 0.0);
        assert_eq!(f.sanitize(99.0), 10.0);

        let b = FeatureMeta::new(
            "b",
            FeatureKind::Binary,
            0.0,
            1.0,
            TemporalSpec::Static,
            Mutability::Actionable,
        );
        assert_eq!(b.sanitize(0.6), 1.0);
        assert_eq!(b.sanitize(0.4), 0.0);
    }

    #[test]
    fn lending_schema_shape() {
        let s = FeatureSchema::lending_club();
        assert_eq!(s.dim(), 6);
        assert_eq!(s.index_of("income"), Some(lending_idx::INCOME));
        assert_eq!(s.index_of("nonexistent"), None);
        assert_eq!(s.feature(lending_idx::AGE).mutability, Mutability::Immutable);
        assert_eq!(s.feature(lending_idx::DEBT).mutability, Mutability::Actionable);
        assert_eq!(s.names()[5], "loan_amount");
    }

    #[test]
    fn sanitize_row_and_bounds() {
        let s = FeatureSchema::lending_club();
        let raw = vec![29.7, 0.3, -50.0, 500.0, 3.2, 1_000_000.0];
        let clean = s.sanitize_row(&raw);
        assert_eq!(clean[lending_idx::AGE], 30.0); // rounded ordinal
        assert_eq!(clean[lending_idx::HOUSEHOLD], 0.0); // binary snap
        assert_eq!(clean[lending_idx::INCOME], 0.0); // clamped to min
        assert_eq!(clean[lending_idx::LOAN_AMOUNT], 100_000.0); // clamped to max
        assert!(s.row_in_bounds(&clean));
        assert!(!s.row_in_bounds(&raw));
        // The in-place variant is bit-identical to the allocating one.
        let mut in_place = raw.clone();
        s.sanitize_row_in_place(&mut in_place);
        assert_eq!(in_place, clean);
    }

    #[test]
    fn row_in_bounds_checks_dimension() {
        let s = FeatureSchema::lending_club();
        assert!(!s.row_in_bounds(&[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "duplicate feature name")]
    fn duplicate_names_panic() {
        FeatureSchema::new(vec![
            FeatureMeta::new(
                "x",
                FeatureKind::Continuous,
                0.0,
                1.0,
                TemporalSpec::Static,
                Mutability::Actionable,
            ),
            FeatureMeta::new(
                "x",
                FeatureKind::Continuous,
                0.0,
                1.0,
                TemporalSpec::Static,
                Mutability::Actionable,
            ),
        ]);
    }

    #[test]
    #[should_panic(expected = "bounds out of order")]
    fn inverted_bounds_panic() {
        FeatureMeta::new(
            "x",
            FeatureKind::Continuous,
            1.0,
            0.0,
            TemporalSpec::Static,
            Mutability::Actionable,
        );
    }
}
