//! Error type shared across the engine.

use std::fmt;

/// Anything that can go wrong parsing or executing SQL.
#[derive(Clone, Debug, PartialEq)]
pub enum DbError {
    /// Tokenizer/parser failure with byte offset.
    Parse {
        /// Byte offset into the SQL text.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Table already exists.
    DuplicateTable(String),
    /// Column not found (possibly ambiguous context in message).
    UnknownColumn(String),
    /// Column reference matches more than one table in scope.
    AmbiguousColumn(String),
    /// Value/type mismatch on insert.
    TypeMismatch {
        /// Table involved.
        table: String,
        /// Column involved.
        column: String,
        /// Description of the offending value.
        value: String,
    },
    /// Wrong arity in INSERT values.
    ArityMismatch {
        /// Expected column count.
        expected: usize,
        /// Provided value count.
        found: usize,
    },
    /// A scalar subquery returned more than one row/column.
    SubqueryShape(String),
    /// Aggregate misuse (nested aggregates, aggregate in WHERE, …).
    AggregateMisuse(String),
    /// Runtime evaluation failure (division by zero, bad operand types).
    Eval(String),
    /// Binary row/record decoding failure at a byte offset.
    Codec {
        /// Byte offset into the encoded buffer where decoding failed.
        offset: usize,
        /// What the decoder expected to find there.
        expected: &'static str,
    },
    /// I/O failure in the durability layer (rendered, since
    /// `std::io::Error` is neither `Clone` nor `PartialEq`).
    Io {
        /// Operation that failed (`"append"`, `"sync"`, …).
        op: &'static str,
        /// Rendered OS error.
        detail: String,
    },
    /// The write-ahead log file is unusable (bad magic, wrong version,
    /// or poisoned after a failed rollback).
    Wal(String),
    /// A prepared statement was executed with the wrong number of
    /// parameters, or an unbound `?` was evaluated.
    ParamMismatch {
        /// Parameters the statement requires.
        expected: usize,
        /// Parameters supplied.
        found: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse { offset, message } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            DbError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            DbError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            DbError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column {c:?}"),
            DbError::TypeMismatch { table, column, value } => {
                write!(f, "type mismatch inserting {value} into {table}.{column}")
            }
            DbError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} values, found {found}")
            }
            DbError::SubqueryShape(msg) => write!(f, "bad subquery shape: {msg}"),
            DbError::AggregateMisuse(msg) => write!(f, "aggregate misuse: {msg}"),
            DbError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            DbError::Codec { offset, expected } => {
                write!(f, "codec error at byte {offset}: expected {expected}")
            }
            DbError::Io { op, detail } => write!(f, "i/o error during {op}: {detail}"),
            DbError::Wal(msg) => write!(f, "write-ahead log error: {msg}"),
            DbError::ParamMismatch { expected, found } => {
                write!(f, "statement takes {expected} parameter(s), {found} supplied")
            }
        }
    }
}

impl std::error::Error for DbError {}
