//! Error type shared across the engine.

use std::fmt;

/// Anything that can go wrong parsing or executing SQL.
#[derive(Clone, Debug, PartialEq)]
pub enum DbError {
    /// Tokenizer/parser failure with byte offset.
    Parse {
        /// Byte offset into the SQL text.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Table already exists.
    DuplicateTable(String),
    /// Column not found (possibly ambiguous context in message).
    UnknownColumn(String),
    /// Column reference matches more than one table in scope.
    AmbiguousColumn(String),
    /// Value/type mismatch on insert.
    TypeMismatch {
        /// Table involved.
        table: String,
        /// Column involved.
        column: String,
        /// Description of the offending value.
        value: String,
    },
    /// Wrong arity in INSERT values.
    ArityMismatch {
        /// Expected column count.
        expected: usize,
        /// Provided value count.
        found: usize,
    },
    /// A scalar subquery returned more than one row/column.
    SubqueryShape(String),
    /// Aggregate misuse (nested aggregates, aggregate in WHERE, …).
    AggregateMisuse(String),
    /// Runtime evaluation failure (division by zero, bad operand types).
    Eval(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse { offset, message } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            DbError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            DbError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            DbError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column {c:?}"),
            DbError::TypeMismatch { table, column, value } => {
                write!(f, "type mismatch inserting {value} into {table}.{column}")
            }
            DbError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} values, found {found}")
            }
            DbError::SubqueryShape(msg) => write!(f, "bad subquery shape: {msg}"),
            DbError::AggregateMisuse(msg) => write!(f, "aggregate misuse: {msg}"),
            DbError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}
