//! SQL abstract syntax.

use crate::value::{ColumnType, Value};

/// A parsed SQL statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColumnType)>,
    },
    /// `INSERT INTO name [(cols)] VALUES (…), …`.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row literals.
        rows: Vec<Vec<Expr>>,
    },
    /// A `SELECT` query.
    Select(Box<Select>),
    /// `DELETE FROM name [WHERE expr]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate; `None` truncates.
        predicate: Option<Expr>,
    },
    /// `DROP TABLE name`.
    DropTable(String),
}

/// A `SELECT` query.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<Projection>,
    /// The `FROM` table (queries always have one in this subset).
    pub from: TableRef,
    /// `INNER JOIN`s in order.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
}

/// A table reference with optional alias.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub name: String,
    /// Alias (defaults to the table name).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table binds to in scopes.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One `INNER JOIN … ON …`.
#[derive(Clone, Debug, PartialEq)]
pub struct Join {
    /// Joined table.
    pub table: TableRef,
    /// Join predicate.
    pub on: Expr,
}

/// A projection item.
#[derive(Clone, Debug, PartialEq)]
pub enum Projection {
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// Expression with optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// An `ORDER BY` key.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// `true` for descending.
    pub desc: bool,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// `true` for comparison operators (usable with ALL/ANY).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl AggFunc {
    /// Parses an aggregate name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// Quantifier for comparison subqueries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantifier {
    /// `ALL`
    All,
    /// `ANY` / `SOME`
    Any,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified (`alias.column`).
    Column {
        /// Table qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        lhs: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// `NOT expr`.
    Not(Box<Expr>),
    /// Aggregate call; `None` argument means `COUNT(*)`.
    Aggregate {
        /// The function.
        func: AggFunc,
        /// Argument (`None` = `*`).
        arg: Option<Box<Expr>>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// `true` for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IN (list)` / `expr NOT IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `true` for `NOT IN`.
        negated: bool,
    },
    /// `expr IN (subquery)` / `NOT IN`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Single-column subquery.
        subquery: Box<Select>,
        /// `true` for `NOT IN`.
        negated: bool,
    },
    /// `EXISTS (subquery)` / `NOT EXISTS`.
    Exists {
        /// The subquery.
        subquery: Box<Select>,
        /// `true` for `NOT EXISTS`.
        negated: bool,
    },
    /// `expr op ALL|ANY (subquery)`.
    QuantifiedCmp {
        /// Left operand.
        lhs: Box<Expr>,
        /// Comparison operator.
        op: BinOp,
        /// `ALL` or `ANY`.
        quantifier: Quantifier,
        /// Single-column subquery.
        subquery: Box<Select>,
    },
    /// A scalar subquery `(SELECT …)` used as a value.
    ScalarSubquery(Box<Select>),
    /// A positional `?` parameter (0-based, in source order), bound at
    /// execution time by [`crate::Database::execute_prepared`].
    Param(usize),
}

impl Expr {
    /// Convenience: column without qualifier.
    pub fn col(name: &str) -> Expr {
        Expr::Column { qualifier: None, name: name.to_string() }
    }

    /// `true` if the expression contains an aggregate call at any depth
    /// *outside of subqueries* (subqueries have their own aggregate
    /// context).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => false,
            Expr::Binary { lhs, rhs, .. } => {
                lhs.contains_aggregate() || rhs.contains_aggregate()
            }
            Expr::Neg(e) | Expr::Not(e) => e.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate()
                    || lo.contains_aggregate()
                    || hi.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Exists { .. } => false,
            Expr::QuantifiedCmp { lhs, .. } => lhs.contains_aggregate(),
            Expr::ScalarSubquery(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ref_binding() {
        let t = TableRef { name: "candidates".into(), alias: None };
        assert_eq!(t.binding(), "candidates");
        let a = TableRef { name: "candidates".into(), alias: Some("cnd".into()) };
        assert_eq!(a.binding(), "cnd");
    }

    #[test]
    fn agg_func_parsing() {
        assert_eq!(AggFunc::from_name("Min"), Some(AggFunc::Min));
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("median"), None);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::And.is_comparison());
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        let agg =
            Expr::Aggregate { func: AggFunc::Min, arg: Some(Box::new(Expr::col("x"))) };
        let plus = Expr::Binary {
            lhs: Box::new(agg),
            op: BinOp::Add,
            rhs: Box::new(Expr::Literal(Value::Int(1))),
        };
        assert!(plus.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        // Aggregates inside EXISTS subqueries don't count for the outer query.
        let sub = Select {
            distinct: false,
            projections: vec![Projection::Wildcard],
            from: TableRef { name: "t".into(), alias: None },
            joins: vec![],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        };
        let ex = Expr::Exists { subquery: Box::new(sub), negated: false };
        assert!(!ex.contains_aggregate());
    }
}
