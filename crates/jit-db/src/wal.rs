//! Durability: an append-only write-ahead log under [`Database`].
//!
//! # The durability contract
//!
//! * **Commit** means: the operation batch was encoded into one
//!   length-prefixed, checksummed WAL record, appended to the log file,
//!   and (with [`WalConfig::sync_on_commit`], the default) flushed to
//!   stable storage — *before* any in-memory table is touched. A batch
//!   is crash-atomic: after recovery either all of its ops are in
//!   effect or none are.
//! * **Recovery** ([`DurableDatabase::open`]) replays the log from the
//!   last checkpoint, stopping at the first record whose length,
//!   checksum or payload fails to validate; everything from that point
//!   on (a torn append, a media bit flip) is truncated away. Recovery
//!   never panics and never surfaces uncommitted rows: the reopened
//!   state is always the longest committed prefix of the log.
//! * **Checkpoints** fold the log into a single full-image record via
//!   an atomic whole-file [`DbFile::replace`], bounding both log growth
//!   and reopen time. One is taken automatically every
//!   [`WalConfig::checkpoint_every_bytes`] of appended commit records
//!   (and on demand via [`DurableDatabase::checkpoint`]).
//!
//! All I/O goes through the pluggable [`DbFile`] trait: [`StdFile`] is
//! the real filesystem, [`MemFile`] an in-memory stand-in whose `Arc`
//! can be kept across a simulated "crash" and reopened, and
//! [`FaultFile`] a wrapper that injects torn writes, failed syncs and
//! failed truncates/replaces for the crash-recovery test harness.
//!
//! A failed append or sync rolls the file back to the last committed
//! length, so the log never accumulates a torn record mid-file; if even
//! that rollback fails the log is *poisoned* (every later commit fails
//! typed) until a successful [`DurableDatabase::checkpoint`] rewrites
//! the file whole.

// Decode/serve path: panics are denied outright here (tests and the
// few fn-level reasoned allows excepted) — hostile bytes and worker
// failures must surface as typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::ast::{BinOp, Expr, Statement};
use crate::catalog::{eval_insert_literal, Database};
use crate::codec::{self, Decoder};
use crate::error::DbError;
use crate::parser::parse_statement;
use crate::prepare::Prepared;
use crate::result::ResultSet;
use crate::table::TableSchema;
use crate::value::{ColumnType, Value};
use parking_lot::Mutex;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic + format version.
const MAGIC: &[u8; 8] = b"JITWAL01";
/// Sanity cap on a single record's payload (corrupt length fields must
/// not trigger huge allocations).
const MAX_RECORD: u32 = 1 << 30;
/// Record tag: a committed batch of operations.
const TAG_COMMIT: u8 = 1;
/// Record tag: a full database image (checkpoint).
const TAG_CHECKPOINT: u8 = 2;

// ---------------------------------------------------------------------
// Pluggable I/O
// ---------------------------------------------------------------------

/// Byte-level log storage. Implementations must be usable from multiple
/// threads behind `&self`; the WAL serializes writers itself.
pub trait DbFile: Send + Sync + std::fmt::Debug {
    /// Reads the whole file.
    fn read_all(&self) -> Result<Vec<u8>, DbError>;
    /// Appends bytes at the end.
    fn append(&self, bytes: &[u8]) -> Result<(), DbError>;
    /// Flushes appended bytes to stable storage.
    fn sync(&self) -> Result<(), DbError>;
    /// Shrinks the file to `len` bytes.
    fn truncate(&self, len: u64) -> Result<(), DbError>;
    /// Atomically replaces the whole content (checkpoint compaction).
    /// On error the previous content must remain intact.
    fn replace(&self, bytes: &[u8]) -> Result<(), DbError>;
    /// Current length in bytes.
    fn len(&self) -> Result<u64, DbError>;
    /// `true` when the file has no bytes.
    fn is_empty(&self) -> Result<bool, DbError> {
        Ok(self.len()? == 0)
    }
}

/// In-memory [`DbFile`]. Keep a second `Arc` to the same `MemFile`
/// across a dropped [`DurableDatabase`] and reopen it — that simulates
/// a process crash without touching the filesystem.
#[derive(Debug, Default)]
pub struct MemFile {
    bytes: Mutex<Vec<u8>>,
}

impl MemFile {
    /// An empty in-memory file.
    pub fn new() -> Self {
        MemFile::default()
    }

    /// A copy of the current content (for corruption tests).
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.lock().clone()
    }

    /// XORs the byte at `offset` with `mask` — a media bit flip.
    pub fn corrupt(&self, offset: usize, mask: u8) {
        let mut bytes = self.bytes.lock();
        if let Some(b) = bytes.get_mut(offset) {
            *b ^= mask;
        }
    }
}

impl DbFile for MemFile {
    fn read_all(&self) -> Result<Vec<u8>, DbError> {
        Ok(self.bytes.lock().clone())
    }

    fn append(&self, bytes: &[u8]) -> Result<(), DbError> {
        self.bytes.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> Result<(), DbError> {
        Ok(())
    }

    fn truncate(&self, len: u64) -> Result<(), DbError> {
        let mut bytes = self.bytes.lock();
        bytes.truncate(len as usize);
        Ok(())
    }

    fn replace(&self, new: &[u8]) -> Result<(), DbError> {
        *self.bytes.lock() = new.to_vec();
        Ok(())
    }

    fn len(&self) -> Result<u64, DbError> {
        Ok(self.bytes.lock().len() as u64)
    }
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> DbError {
    move |e| DbError::Io { op, detail: e.to_string() }
}

/// Filesystem-backed [`DbFile`]. `replace` writes a sibling temp file
/// and renames it over the log, so a crash mid-checkpoint leaves either
/// the old log or the new one — never a hybrid.
#[derive(Debug)]
pub struct StdFile {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl StdFile {
    /// Opens (or creates) the log file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, DbError> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err("open"))?;
        Ok(StdFile { path, file: Mutex::new(file) })
    }
}

impl DbFile for StdFile {
    fn read_all(&self) -> Result<Vec<u8>, DbError> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(0)).map_err(io_err("seek"))?;
        let mut out = Vec::new();
        file.read_to_end(&mut out).map_err(io_err("read"))?;
        Ok(out)
    }

    fn append(&self, bytes: &[u8]) -> Result<(), DbError> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::End(0)).map_err(io_err("seek"))?;
        file.write_all(bytes).map_err(io_err("append"))
    }

    fn sync(&self) -> Result<(), DbError> {
        self.file.lock().sync_all().map_err(io_err("sync"))
    }

    fn truncate(&self, len: u64) -> Result<(), DbError> {
        self.file.lock().set_len(len).map_err(io_err("truncate"))
    }

    fn replace(&self, bytes: &[u8]) -> Result<(), DbError> {
        let mut file = self.file.lock();
        let tmp = self.path.with_extension("walswap");
        {
            let mut t = std::fs::File::create(&tmp).map_err(io_err("replace"))?;
            t.write_all(bytes).map_err(io_err("replace"))?;
            t.sync_all().map_err(io_err("replace"))?;
        }
        std::fs::rename(&tmp, &self.path).map_err(io_err("replace"))?;
        *file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(io_err("replace"))?;
        file.sync_all().map_err(io_err("replace"))
    }

    fn len(&self) -> Result<u64, DbError> {
        Ok(self.file.lock().metadata().map_err(io_err("len"))?.len())
    }
}

#[derive(Debug, Default)]
struct FaultState {
    /// Absolute offset past which appended bytes stop persisting; the
    /// surviving prefix is written, then the append errors (torn write).
    torn_at: Option<u64>,
    /// 1-based sync call numbers (counted from construction) that fail.
    fail_syncs_at: Vec<u64>,
    sync_calls: u64,
    fail_truncate: bool,
    fail_replace: bool,
}

/// Fault-injecting [`DbFile`] wrapper for the crash-recovery harness:
/// torn/short appends, fail-at-Nth-sync, failed truncate (rollback) and
/// failed replace (checkpoint). All injection is deterministic.
#[derive(Debug)]
pub struct FaultFile {
    inner: Arc<dyn DbFile>,
    state: Mutex<FaultState>,
}

impl FaultFile {
    /// Wraps an inner file with no faults armed.
    pub fn new(inner: Arc<dyn DbFile>) -> Self {
        FaultFile { inner, state: Mutex::new(FaultState::default()) }
    }

    /// Arms a torn write: bytes at or past `offset` never persist, and
    /// the append that crosses it fails after writing the prefix.
    pub fn tear_at(&self, offset: u64) {
        self.state.lock().torn_at = Some(offset);
    }

    /// Arms the `n`-th future sync call (1-based) to fail. Appended
    /// bytes stay in the inner file — the caller's rollback discipline
    /// is what keeps the log clean.
    pub fn fail_nth_sync(&self, n: u64) {
        let mut s = self.state.lock();
        let target = s.sync_calls + n;
        s.fail_syncs_at.push(target);
    }

    /// Makes every `truncate` fail (poisons rollback) until cleared.
    pub fn fail_truncate(&self, yes: bool) {
        self.state.lock().fail_truncate = yes;
    }

    /// Makes every `replace` fail (checkpoint failure) until cleared.
    pub fn fail_replace(&self, yes: bool) {
        self.state.lock().fail_replace = yes;
    }

    /// Disarms all faults.
    pub fn clear_faults(&self) {
        let mut state = self.state.lock();
        let calls = state.sync_calls;
        *state = FaultState { sync_calls: calls, ..FaultState::default() };
    }
}

impl DbFile for FaultFile {
    fn read_all(&self) -> Result<Vec<u8>, DbError> {
        self.inner.read_all()
    }

    fn append(&self, bytes: &[u8]) -> Result<(), DbError> {
        let torn_at = self.state.lock().torn_at;
        if let Some(t) = torn_at {
            let cur = self.inner.len()?;
            if cur + bytes.len() as u64 > t {
                let keep = t.saturating_sub(cur) as usize;
                self.inner.append(&bytes[..keep])?;
                return Err(DbError::Io {
                    op: "append",
                    detail: "injected torn write".to_string(),
                });
            }
        }
        self.inner.append(bytes)
    }

    fn sync(&self) -> Result<(), DbError> {
        let fail = {
            let mut s = self.state.lock();
            s.sync_calls += 1;
            s.fail_syncs_at.contains(&s.sync_calls)
        };
        if fail {
            return Err(DbError::Io {
                op: "sync",
                detail: "injected sync failure".to_string(),
            });
        }
        self.inner.sync()
    }

    fn truncate(&self, len: u64) -> Result<(), DbError> {
        if self.state.lock().fail_truncate {
            return Err(DbError::Io {
                op: "truncate",
                detail: "injected truncate failure".to_string(),
            });
        }
        self.inner.truncate(len)
    }

    fn replace(&self, bytes: &[u8]) -> Result<(), DbError> {
        if self.state.lock().fail_replace {
            return Err(DbError::Io {
                op: "replace",
                detail: "injected replace failure".to_string(),
            });
        }
        self.inner.replace(bytes)
    }

    fn len(&self) -> Result<u64, DbError> {
        self.inner.len()
    }
}

// ---------------------------------------------------------------------
// Logged operations
// ---------------------------------------------------------------------

/// One logged mutation. Typed variants are validated *before* the
/// record is appended, so their replay cannot fail; [`WalOp::Execute`]
/// carries raw SQL whose runtime errors replay deterministically (the
/// op stays logged, the error reproduces, later ops still apply).
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// `CREATE TABLE`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColumnType)>,
    },
    /// `DROP TABLE`.
    DropTable(String),
    /// Append full-width rows to a table.
    InsertRows {
        /// Target table.
        table: String,
        /// Full-width rows.
        rows: Vec<Vec<Value>>,
    },
    /// Delete every row whose column equals the value (SQL equality).
    DeleteEq {
        /// Target table.
        table: String,
        /// Filter column.
        column: String,
        /// Filter value.
        value: Value,
    },
    /// Delete all rows of a table.
    DeleteAll(String),
    /// Arbitrary non-SELECT SQL (the durable fallback path).
    Execute(String),
}

impl WalOp {
    /// Pre-commit validation against current state: typed ops must be
    /// guaranteed to apply, so a bad batch is rejected *before* any
    /// byte reaches the log.
    fn validate(&self, db: &Database) -> Result<(), DbError> {
        match self {
            WalOp::CreateTable { name, .. } => {
                if db.has_table(name) {
                    return Err(DbError::DuplicateTable(name.clone()));
                }
                Ok(())
            }
            WalOp::DropTable(name) | WalOp::DeleteAll(name) => {
                if !db.has_table(name) {
                    return Err(DbError::UnknownTable(name.clone()));
                }
                Ok(())
            }
            WalOp::InsertRows { table, rows } => {
                let schema = db
                    .table_schema(table)
                    .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
                for row in rows {
                    if row.len() != schema.columns.len() {
                        return Err(DbError::ArityMismatch {
                            expected: schema.columns.len(),
                            found: row.len(),
                        });
                    }
                    for (v, (col, ty)) in row.iter().zip(&schema.columns) {
                        if !v.conforms_to(*ty) {
                            return Err(DbError::TypeMismatch {
                                table: table.clone(),
                                column: col.clone(),
                                value: v.to_string(),
                            });
                        }
                    }
                }
                Ok(())
            }
            WalOp::DeleteEq { table, column, .. } => {
                let schema = db
                    .table_schema(table)
                    .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
                if schema.column_index(column).is_none() {
                    return Err(DbError::UnknownColumn(column.clone()));
                }
                Ok(())
            }
            WalOp::Execute(sql) => {
                if matches!(parse_statement(sql)?, Statement::Select(_)) {
                    return Err(DbError::Eval(
                        "SELECT cannot be committed to the WAL".to_string(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Applies the op to the database.
    fn apply(&self, db: &Database) -> Result<(), DbError> {
        match self {
            WalOp::CreateTable { name, columns } => {
                db.create_table(name, columns.clone())
            }
            WalOp::DropTable(name) => db.drop_table(name),
            WalOp::InsertRows { table, rows } => db.insert_rows(table, rows.clone()),
            WalOp::DeleteEq { table, column, value } => {
                db.delete_eq(table, column, value).map(|_| ())
            }
            WalOp::DeleteAll(table) => db
                .execute_stmt(
                    &Statement::Delete { table: table.clone(), predicate: None },
                    &[],
                )
                .map(|_| ()),
            WalOp::Execute(sql) => db.execute(sql).map(|_| ()),
        }
    }
}

fn encode_op(out: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::CreateTable { name, columns } => {
            out.push(1);
            codec::encode_str(out, name);
            codec::encode_u32(out, columns.len() as u32);
            for (col, ty) in columns {
                codec::encode_str(out, col);
                codec::encode_column_type(out, *ty);
            }
        }
        WalOp::DropTable(name) => {
            out.push(2);
            codec::encode_str(out, name);
        }
        WalOp::InsertRows { table, rows } => {
            out.push(3);
            codec::encode_str(out, table);
            codec::encode_rows(out, rows);
        }
        WalOp::DeleteEq { table, column, value } => {
            out.push(4);
            codec::encode_str(out, table);
            codec::encode_str(out, column);
            codec::encode_value(out, value);
        }
        WalOp::DeleteAll(table) => {
            out.push(5);
            codec::encode_str(out, table);
        }
        WalOp::Execute(sql) => {
            out.push(6);
            codec::encode_str(out, sql);
        }
    }
}

fn decode_op(d: &mut Decoder<'_>) -> Result<WalOp, DbError> {
    match d.u8("op tag")? {
        1 => {
            let name = d.str("table name")?;
            let n = d.u32("column count")? as usize;
            if n > d.remaining() {
                return Err(DbError::Codec {
                    offset: d.offset(),
                    expected: "column count within record",
                });
            }
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                let col = d.str("column name")?;
                let ty = d.column_type()?;
                columns.push((col, ty));
            }
            Ok(WalOp::CreateTable { name, columns })
        }
        2 => Ok(WalOp::DropTable(d.str("table name")?)),
        3 => {
            let table = d.str("table name")?;
            let rows = d.rows()?;
            Ok(WalOp::InsertRows { table, rows })
        }
        4 => Ok(WalOp::DeleteEq {
            table: d.str("table name")?,
            column: d.str("column name")?,
            value: d.value()?,
        }),
        5 => Ok(WalOp::DeleteAll(d.str("table name")?)),
        6 => Ok(WalOp::Execute(d.str("sql text")?)),
        _ => Err(DbError::Codec { offset: d.offset() - 1, expected: "op tag 1..=6" }),
    }
}

/// A fully decoded record.
enum Record {
    Commit(Vec<WalOp>),
    Checkpoint(Vec<(TableSchema, Vec<Vec<Value>>)>),
}

fn decode_record(payload: &[u8]) -> Result<Record, DbError> {
    let mut d = Decoder::new(payload);
    let rec = match d.u8("record tag")? {
        TAG_COMMIT => {
            let n = d.u32("op count")? as usize;
            if n > d.remaining() {
                return Err(DbError::Codec {
                    offset: d.offset(),
                    expected: "op count within record",
                });
            }
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(decode_op(&mut d)?);
            }
            Record::Commit(ops)
        }
        TAG_CHECKPOINT => {
            let n = d.u32("table count")? as usize;
            if n > d.remaining() {
                return Err(DbError::Codec {
                    offset: d.offset(),
                    expected: "table count within record",
                });
            }
            let mut tables = Vec::with_capacity(n);
            for _ in 0..n {
                let name = d.str("table name")?;
                let ncols = d.u32("column count")? as usize;
                if ncols > d.remaining() {
                    return Err(DbError::Codec {
                        offset: d.offset(),
                        expected: "column count within record",
                    });
                }
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    let col = d.str("column name")?;
                    let ty = d.column_type()?;
                    columns.push((col, ty));
                }
                let rows = d.rows()?;
                tables.push((TableSchema { name, columns }, rows));
            }
            Record::Checkpoint(tables)
        }
        _ => {
            return Err(DbError::Codec { offset: 0, expected: "record tag 1 or 2" });
        }
    };
    d.finish()?;
    Ok(rec)
}

/// Frames a payload as `[u32 len][u64 checksum][payload]`.
fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    codec::encode_u32(&mut out, payload.len() as u32);
    codec::encode_u64(&mut out, codec::checksum64(&payload));
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------
// The durable database
// ---------------------------------------------------------------------

/// Durability and compaction knobs.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Flush after every commit append (the durability guarantee; turn
    /// off only for throwaway bulk loads).
    pub sync_on_commit: bool,
    /// Take a checkpoint once this many commit-record bytes have been
    /// appended since the last one. `0` disables automatic checkpoints.
    pub checkpoint_every_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { sync_on_commit: true, checkpoint_every_bytes: 4 * 1024 * 1024 }
    }
}

/// What recovery found in the log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records replayed (checkpoints count as one).
    pub records_replayed: usize,
    /// Operations applied from commit records.
    pub ops_applied: usize,
    /// Bytes of invalid tail (torn/corrupt) truncated away.
    pub truncated_bytes: u64,
}

/// Receipt for one durable commit.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommitReceipt {
    /// Bytes this commit appended to the log (0 if folded away).
    pub wal_bytes: u64,
    /// `true` when the commit tripped an automatic checkpoint.
    pub checkpointed: bool,
}

#[derive(Debug)]
struct WalInner {
    file: Arc<dyn DbFile>,
    /// Length of the log holding only fully committed records.
    committed_len: u64,
    /// Cumulative commit-record bytes appended (monotonic; survives
    /// checkpoints).
    bytes_logged: u64,
    bytes_since_checkpoint: u64,
    /// Set when a failed append/sync could not be rolled back; cleared
    /// by a successful checkpoint (which rewrites the file whole).
    poisoned: Option<String>,
}

/// A [`Database`] whose mutations are write-ahead logged.
///
/// All writes must go through [`commit`](Self::commit),
/// [`execute`](Self::execute) or
/// [`execute_prepared`](Self::execute_prepared); mutating the inner
/// [`database`](Self::database) directly bypasses the log and will not
/// survive a reopen.
#[derive(Debug)]
pub struct DurableDatabase {
    db: Arc<Database>,
    inner: Mutex<WalInner>,
    config: WalConfig,
}

impl DurableDatabase {
    /// Opens (or creates) a durable database over `file`, replaying any
    /// existing log to the last valid record. Torn or corrupt tails are
    /// truncated, never panicked on.
    pub fn open(
        file: Arc<dyn DbFile>,
        config: WalConfig,
    ) -> Result<(Self, RecoveryReport), DbError> {
        let bytes = file.read_all()?;
        let mut report = RecoveryReport::default();
        let mut db = Database::new();
        let committed_len;
        if bytes.is_empty() {
            file.append(MAGIC)?;
            file.sync()?;
            committed_len = MAGIC.len() as u64;
        } else {
            if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
                return Err(DbError::Wal(format!(
                    "not a WAL file (bad magic in {} byte(s))",
                    bytes.len()
                )));
            }
            let mut pos = MAGIC.len();
            while let Some((payload, next)) = take_record(&bytes, pos) {
                let Ok(record) = decode_record(payload) else {
                    break;
                };
                match record {
                    Record::Commit(ops) => {
                        for op in &ops {
                            // Replay reproduces commit-time behavior: an
                            // op that failed at runtime fails again here,
                            // and later ops still apply.
                            let _ = op.apply(&db);
                        }
                        report.ops_applied += ops.len();
                    }
                    Record::Checkpoint(tables) => {
                        let Ok(restored) = restore_image(tables) else {
                            break;
                        };
                        db = restored;
                        report.ops_applied = 0;
                    }
                }
                report.records_replayed += 1;
                pos = next;
            }
            committed_len = pos as u64;
            if (bytes.len() as u64) > committed_len {
                report.truncated_bytes = bytes.len() as u64 - committed_len;
                file.truncate(committed_len)?;
                file.sync()?;
            }
        }
        Ok((
            DurableDatabase {
                db: Arc::new(db),
                inner: Mutex::new(WalInner {
                    file,
                    committed_len,
                    bytes_logged: 0,
                    bytes_since_checkpoint: 0,
                    poisoned: None,
                }),
                config,
            },
            report,
        ))
    }

    /// Opens a durable database at a filesystem path via [`StdFile`].
    pub fn open_path(
        path: impl AsRef<Path>,
        config: WalConfig,
    ) -> Result<(Self, RecoveryReport), DbError> {
        DurableDatabase::open(Arc::new(StdFile::open(path)?), config)
    }

    /// The in-memory database. Reads are free to go through it
    /// directly; writes must use the commit paths.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Bytes of the log holding fully committed records.
    pub fn wal_len(&self) -> u64 {
        self.inner.lock().committed_len
    }

    /// Cumulative commit-record bytes appended over this handle's
    /// lifetime (checkpoint compaction does not subtract).
    pub fn wal_bytes_logged(&self) -> u64 {
        self.inner.lock().bytes_logged
    }

    /// Commits a batch crash-atomically: validate every op, append one
    /// checksummed record, flush, then apply to memory. On append/sync
    /// failure the log rolls back to its committed length and the error
    /// is typed and retryable.
    pub fn commit(&self, ops: &[WalOp]) -> Result<CommitReceipt, DbError> {
        if ops.is_empty() {
            return Ok(CommitReceipt::default());
        }
        let mut inner = self.inner.lock();
        if let Some(why) = &inner.poisoned {
            return Err(DbError::Wal(format!("log poisoned: {why}")));
        }
        for op in ops {
            op.validate(&self.db)?;
        }
        let mut payload = vec![TAG_COMMIT];
        codec::encode_u32(&mut payload, ops.len() as u32);
        for op in ops {
            encode_op(&mut payload, op);
        }
        if payload.len() > MAX_RECORD as usize {
            return Err(DbError::Wal(format!(
                "commit record of {} bytes exceeds the {MAX_RECORD} byte cap",
                payload.len()
            )));
        }
        let record = frame(payload);
        let committed_len = inner.committed_len;
        let io = inner.file.append(&record).and_then(|()| {
            if self.config.sync_on_commit {
                inner.file.sync()
            } else {
                Ok(())
            }
        });
        if let Err(e) = io {
            // Roll the file back so no torn record sits mid-log. If even
            // that fails, poison: later commits would land after garbage.
            if inner.file.truncate(committed_len).is_err() {
                inner.poisoned = Some(format!("rollback after failed commit ({e})"));
            }
            return Err(e);
        }
        inner.committed_len += record.len() as u64;
        inner.bytes_logged += record.len() as u64;
        inner.bytes_since_checkpoint += record.len() as u64;

        // The record is durable; apply to memory. Validation above means
        // typed ops cannot fail here, and Execute errors replay
        // identically, so the log and memory stay in sync either way.
        let mut first_err = None;
        for op in ops {
            if let Err(e) = op.apply(&self.db) {
                first_err.get_or_insert(e);
            }
        }
        let mut checkpointed = false;
        if self.config.checkpoint_every_bytes > 0
            && inner.bytes_since_checkpoint >= self.config.checkpoint_every_bytes
        {
            // Compaction is opportunistic: a failed checkpoint leaves the
            // (intact) log in place and the next commit retries it.
            checkpointed = self.checkpoint_locked(&mut inner).is_ok();
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(CommitReceipt { wal_bytes: record.len() as u64, checkpointed }),
        }
    }

    /// Folds the whole log into one checkpoint record via an atomic
    /// file replace. Also the recovery valve for a poisoned log.
    pub fn checkpoint(&self) -> Result<(), DbError> {
        let mut inner = self.inner.lock();
        self.checkpoint_locked(&mut inner)
    }

    fn checkpoint_locked(&self, inner: &mut WalInner) -> Result<(), DbError> {
        let image = self.db.snapshot_tables();
        let mut payload = vec![TAG_CHECKPOINT];
        codec::encode_u32(&mut payload, image.len() as u32);
        for (schema, rows) in &image {
            codec::encode_str(&mut payload, &schema.name);
            codec::encode_u32(&mut payload, schema.columns.len() as u32);
            for (col, ty) in &schema.columns {
                codec::encode_str(&mut payload, col);
                codec::encode_column_type(&mut payload, *ty);
            }
            codec::encode_rows(&mut payload, rows);
        }
        if payload.len() > MAX_RECORD as usize {
            return Err(DbError::Wal(format!(
                "checkpoint image of {} bytes exceeds the {MAX_RECORD} byte cap",
                payload.len()
            )));
        }
        let mut content = MAGIC.to_vec();
        content.extend_from_slice(&frame(payload));
        inner.file.replace(&content)?;
        inner.file.sync()?;
        inner.committed_len = content.len() as u64;
        inner.bytes_since_checkpoint = 0;
        inner.poisoned = None;
        Ok(())
    }

    /// Parses and runs one SQL statement. SELECTs read the in-memory
    /// state directly; everything else is committed through the log
    /// first, and the returned metrics carry the WAL bytes written.
    pub fn execute(&self, sql: &str) -> Result<ResultSet, DbError> {
        let stmt = parse_statement(sql)?;
        if matches!(stmt, Statement::Select(_)) {
            return self.db.execute_stmt(&stmt, &[]);
        }
        let receipt = self.commit(&[WalOp::Execute(sql.to_string())])?;
        let mut rs = ResultSet::empty();
        rs.metrics.wal_bytes_written = receipt.wal_bytes;
        Ok(rs)
    }

    /// Executes a prepared statement durably. SELECTs bypass the log;
    /// INSERT/DELETE/DDL lower to typed [`WalOp`]s and commit.
    pub fn execute_prepared(
        &self,
        stmt: &Prepared,
        params: &[Value],
    ) -> Result<ResultSet, DbError> {
        if stmt.is_select() {
            return self.db.execute_prepared(stmt, params);
        }
        if params.len() != stmt.param_count() {
            return Err(DbError::ParamMismatch {
                expected: stmt.param_count(),
                found: params.len(),
            });
        }
        let ops = self.lower(stmt, params)?;
        let receipt = self.commit(&ops)?;
        let mut rs = ResultSet::empty();
        rs.metrics.wal_bytes_written = receipt.wal_bytes;
        Ok(rs)
    }

    /// Lowers a non-SELECT statement to typed WAL ops.
    fn lower(&self, stmt: &Prepared, params: &[Value]) -> Result<Vec<WalOp>, DbError> {
        match stmt.statement() {
            // A SELECT reaching the write-path lowering is a caller
            // bug, but recovery code never panics over it — it surfaces
            // as a typed evaluation error instead.
            Statement::Select(_) => {
                Err(DbError::Eval("SELECT cannot be lowered to WAL ops".to_string()))
            }
            Statement::CreateTable { name, columns } => Ok(vec![WalOp::CreateTable {
                name: name.clone(),
                columns: columns.clone(),
            }]),
            Statement::DropTable(name) => Ok(vec![WalOp::DropTable(name.clone())]),
            Statement::Insert { table, columns, rows } => {
                let schema = self
                    .db
                    .table_schema(table)
                    .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
                let mut full = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        vals.push(eval_insert_literal(e, params)?);
                    }
                    full.push(match columns {
                        None => vals,
                        // Expand a partial insert to full width (NULLs
                        // elsewhere), mirroring `insert_partial`.
                        Some(cols) => {
                            if cols.len() != vals.len() {
                                return Err(DbError::ArityMismatch {
                                    expected: cols.len(),
                                    found: vals.len(),
                                });
                            }
                            let mut wide = vec![Value::Null; schema.columns.len()];
                            for (col, v) in cols.iter().zip(vals) {
                                let i = schema.column_index(col).ok_or_else(|| {
                                    DbError::UnknownColumn(col.clone())
                                })?;
                                wide[i] = v;
                            }
                            wide
                        }
                    });
                }
                Ok(vec![WalOp::InsertRows { table: table.clone(), rows: full }])
            }
            Statement::Delete { table, predicate } => match predicate {
                None => Ok(vec![WalOp::DeleteAll(table.clone())]),
                Some(Expr::Binary { lhs, op: BinOp::Eq, rhs }) => {
                    if let Expr::Column { qualifier: None, name } = lhs.as_ref() {
                        let value = match rhs.as_ref() {
                            Expr::Param(i) => params[*i].clone(),
                            Expr::Literal(v) => v.clone(),
                            _ => {
                                return self.lower_delete_fallback(stmt, params, table)
                            }
                        };
                        return Ok(vec![WalOp::DeleteEq {
                            table: table.clone(),
                            column: name.clone(),
                            value,
                        }]);
                    }
                    self.lower_delete_fallback(stmt, params, table)
                }
                Some(_) => self.lower_delete_fallback(stmt, params, table),
            },
        }
    }

    /// A DELETE whose predicate is not a plain equality: without
    /// parameters the raw SQL is logged; with parameters there is no
    /// faithful SQL rendering, so it is rejected typed.
    fn lower_delete_fallback(
        &self,
        stmt: &Prepared,
        params: &[Value],
        table: &str,
    ) -> Result<Vec<WalOp>, DbError> {
        if params.is_empty() {
            return Ok(vec![WalOp::Execute(stmt.text().to_string())]);
        }
        Err(DbError::Eval(format!(
            "parameterized DELETE on {table:?} must use a plain `column = ?` predicate \
             on the durable path"
        )))
    }
}

/// Validates and extracts the record starting at `pos`; `None` means
/// the bytes from `pos` on are not a valid record (torn or corrupt).
fn take_record(bytes: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let header = bytes.get(pos..pos + 12)?;
    let len = u32::from_le_bytes(header.get(..4)?.try_into().ok()?);
    if len > MAX_RECORD {
        return None;
    }
    let checksum = u64::from_le_bytes(header.get(4..12)?.try_into().ok()?);
    let start = pos + 12;
    let payload = bytes.get(start..start + len as usize)?;
    if codec::checksum64(payload) != checksum {
        return None;
    }
    Some((payload, start + len as usize))
}

/// Rebuilds a database from a checkpoint image.
fn restore_image(
    tables: Vec<(TableSchema, Vec<Vec<Value>>)>,
) -> Result<Database, DbError> {
    let db = Database::new();
    for (TableSchema { name, columns }, rows) in tables {
        db.create_table(&name, columns)?;
        db.insert_rows(&name, rows)?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Arc<MemFile> {
        Arc::new(MemFile::new())
    }

    fn seed(wal: &DurableDatabase) {
        wal.commit(&[WalOp::CreateTable {
            name: "t".to_string(),
            columns: vec![
                ("a".to_string(), ColumnType::Integer),
                ("b".to_string(), ColumnType::Real),
            ],
        }])
        .unwrap();
    }

    #[test]
    fn commit_then_reopen_replays() {
        let file = mem();
        let (wal, report) =
            DurableDatabase::open(file.clone(), WalConfig::default()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        seed(&wal);
        wal.commit(&[WalOp::InsertRows {
            table: "t".to_string(),
            rows: vec![vec![Value::Int(1), Value::Float(-0.0)]],
        }])
        .unwrap();
        drop(wal);

        let (wal, report) = DurableDatabase::open(file, WalConfig::default()).unwrap();
        assert_eq!(report.records_replayed, 2);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(wal.database().row_count("t").unwrap(), 1);
        let rs = wal.database().execute("SELECT b FROM t").unwrap();
        let Value::Float(b) = rs.rows[0][0] else { panic!() };
        assert_eq!(b.to_bits(), (-0.0f64).to_bits(), "bit-exact through the log");
    }

    #[test]
    fn torn_tail_recovers_to_committed_prefix() {
        let file = mem();
        let (wal, _) =
            DurableDatabase::open(file.clone(), WalConfig::default()).unwrap();
        seed(&wal);
        wal.commit(&[WalOp::InsertRows {
            table: "t".to_string(),
            rows: vec![vec![Value::Int(1), Value::Float(1.0)]],
        }])
        .unwrap();
        let committed = wal.wal_len();
        wal.commit(&[WalOp::InsertRows {
            table: "t".to_string(),
            rows: vec![vec![Value::Int(2), Value::Float(2.0)]],
        }])
        .unwrap();
        drop(wal);

        // Crash mid-append of the final record: keep an arbitrary prefix.
        for cut in committed..file.len().unwrap() {
            let bytes = file.snapshot();
            let torn = Arc::new(MemFile::new());
            torn.append(&bytes[..cut as usize]).unwrap();
            let (wal, report) =
                DurableDatabase::open(torn, WalConfig::default()).unwrap();
            assert_eq!(report.records_replayed, 2, "cut at {cut}");
            assert_eq!(report.truncated_bytes, cut - committed, "cut at {cut}");
            assert_eq!(wal.database().row_count("t").unwrap(), 1, "cut at {cut}");
        }
    }

    #[test]
    fn failed_sync_rolls_back_and_is_retryable() {
        let inner = mem();
        let fault = Arc::new(FaultFile::new(inner));
        let (wal, _) = DurableDatabase::open(
            fault.clone() as Arc<dyn DbFile>,
            WalConfig::default(),
        )
        .unwrap();
        seed(&wal);
        let len_before = wal.wal_len();
        fault.fail_nth_sync(1);
        let op = WalOp::InsertRows {
            table: "t".to_string(),
            rows: vec![vec![Value::Int(7), Value::Float(7.0)]],
        };
        let err = wal.commit(std::slice::from_ref(&op)).unwrap_err();
        assert!(matches!(err, DbError::Io { op: "sync", .. }), "{err:?}");
        // Nothing applied, nothing left in the log.
        assert_eq!(wal.database().row_count("t").unwrap(), 0);
        assert_eq!(fault.len().unwrap(), len_before);
        // The retry succeeds.
        wal.commit(&[op]).unwrap();
        assert_eq!(wal.database().row_count("t").unwrap(), 1);
    }

    #[test]
    fn failed_rollback_poisons_until_checkpoint() {
        let inner = mem();
        let fault = Arc::new(FaultFile::new(inner));
        let (wal, _) = DurableDatabase::open(
            fault.clone() as Arc<dyn DbFile>,
            WalConfig::default(),
        )
        .unwrap();
        seed(&wal);
        fault.fail_nth_sync(1);
        fault.fail_truncate(true);
        let op = WalOp::InsertRows {
            table: "t".to_string(),
            rows: vec![vec![Value::Int(1), Value::Float(1.0)]],
        };
        wal.commit(std::slice::from_ref(&op)).unwrap_err();
        let err = wal.commit(std::slice::from_ref(&op)).unwrap_err();
        assert!(matches!(err, DbError::Wal(_)), "poisoned log fails typed: {err:?}");
        // A checkpoint rewrites the file whole and heals the log.
        fault.clear_faults();
        wal.checkpoint().unwrap();
        wal.commit(&[op]).unwrap();
        assert_eq!(wal.database().row_count("t").unwrap(), 1);
    }

    #[test]
    fn checkpoint_compacts_and_survives_reopen() {
        let file = mem();
        let (wal, _) =
            DurableDatabase::open(file.clone(), WalConfig::default()).unwrap();
        seed(&wal);
        for i in 0..50 {
            wal.commit(&[WalOp::InsertRows {
                table: "t".to_string(),
                rows: vec![vec![Value::Int(i), Value::Float(i as f64)]],
            }])
            .unwrap();
        }
        let before = wal.wal_len();
        wal.checkpoint().unwrap();
        assert!(wal.wal_len() < before, "checkpoint must shrink the log");
        drop(wal);
        let (wal, report) = DurableDatabase::open(file, WalConfig::default()).unwrap();
        assert_eq!(report.records_replayed, 1, "one checkpoint record");
        assert_eq!(wal.database().row_count("t").unwrap(), 50);
    }

    #[test]
    fn automatic_checkpoint_triggers_on_byte_threshold() {
        let file = mem();
        let config = WalConfig { sync_on_commit: true, checkpoint_every_bytes: 256 };
        let (wal, _) = DurableDatabase::open(file, config).unwrap();
        seed(&wal);
        let mut saw_checkpoint = false;
        for i in 0..20 {
            let receipt = wal
                .commit(&[WalOp::InsertRows {
                    table: "t".to_string(),
                    rows: vec![vec![Value::Int(i), Value::Float(0.5)]],
                }])
                .unwrap();
            saw_checkpoint |= receipt.checkpointed;
        }
        assert!(saw_checkpoint);
        assert_eq!(wal.database().row_count("t").unwrap(), 20);
    }

    #[test]
    fn bit_flip_anywhere_truncates_from_that_record() {
        let file = mem();
        let (wal, _) =
            DurableDatabase::open(file.clone(), WalConfig::default()).unwrap();
        seed(&wal);
        wal.commit(&[WalOp::InsertRows {
            table: "t".to_string(),
            rows: vec![vec![Value::Int(3), Value::Float(3.0)]],
        }])
        .unwrap();
        drop(wal);
        let clean = file.snapshot();
        // Flip one bit inside the *second* record's payload.
        let flipped = Arc::new(MemFile::new());
        flipped.append(&clean).unwrap();
        flipped.corrupt(clean.len() - 4, 0x40);
        let (wal, report) =
            DurableDatabase::open(flipped, WalConfig::default()).unwrap();
        assert_eq!(report.records_replayed, 1);
        assert!(report.truncated_bytes > 0);
        assert_eq!(wal.database().row_count("t").unwrap(), 0, "uncommitted row gone");
    }

    #[test]
    fn non_wal_file_is_a_typed_error() {
        let file = mem();
        file.append(b"definitely not a log").unwrap();
        let err = DurableDatabase::open(file, WalConfig::default()).unwrap_err();
        assert!(matches!(err, DbError::Wal(_)), "{err:?}");
    }

    #[test]
    fn durable_execute_and_prepared_roundtrip() {
        let file = mem();
        let (wal, _) =
            DurableDatabase::open(file.clone(), WalConfig::default()).unwrap();
        wal.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        let ins = wal.database().prepare("INSERT INTO t VALUES (?, ?)").unwrap();
        let rs =
            wal.execute_prepared(&ins, &[Value::Int(1), Value::from("one")]).unwrap();
        assert!(rs.metrics.wal_bytes_written > 0);
        wal.execute_prepared(&ins, &[Value::Int(2), Value::from("two")]).unwrap();
        let del = wal.database().prepare("DELETE FROM t WHERE a = ?").unwrap();
        wal.execute_prepared(&del, &[Value::Int(1)]).unwrap();
        drop(wal);
        let (wal, _) = DurableDatabase::open(file, WalConfig::default()).unwrap();
        let rs = wal.execute("SELECT a, b FROM t").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(2));
    }
}
