//! Bit-exact binary codec for [`Value`] rows and WAL records.
//!
//! The SQL-literal round trip (`Value::sql_literal` → lexer → parser)
//! is lossless for every value the engine stores *except* NaN payloads,
//! and it pays a full tokenizer/parser pass per row. This codec is the
//! storage-grade alternative: floats travel as raw `f64::to_bits`
//! (every NaN payload, `-0.0`, subnormals and infinities survive
//! bit-for-bit), strings are length-prefixed UTF-8, and integers keep
//! their 64-bit two's-complement form — the same discipline as
//! `jit-service::wire`, but self-contained so jit-db stays dependency
//! free.
//!
//! Decoding never panics: every failure is a typed
//! [`DbError::Codec`] carrying the byte offset and what was expected
//! there, and length prefixes are validated against the remaining
//! buffer *before* any allocation, so a corrupt 4 GiB length claim
//! costs nothing.

// Decode/serve path: panics are denied outright here (tests and the
// few fn-level reasoned allows excepted) — hostile bytes and worker
// failures must surface as typed errors.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::DbError;
use crate::value::{ColumnType, Value};

/// Value tag: SQL NULL.
const TAG_NULL: u8 = 0;
/// Value tag: 64-bit signed integer.
const TAG_INT: u8 = 1;
/// Value tag: IEEE-754 double as raw bits.
const TAG_FLOAT: u8 = 2;
/// Value tag: length-prefixed UTF-8 string.
const TAG_TEXT: u8 = 3;
/// Value tag: boolean.
const TAG_BOOL: u8 = 4;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Appends the binary form of one value.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(TAG_TEXT);
            encode_str(out, s);
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
    }
}

/// Exact encoded size of one value, without encoding it. Used by the
/// executor to meter bytes materialized from storage.
pub fn encoded_len(v: &Value) -> u64 {
    match v {
        Value::Null => 1,
        Value::Int(_) | Value::Float(_) => 9,
        Value::Text(s) => 5 + s.len() as u64,
        Value::Bool(_) => 2,
    }
}

/// Appends a count-prefixed row of values.
pub fn encode_row(out: &mut Vec<u8>, row: &[Value]) {
    encode_u32(out, row.len() as u32);
    for v in row {
        encode_value(out, v);
    }
}

/// Appends a count-prefixed batch of rows.
pub fn encode_rows(out: &mut Vec<u8>, rows: &[Vec<Value>]) {
    encode_u32(out, rows.len() as u32);
    for row in rows {
        encode_row(out, row);
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn encode_str(out: &mut Vec<u8>, s: &str) {
    encode_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a little-endian `u32`.
pub fn encode_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn encode_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

/// Appends a column-type tag byte.
pub fn encode_column_type(out: &mut Vec<u8>, t: ColumnType) {
    out.push(match t {
        ColumnType::Integer => 0,
        ColumnType::Real => 1,
        ColumnType::Text => 2,
        ColumnType::Boolean => 3,
    });
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A bounds-checked cursor over an encoded buffer.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Typed "expected X at this offset" error.
    fn err(&self, expected: &'static str) -> DbError {
        DbError::Codec { offset: self.pos, expected }
    }

    /// Fails unless the whole buffer was consumed.
    pub fn finish(&self) -> Result<(), DbError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.err("end of record"))
        }
    }

    fn take(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], DbError> {
        if self.remaining() < n {
            return Err(self.err(expected));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Decodes one byte.
    pub fn u8(&mut self, expected: &'static str) -> Result<u8, DbError> {
        Ok(self.take(1, expected)?[0])
    }

    /// Decodes a little-endian `u32`.
    pub fn u32(&mut self, expected: &'static str) -> Result<u32, DbError> {
        let b = self.take(4, expected)?;
        let a: [u8; 4] = b.try_into().map_err(|_| self.err(expected))?;
        Ok(u32::from_le_bytes(a))
    }

    /// Decodes a little-endian `u64`.
    pub fn u64(&mut self, expected: &'static str) -> Result<u64, DbError> {
        let b = self.take(8, expected)?;
        let a: [u8; 8] = b.try_into().map_err(|_| self.err(expected))?;
        Ok(u64::from_le_bytes(a))
    }

    /// Decodes a length-prefixed UTF-8 string. The length is validated
    /// against the remaining bytes before allocating.
    pub fn str(&mut self, expected: &'static str) -> Result<String, DbError> {
        let len = self.u32(expected)? as usize;
        if len > self.remaining() {
            return Err(self.err(expected));
        }
        let bytes = self.take(len, expected)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DbError::Codec {
            offset: self.pos - len,
            expected: "valid UTF-8",
        })
    }

    /// Decodes one tagged value.
    pub fn value(&mut self) -> Result<Value, DbError> {
        let tag = self.u8("value tag")?;
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_INT => {
                let b = self.take(8, "int payload")?;
                let a: [u8; 8] = b.try_into().map_err(|_| self.err("int payload"))?;
                Ok(Value::Int(i64::from_le_bytes(a)))
            }
            TAG_FLOAT => {
                let bits = self.u64("float payload")?;
                Ok(Value::Float(f64::from_bits(bits)))
            }
            TAG_TEXT => Ok(Value::Text(self.str("text payload")?)),
            TAG_BOOL => match self.u8("bool payload")? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                _ => Err(DbError::Codec {
                    offset: self.pos - 1,
                    expected: "bool 0 or 1",
                }),
            },
            _ => Err(DbError::Codec {
                offset: self.pos - 1,
                expected: "value tag 0..=4",
            }),
        }
    }

    /// Decodes a count-prefixed row. Each value costs ≥ 1 byte, so the
    /// claimed count is validated against the remaining bytes up front.
    pub fn row(&mut self) -> Result<Vec<Value>, DbError> {
        let n = self.u32("row arity")? as usize;
        if n > self.remaining() {
            return Err(self.err("row arity within record"));
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }

    /// Decodes a count-prefixed batch of rows.
    pub fn rows(&mut self) -> Result<Vec<Vec<Value>>, DbError> {
        let n = self.u32("row count")? as usize;
        if n > self.remaining() {
            return Err(self.err("row count within record"));
        }
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(self.row()?);
        }
        Ok(rows)
    }

    /// Decodes a column-type tag byte.
    pub fn column_type(&mut self) -> Result<ColumnType, DbError> {
        match self.u8("column type tag")? {
            0 => Ok(ColumnType::Integer),
            1 => Ok(ColumnType::Real),
            2 => Ok(ColumnType::Text),
            3 => Ok(ColumnType::Boolean),
            _ => Err(DbError::Codec {
                offset: self.pos - 1,
                expected: "column type tag 0..=3",
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------

/// 64-bit content checksum for WAL records: FNV-1a with a splitmix64
/// finalizer for avalanche. Not cryptographic — it detects torn writes
/// and media bit flips, which is all the recovery path needs.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&mut buf, &v);
        assert_eq!(buf.len() as u64, encoded_len(&v));
        let mut d = Decoder::new(&buf);
        let back = d.value().expect("decodes");
        d.finish().expect("fully consumed");
        back
    }

    #[test]
    fn scalar_roundtrips_are_bit_exact() {
        assert_eq!(roundtrip(Value::Null), Value::Null);
        assert_eq!(roundtrip(Value::Int(i64::MIN)), Value::Int(i64::MIN));
        assert_eq!(roundtrip(Value::Bool(true)), Value::Bool(true));
        assert_eq!(
            roundtrip(Value::Text("héllo\0🦀".into())),
            Value::Text("héllo\0🦀".into())
        );
        // NaN payloads survive — the one thing sql_literal collapses.
        let weird_nan = f64::from_bits(0x7ff8_dead_beef_0001);
        match roundtrip(Value::Float(weird_nan)) {
            Value::Float(x) => assert_eq!(x.to_bits(), weird_nan.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
        match roundtrip(Value::Float(-0.0)) {
            Value::Float(x) => assert_eq!(x.to_bits(), (-0.0f64).to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn truncation_yields_typed_error() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::Text("abcdef".into()));
        for cut in 0..buf.len() {
            let mut d = Decoder::new(&buf[..cut]);
            assert!(d.value().is_err(), "cut at {cut} must fail typed");
        }
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // Claims a 4 GiB string with 2 bytes of payload.
        let buf = [TAG_TEXT, 0xff, 0xff, 0xff, 0xff, b'x', b'y'];
        let mut d = Decoder::new(&buf);
        match d.value() {
            Err(DbError::Codec { .. }) => {}
            other => panic!("expected codec error, got {other:?}"),
        }
    }

    #[test]
    fn checksum_differs_on_single_bit_flip() {
        let mut buf = Vec::new();
        encode_rows(&mut buf, &[vec![Value::Int(7), Value::Text("x".into())]]);
        let base = checksum64(&buf);
        for i in 0..buf.len() {
            buf[i] ^= 0x10;
            assert_ne!(checksum64(&buf), base, "flip at byte {i} must change checksum");
            buf[i] ^= 0x10;
        }
    }
}
