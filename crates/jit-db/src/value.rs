//! Runtime values and column types.

use std::cmp::Ordering;
use std::fmt;

/// Declared column types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Real,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Boolean,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Integer => write!(f, "INTEGER"),
            ColumnType::Real => write!(f, "REAL"),
            ColumnType::Text => write!(f, "TEXT"),
            ColumnType::Boolean => write!(f, "BOOLEAN"),
        }
    }
}

/// A runtime value.
///
/// The derived `PartialEq` is *structural* (used for AST equality in
/// tests); SQL equality with numeric coercion and NULL semantics is
/// [`Value::sql_eq`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// `true` when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int and Float only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (Int only; Float accepted when integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Boolean view; numeric zero/nonzero coerces like SQL.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Null => false,
            Value::Text(_) => false,
        }
    }

    /// Whether this value can be stored in a column of the given type.
    /// NULL is storable anywhere; Int widens into REAL columns.
    pub fn conforms_to(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ColumnType::Integer)
                | (Value::Int(_), ColumnType::Real)
                | (Value::Float(_), ColumnType::Real)
                | (Value::Text(_), ColumnType::Text)
                | (Value::Bool(_), ColumnType::Boolean)
        )
    }

    /// SQL comparison; `None` when either side is NULL or types are
    /// incomparable. Int and Float compare numerically; Bool compares as
    /// false < true.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality through [`Value::compare`].
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }

    /// Total ordering for ORDER BY / DISTINCT / GROUP BY: NULLs sort last,
    /// mixed incomparable types order by a type rank so sorting is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 4,
                Value::Int(_) | Value::Float(_) => 0,
                Value::Text(_) => 1,
                Value::Bool(_) => 2,
            }
        }
        match self.compare(other) {
            Some(o) => o,
            None => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                _ => rank(self).cmp(&rank(other)).then_with(|| {
                    // Same rank but incomparable can only be NaN floats.
                    let a = self.as_f64().unwrap_or(f64::NAN);
                    let b = other.as_f64().unwrap_or(f64::NAN);
                    a.total_cmp(&b)
                }),
            },
        }
    }

    /// Renders the value as a SQL literal that parses back to an equal
    /// value — **bit-exactly** for floats.
    ///
    /// This is the lossless serialization path: finite floats use Rust's
    /// shortest round-trip representation (always containing a `.` or an
    /// exponent, so the lexer keeps them `REAL` instead of integerizing
    /// `2.0`), and non-finite floats render as the `NAN` / `INF` /
    /// `-INF` literals the parser accepts. The one caveat: NaN *payloads*
    /// collapse to the canonical quiet NaN (there is only one NaN
    /// literal).
    pub fn sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.is_nan() {
                    "NAN".to_string()
                } else if *f == f64::INFINITY {
                    "INF".to_string()
                } else if *f == f64::NEG_INFINITY {
                    "-INF".to_string()
                } else {
                    // `{:?}` is the shortest decimal that round-trips and
                    // always reads back as a float ("2.0", "-0.0", "1e300").
                    format!("{f:?}")
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }

    /// Key usable in hash-based DISTINCT/GROUP BY: canonicalizes numerics.
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "\u{0}null".to_string(),
            Value::Int(i) => format!("n{}", *i as f64),
            Value::Float(f) => format!("n{f}"),
            Value::Text(s) => format!("t{s}"),
            Value::Bool(b) => format!("b{b}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(Value::Int(2).compare(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(1).compare(&Value::Float(1.5)), Some(Ordering::Less));
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
    }

    #[test]
    fn null_comparisons_are_none() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn text_and_bool_compare() {
        assert_eq!(
            Value::Text("a".into()).compare(&Value::Text("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Bool(false).compare(&Value::Bool(true)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Text("a".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_orders_nulls_last() {
        let mut vs = [Value::Null, Value::Int(3), Value::Float(1.5), Value::Int(2)];
        vs.sort_by(|a, b| a.total_cmp(b));
        let shown: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
        assert_eq!(shown, vec!["1.5", "2", "3", "NULL"]);
    }

    #[test]
    fn conforms_widens_int_to_real() {
        assert!(Value::Int(1).conforms_to(ColumnType::Real));
        assert!(!Value::Float(1.0).conforms_to(ColumnType::Integer));
        assert!(Value::Null.conforms_to(ColumnType::Text));
        assert!(!Value::Text("x".into()).conforms_to(ColumnType::Boolean));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Int(5).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Null.truthy());
    }

    #[test]
    fn group_keys_canonicalize_numerics() {
        assert_eq!(Value::Int(2).group_key(), Value::Float(2.0).group_key());
        assert_ne!(Value::Int(2).group_key(), Value::Text("2".into()).group_key());
        assert_ne!(Value::Null.group_key(), Value::Text("null".into()).group_key());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::Float(3.25).to_string(), "3.25");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn sql_literal_floats_are_lossless_text() {
        assert_eq!(Value::Float(2.0).sql_literal(), "2.0");
        assert_eq!(Value::Float(-0.0).sql_literal(), "-0.0");
        assert_eq!(Value::Float(f64::NAN).sql_literal(), "NAN");
        assert_eq!(Value::Float(f64::INFINITY).sql_literal(), "INF");
        assert_eq!(Value::Float(f64::NEG_INFINITY).sql_literal(), "-INF");
        assert_eq!(Value::Int(-7).sql_literal(), "-7");
        assert_eq!(Value::Null.sql_literal(), "NULL");
        assert_eq!(Value::Text("it's".into()).sql_literal(), "'it''s'");
        assert_eq!(Value::Bool(true).sql_literal(), "TRUE");
        // Shortest-repr text re-parses to the identical bits.
        for v in [0.1 + 0.2, f64::MAX, f64::MIN_POSITIVE, 5e-324, 1.0 / 3.0] {
            let text = Value::Float(v).sql_literal();
            assert_eq!(text.parse::<f64>().unwrap().to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn as_i64_accepts_integral_floats() {
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::Text("3".into()).as_i64(), None);
    }
}
