//! # jit-db
//!
//! An in-memory relational engine with the SQL subset JustInTime needs.
//!
//! The original system stores generated candidates in MySQL and translates
//! canned user questions into SQL (paper §II-C, Figure 2). This crate
//! replaces MySQL with a small, fully tested engine that executes those
//! queries *verbatim*, including the gnarly ones: correlated `EXISTS`
//! subqueries referencing outer projection aliases (Q3) and
//! `>= ALL (subquery)` comparisons (Q6).
//!
//! Supported surface:
//!
//! * `CREATE TABLE t (col TYPE, …)` with `INTEGER | REAL | TEXT | BOOLEAN`
//! * `INSERT INTO t VALUES (…), (…), …` and `INSERT INTO t (cols) VALUES …`
//! * `SELECT [DISTINCT] proj, … FROM t [AS a]`
//!   `[INNER JOIN u [AS b] ON expr]*`
//!   `[WHERE expr] [GROUP BY expr, …] [HAVING expr]`
//!   `[ORDER BY expr [ASC|DESC], …] [LIMIT n]`
//! * expressions: literals, (qualified) columns, `+ - * / %`, comparisons,
//!   `AND OR NOT`, `BETWEEN`, `IN (list | subquery)`, `EXISTS (subquery)`,
//!   `expr op ALL/ANY (subquery)`, `IS [NOT] NULL`, scalar subqueries,
//!   aggregates `COUNT/SUM/AVG/MIN/MAX` (with `COUNT(*)`)
//!
//! Semantics notes: comparisons involving `NULL` are false (no full
//! three-valued logic); aggregates skip `NULL`s; `ORDER BY` is a stable
//! sort with `NULL`s last.
//!
//! Entry point: [`Database`], which wraps the catalog behind a
//! `parking_lot::RwLock` so the per-time-point candidate generators can
//! insert in parallel while readers run queries.

pub mod ast;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod result;
pub mod table;
pub mod value;

pub use catalog::Database;
pub use error::DbError;
pub use result::ResultSet;
pub use value::{ColumnType, Value};

/// Parses and executes one SQL statement against a database.
///
/// Convenience wrapper over [`Database::execute`].
pub fn execute(db: &Database, sql: &str) -> Result<ResultSet, DbError> {
    db.execute(sql)
}
