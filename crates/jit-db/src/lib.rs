//! # jit-db
//!
//! An in-memory relational engine with the SQL subset JustInTime needs.
//!
//! The original system stores generated candidates in MySQL and translates
//! canned user questions into SQL (paper §II-C, Figure 2). This crate
//! replaces MySQL with a small, fully tested engine that executes those
//! queries *verbatim*, including the gnarly ones: correlated `EXISTS`
//! subqueries referencing outer projection aliases (Q3) and
//! `>= ALL (subquery)` comparisons (Q6).
//!
//! Supported surface:
//!
//! * `CREATE TABLE t (col TYPE, …)` with `INTEGER | REAL | TEXT | BOOLEAN`
//! * `INSERT INTO t VALUES (…), (…), …` and `INSERT INTO t (cols) VALUES …`
//! * `SELECT [DISTINCT] proj, … FROM t [AS a]`
//!   `[INNER JOIN u [AS b] ON expr]*`
//!   `[WHERE expr] [GROUP BY expr, …] [HAVING expr]`
//!   `[ORDER BY expr [ASC|DESC], …] [LIMIT n]`
//! * expressions: literals, (qualified) columns, `+ - * / %`, comparisons,
//!   `AND OR NOT`, `BETWEEN`, `IN (list | subquery)`, `EXISTS (subquery)`,
//!   `expr op ALL/ANY (subquery)`, `IS [NOT] NULL`, scalar subqueries,
//!   aggregates `COUNT/SUM/AVG/MIN/MAX` (with `COUNT(*)`)
//!
//! Semantics notes: comparisons involving `NULL` are false (no full
//! three-valued logic); aggregates skip `NULL`s; `ORDER BY` is a stable
//! sort with `NULL`s last.
//!
//! Entry point: [`Database`], which wraps the catalog behind a
//! `parking_lot::RwLock` so the per-time-point candidate generators can
//! insert in parallel while readers run queries.
//!
//! ## Prepared statements
//!
//! [`Database::prepare`] compiles SQL once into a [`Prepared`]
//! statement with positional `?` parameters; execution binds typed
//! [`Value`]s directly — no lexer, parser, or `sql_literal` rendering
//! on the hot path, and float parameters stay bit-exact (NaN payloads,
//! `-0.0`). Store-shaped SELECTs additionally compile to a direct scan
//! plan. Every execution reports [`ExecutionMetrics`] (rows/bytes
//! scanned, rows output, WAL bytes written).
//!
//! ## Durability
//!
//! [`DurableDatabase`] (in [`wal`]) wraps a [`Database`] with an
//! append-only write-ahead log behind the pluggable [`DbFile`] trait.
//! The contract, in one paragraph: a commit is acknowledged only after
//! its batch is encoded into a checksummed record, appended, and
//! flushed; reopening replays the log to the last valid record and
//! truncates any torn or corrupt tail, so recovery always lands on the
//! longest committed prefix — never a partial batch, never a panic.
//! Checkpoints fold the log into one full-image record via an atomic
//! file replace, bounding log growth and reopen time. See the [`wal`]
//! module docs for the failure-handling fine print (rollback on failed
//! append/sync, poisoning, and the fault-injection harness).

#![forbid(unsafe_code)]

pub mod ast;
pub mod catalog;
pub mod codec;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod prepare;
pub mod result;
pub mod table;
pub mod value;
pub mod wal;

pub use catalog::Database;
pub use error::DbError;
pub use prepare::Prepared;
pub use result::{ExecutionMetrics, ResultSet};
pub use value::{ColumnType, Value};
pub use wal::{
    CommitReceipt, DbFile, DurableDatabase, FaultFile, MemFile, RecoveryReport,
    StdFile, WalConfig, WalOp,
};

/// Parses and executes one SQL statement against a database.
///
/// Convenience wrapper over [`Database::execute`].
pub fn execute(db: &Database, sql: &str) -> Result<ResultSet, DbError> {
    db.execute(sql)
}
