//! Query results.

use crate::value::Value;
use std::fmt;

/// Work counters accumulated while executing one statement.
///
/// `rows_scanned`/`bytes_scanned` meter rows materialized from base
/// tables (bytes in the binary codec's encoding, via
/// [`crate::codec::encoded_len`]); subquery scans accumulate into the
/// outer statement's totals. `wal_bytes_written` is stamped by the
/// durability layer ([`crate::wal::DurableDatabase`]) and stays zero
/// for plain in-memory execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutionMetrics {
    /// Base-table rows materialized during execution.
    pub rows_scanned: u64,
    /// Encoded bytes of those rows.
    pub bytes_scanned: u64,
    /// Rows in the final result.
    pub rows_output: u64,
    /// Bytes appended to the write-ahead log by this statement.
    pub wal_bytes_written: u64,
}

/// The materialized result of a statement.
#[derive(Clone, Debug, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Work counters for this statement.
    pub metrics: ExecutionMetrics,
}

impl ResultSet {
    /// An empty result (used by DDL/DML statements).
    pub fn empty() -> Self {
        ResultSet::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single scalar of a 1x1 result, if that is the shape.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Index of an output column by name (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// All values of one output column.
    pub fn column(&self, name: &str) -> Option<Vec<&Value>> {
        let i = self.column_index(name)?;
        Some(self.rows.iter().map(|r| &r[i]).collect())
    }

    /// Numeric view of one column; `None` entries for non-numerics.
    pub fn column_f64(&self, name: &str) -> Option<Vec<Option<f64>>> {
        let i = self.column_index(name)?;
        Some(self.rows.iter().map(|r| r[i].as_f64()).collect())
    }
}

impl fmt::Display for ResultSet {
    /// Renders an ASCII table, à la the MySQL client.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.columns.is_empty() {
            return write!(f, "(no results)");
        }
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        sep(f)?;
        write!(f, "|")?;
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, " {c:<w$} |")?;
        }
        writeln!(f)?;
        sep(f)?;
        for row in &rendered {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)?;
        }
        sep(f)?;
        write!(f, "{} row(s)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs() -> ResultSet {
        ResultSet {
            columns: vec!["time".to_string(), "diff".to_string()],
            rows: vec![
                vec![Value::Int(0), Value::Float(12.5)],
                vec![Value::Int(1), Value::Null],
            ],
            ..ResultSet::default()
        }
    }

    #[test]
    fn scalar_shape() {
        let one = ResultSet {
            columns: vec!["min".to_string()],
            rows: vec![vec![Value::Int(3)]],
            ..ResultSet::default()
        };
        assert_eq!(one.scalar().unwrap().as_i64(), Some(3));
        assert!(rs().scalar().is_none());
        assert!(ResultSet::empty().scalar().is_none());
    }

    #[test]
    fn column_access() {
        let r = rs();
        assert_eq!(r.column_index("DIFF"), Some(1));
        let col = r.column_f64("diff").unwrap();
        assert_eq!(col, vec![Some(12.5), None]);
        assert!(r.column("missing").is_none());
    }

    #[test]
    fn display_renders_table() {
        let s = rs().to_string();
        assert!(s.contains("| time |"), "{s}");
        assert!(s.contains("12.5"), "{s}");
        assert!(s.contains("NULL"), "{s}");
        assert!(s.contains("2 row(s)"), "{s}");
    }

    #[test]
    fn display_empty() {
        assert_eq!(ResultSet::empty().to_string(), "(no results)");
    }
}
