//! Query execution.
//!
//! Pipeline per `SELECT`: scan/join → filter → group/aggregate → having →
//! project → distinct → order → limit. Everything is materialized; tables
//! at JustInTime scale (k·(T+1) candidate rows) never stress this.
//!
//! Correlated subqueries are supported through an *environment stack*:
//! each enclosing query contributes a frame with its current row and its
//! projection aliases, and name resolution walks frames innermost-first.
//! That is exactly what the paper's Q3 needs — its `EXISTS` subquery
//! references the outer projection alias `t`.

use crate::ast::*;
use crate::codec;
use crate::error::DbError;
use crate::result::{ExecutionMetrics, ResultSet};
use crate::table::Table;
use crate::value::Value;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Row layout of a scan/join: which binding owns which column range.
#[derive(Clone, Debug, Default)]
pub struct RowLayout {
    bindings: Vec<LayoutBinding>,
    width: usize,
}

#[derive(Clone, Debug)]
struct LayoutBinding {
    name: String,
    columns: Vec<String>,
    offset: usize,
}

impl RowLayout {
    fn push(&mut self, name: &str, columns: Vec<String>) {
        let offset = self.width;
        self.width += columns.len();
        self.bindings.push(LayoutBinding { name: name.to_string(), columns, offset });
    }

    /// Resolves a column reference to a flat index.
    fn resolve(
        &self,
        qualifier: Option<&str>,
        name: &str,
    ) -> Result<Option<usize>, DbError> {
        let mut found: Option<usize> = None;
        for b in &self.bindings {
            if let Some(q) = qualifier {
                if !b.name.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if let Some(ci) =
                b.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
            {
                if found.is_some() {
                    return Err(DbError::AmbiguousColumn(name.to_string()));
                }
                found = Some(b.offset + ci);
            }
        }
        Ok(found)
    }

    /// All `(qualified name, index)` pairs, for wildcard projection.
    fn all_columns(&self) -> Vec<(String, usize)> {
        let mut out = Vec::with_capacity(self.width);
        for b in &self.bindings {
            for (i, c) in b.columns.iter().enumerate() {
                out.push((c.clone(), b.offset + i));
            }
        }
        out
    }

    fn binding_columns(&self, name: &str) -> Option<Vec<(String, usize)>> {
        self.bindings.iter().find(|b| b.name.eq_ignore_ascii_case(name)).map(|b| {
            b.columns
                .iter()
                .enumerate()
                .map(|(i, c)| (c.clone(), b.offset + i))
                .collect()
        })
    }
}

/// One frame of the correlation environment.
#[derive(Clone, Copy)]
pub struct Frame<'a> {
    layout: &'a RowLayout,
    row: &'a [Value],
    /// Projection aliases of the query this frame belongs to; visible to
    /// *inner* (correlated) subqueries, mirroring MySQL's behaviour that
    /// the paper's Q3 relies on.
    aliases: &'a [(String, Expr)],
}

/// Grouping context when evaluating aggregate expressions.
struct GroupCtx<'a> {
    layout: &'a RowLayout,
    rows: &'a [Vec<Value>],
    outer: &'a [Frame<'a>],
    aliases: &'a [(String, Expr)],
}

/// The executor; borrows the catalog's table map.
pub struct Executor<'a> {
    tables: &'a HashMap<String, Table>,
    /// Bound values for `?` parameters (empty for unprepared execution).
    params: &'a [Value],
    /// Base-table rows materialized so far (subqueries accumulate here).
    rows_scanned: Cell<u64>,
    /// Encoded bytes of those rows, in the binary codec's sizing.
    bytes_scanned: Cell<u64>,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a table map.
    pub fn new(tables: &'a HashMap<String, Table>) -> Self {
        Executor::with_params(tables, &[])
    }

    /// Creates an executor with bound statement parameters.
    pub fn with_params(
        tables: &'a HashMap<String, Table>,
        params: &'a [Value],
    ) -> Self {
        Executor {
            tables,
            params,
            rows_scanned: Cell::new(0),
            bytes_scanned: Cell::new(0),
        }
    }

    /// Meters rows materialized from a base table.
    fn note_scan(&self, rows: &[Vec<Value>]) {
        self.rows_scanned.set(self.rows_scanned.get() + rows.len() as u64);
        let bytes: u64 =
            rows.iter().map(|r| r.iter().map(codec::encoded_len).sum::<u64>()).sum();
        self.bytes_scanned.set(self.bytes_scanned.get() + bytes);
    }

    /// Cumulative scan counters (also reported on every [`ResultSet`]).
    pub fn metrics(&self) -> ExecutionMetrics {
        ExecutionMetrics {
            rows_scanned: self.rows_scanned.get(),
            bytes_scanned: self.bytes_scanned.get(),
            rows_output: 0,
            wal_bytes_written: 0,
        }
    }

    fn table(&self, name: &str) -> Result<&'a Table, DbError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Executes a `SELECT` with no outer context.
    pub fn select(&self, q: &Select) -> Result<ResultSet, DbError> {
        self.select_with_env(q, &[])
    }

    /// Executes a `SELECT` inside the given correlation environment.
    #[allow(clippy::expect_used)] // `order` holds exactly the keys of `map`
    pub fn select_with_env(
        &self,
        q: &Select,
        env: &[Frame<'_>],
    ) -> Result<ResultSet, DbError> {
        // ---- scan + joins ------------------------------------------------
        let mut layout = RowLayout::default();
        let base = self.table(&q.from.name)?;
        layout.push(q.from.binding(), base.schema.column_names());
        let mut rows: Vec<Vec<Value>> = base.rows.clone();
        self.note_scan(&rows);

        for join in &q.joins {
            let right = self.table(&join.table.name)?;
            self.note_scan(&right.rows);
            let right_cols = right.schema.column_names();
            let mut next_layout = layout.clone();
            next_layout.push(join.table.binding(), right_cols);

            // Hash-join fast path for simple equi-joins `a.x = b.y`.
            let mut joined: Vec<Vec<Value>> = Vec::new();
            if let Some((left_idx, right_idx)) =
                equi_join_keys(&join.on, &layout, join.table.binding(), right)?
            {
                let mut index: HashMap<String, Vec<usize>> = HashMap::new();
                for (ri, rrow) in right.rows.iter().enumerate() {
                    index.entry(rrow[right_idx].group_key()).or_default().push(ri);
                }
                for lrow in &rows {
                    if lrow[left_idx].is_null() {
                        continue;
                    }
                    if let Some(matches) = index.get(&lrow[left_idx].group_key()) {
                        for &ri in matches {
                            let mut combined = lrow.clone();
                            combined.extend(right.rows[ri].iter().cloned());
                            joined.push(combined);
                        }
                    }
                }
            } else {
                for lrow in &rows {
                    for rrow in &right.rows {
                        let mut combined = lrow.clone();
                        combined.extend(rrow.iter().cloned());
                        let frame = Frame {
                            layout: &next_layout,
                            row: &combined,
                            aliases: &[],
                        };
                        let mut frames: Vec<Frame<'_>> = env.to_vec();
                        frames.push(frame);
                        if self.eval(&join.on, &frames, None)?.truthy() {
                            joined.push(combined);
                        }
                    }
                }
            }
            layout = next_layout;
            rows = joined;
        }

        // ---- filter ------------------------------------------------------
        let my_aliases = projection_aliases(&q.projections);
        if let Some(pred) = &q.where_clause {
            if pred.contains_aggregate() {
                return Err(DbError::AggregateMisuse(
                    "aggregates are not allowed in WHERE".to_string(),
                ));
            }
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                let frame = Frame { layout: &layout, row: &row, aliases: &my_aliases };
                let mut frames: Vec<Frame<'_>> = env.to_vec();
                frames.push(frame);
                if self.eval(pred, &frames, None)?.truthy() {
                    kept.push(row);
                }
            }
            rows = kept;
        }

        // ---- group / aggregate / project ---------------------------------
        let has_aggregates = q.projections.iter().any(
            |p| matches!(p, Projection::Expr { expr, .. } if expr.contains_aggregate()),
        ) || q
            .having
            .as_ref()
            .is_some_and(Expr::contains_aggregate);

        let columns = output_columns(&q.projections, &layout)?;
        let mut output: Vec<(Vec<Value>, Vec<Value>)> = Vec::new(); // (projected, sort keys)

        if !q.group_by.is_empty() || has_aggregates {
            // Partition rows into groups.
            let groups: Vec<Vec<Vec<Value>>> = if q.group_by.is_empty() {
                vec![rows] // single group (may be empty: aggregates of none)
            } else {
                let mut map: HashMap<String, Vec<Vec<Value>>> = HashMap::new();
                let mut order: Vec<String> = Vec::new();
                for row in rows {
                    let frame =
                        Frame { layout: &layout, row: &row, aliases: &my_aliases };
                    let mut frames: Vec<Frame<'_>> = env.to_vec();
                    frames.push(frame);
                    let mut key = String::new();
                    for g in &q.group_by {
                        key.push_str(&self.eval(g, &frames, None)?.group_key());
                        key.push('\u{1}');
                    }
                    if !map.contains_key(&key) {
                        order.push(key.clone());
                    }
                    map.entry(key).or_default().push(row);
                }
                order
                    .into_iter()
                    .map(|k| map.remove(&k).expect("key present"))
                    .collect()
            };

            for group in &groups {
                if group.is_empty() && !q.group_by.is_empty() {
                    continue;
                }
                let group_ctx = GroupCtx {
                    layout: &layout,
                    rows: group,
                    outer: env,
                    aliases: &my_aliases,
                };
                // Representative row for non-aggregate expressions.
                let empty_row: Vec<Value>;
                let rep: &[Value] = match group.first() {
                    Some(r) => r,
                    None => {
                        empty_row = vec![Value::Null; layout.width];
                        &empty_row
                    }
                };
                let frame = Frame { layout: &layout, row: rep, aliases: &my_aliases };
                let mut frames: Vec<Frame<'_>> = env.to_vec();
                frames.push(frame);

                if let Some(h) = &q.having {
                    if !self.eval(h, &frames, Some(&group_ctx))?.truthy() {
                        continue;
                    }
                }
                let projected = self.project_row(
                    &q.projections,
                    &layout,
                    &frames,
                    Some(&group_ctx),
                )?;
                let keys =
                    self.sort_keys(q, &frames, Some(&group_ctx), &projected, &columns)?;
                output.push((projected, keys));
            }
        } else {
            if q.having.is_some() {
                return Err(DbError::AggregateMisuse(
                    "HAVING requires GROUP BY or aggregates".to_string(),
                ));
            }
            for row in &rows {
                let frame = Frame { layout: &layout, row, aliases: &my_aliases };
                let mut frames: Vec<Frame<'_>> = env.to_vec();
                frames.push(frame);
                let projected =
                    self.project_row(&q.projections, &layout, &frames, None)?;
                let keys = self.sort_keys(q, &frames, None, &projected, &columns)?;
                output.push((projected, keys));
            }
        }

        // ---- distinct -----------------------------------------------------
        if q.distinct {
            let mut seen = std::collections::HashSet::new();
            output.retain(|(projected, _)| {
                let key: String =
                    projected.iter().map(|v| v.group_key() + "\u{1}").collect();
                seen.insert(key)
            });
        }

        // ---- order / limit -------------------------------------------------
        if !q.order_by.is_empty() {
            let descs: Vec<bool> = q.order_by.iter().map(|k| k.desc).collect();
            output.sort_by(|(_, ka), (_, kb)| {
                for ((a, b), desc) in ka.iter().zip(kb).zip(&descs) {
                    let ord = a.total_cmp(b);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        }
        if let Some(limit) = q.limit {
            output.truncate(limit);
        }

        let rows: Vec<Vec<Value>> = output.into_iter().map(|(p, _)| p).collect();
        let metrics =
            ExecutionMetrics { rows_output: rows.len() as u64, ..self.metrics() };
        Ok(ResultSet { columns, rows, metrics })
    }

    fn sort_keys(
        &self,
        q: &Select,
        frames: &[Frame<'_>],
        group: Option<&GroupCtx<'_>>,
        projected: &[Value],
        columns: &[String],
    ) -> Result<Vec<Value>, DbError> {
        let mut keys = Vec::with_capacity(q.order_by.len());
        for k in &q.order_by {
            // Projection aliases and output columns take precedence in
            // ORDER BY, per SQL scoping.
            if let Expr::Column { qualifier: None, name } = &k.expr {
                if let Some(i) =
                    columns.iter().position(|c| c.eq_ignore_ascii_case(name))
                {
                    keys.push(projected[i].clone());
                    continue;
                }
            }
            keys.push(self.eval(&k.expr, frames, group)?);
        }
        Ok(keys)
    }

    #[allow(clippy::expect_used)] // the executor pushes its own frame before evaluating
    fn project_row(
        &self,
        projections: &[Projection],
        layout: &RowLayout,
        frames: &[Frame<'_>],
        group: Option<&GroupCtx<'_>>,
    ) -> Result<Vec<Value>, DbError> {
        let row = frames.last().expect("own frame present").row;
        let mut out = Vec::new();
        for p in projections {
            match p {
                Projection::Wildcard => {
                    for (_, idx) in layout.all_columns() {
                        out.push(row[idx].clone());
                    }
                }
                Projection::QualifiedWildcard(q) => {
                    let cols = layout
                        .binding_columns(q)
                        .ok_or_else(|| DbError::UnknownTable(q.clone()))?;
                    for (_, idx) in cols {
                        out.push(row[idx].clone());
                    }
                }
                Projection::Expr { expr, .. } => {
                    out.push(self.eval(expr, frames, group)?);
                }
            }
        }
        Ok(out)
    }

    /// Evaluates an expression. `group` enables aggregate calls.
    fn eval(
        &self,
        expr: &Expr,
        frames: &[Frame<'_>],
        group: Option<&GroupCtx<'_>>,
    ) -> Result<Value, DbError> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(i) => {
                self.params.get(*i).cloned().ok_or(DbError::ParamMismatch {
                    expected: *i + 1,
                    found: self.params.len(),
                })
            }
            Expr::Column { qualifier, name } => {
                self.resolve_column(qualifier.as_deref(), name, frames)
            }
            Expr::Neg(e) => match self.eval(e, frames, group)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Null => Ok(Value::Null),
                other => Err(DbError::Eval(format!("cannot negate {other}"))),
            },
            Expr::Not(e) => Ok(Value::Bool(!self.eval(e, frames, group)?.truthy())),
            Expr::Binary { lhs, op, rhs } => {
                self.eval_binary(lhs, *op, rhs, frames, group)
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, frames, group)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Between { expr, lo, hi, negated } => {
                let v = self.eval(expr, frames, group)?;
                let lo = self.eval(lo, frames, group)?;
                let hi = self.eval(hi, frames, group)?;
                let inside = matches!(
                    v.compare(&lo),
                    Some(Ordering::Greater) | Some(Ordering::Equal)
                ) && matches!(
                    v.compare(&hi),
                    Some(Ordering::Less) | Some(Ordering::Equal)
                );
                Ok(Value::Bool(inside != *negated))
            }
            Expr::InList { expr, list, negated } => {
                let v = self.eval(expr, frames, group)?;
                let mut found = false;
                for item in list {
                    if v.sql_eq(&self.eval(item, frames, group)?) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::InSubquery { expr, subquery, negated } => {
                let v = self.eval(expr, frames, group)?;
                let rs = self.subquery_column(subquery, frames)?;
                let found = rs.iter().any(|x| v.sql_eq(x));
                Ok(Value::Bool(found != *negated))
            }
            Expr::Exists { subquery, negated } => {
                let rs = self.select_with_env(subquery, frames)?;
                Ok(Value::Bool(rs.is_empty() == *negated))
            }
            Expr::QuantifiedCmp { lhs, op, quantifier, subquery } => {
                if !op.is_comparison() {
                    return Err(DbError::Eval(
                        "ALL/ANY requires a comparison operator".to_string(),
                    ));
                }
                let v = self.eval(lhs, frames, group)?;
                let values = self.subquery_column(subquery, frames)?;
                let holds =
                    |x: &Value| -> bool { compare_values(&v, *op, x).unwrap_or(false) };
                let result = match quantifier {
                    Quantifier::All => values.iter().all(holds),
                    Quantifier::Any => values.iter().any(holds),
                };
                Ok(Value::Bool(result))
            }
            Expr::ScalarSubquery(subquery) => {
                let rs = self.select_with_env(subquery, frames)?;
                if rs.columns.len() != 1 {
                    return Err(DbError::SubqueryShape(format!(
                        "scalar subquery returned {} columns",
                        rs.columns.len()
                    )));
                }
                match rs.rows.len() {
                    0 => Ok(Value::Null),
                    1 => Ok(rs.rows[0][0].clone()),
                    n => Err(DbError::SubqueryShape(format!(
                        "scalar subquery returned {n} rows"
                    ))),
                }
            }
            Expr::Aggregate { func, arg } => {
                let Some(g) = group else {
                    return Err(DbError::AggregateMisuse(format!(
                        "aggregate {func:?} outside of an aggregate context"
                    )));
                };
                self.eval_aggregate(*func, arg.as_deref(), g)
            }
        }
    }

    fn eval_binary(
        &self,
        lhs: &Expr,
        op: BinOp,
        rhs: &Expr,
        frames: &[Frame<'_>],
        group: Option<&GroupCtx<'_>>,
    ) -> Result<Value, DbError> {
        // Short-circuit logic ops.
        if op == BinOp::And {
            return Ok(Value::Bool(
                self.eval(lhs, frames, group)?.truthy()
                    && self.eval(rhs, frames, group)?.truthy(),
            ));
        }
        if op == BinOp::Or {
            return Ok(Value::Bool(
                self.eval(lhs, frames, group)?.truthy()
                    || self.eval(rhs, frames, group)?.truthy(),
            ));
        }
        let a = self.eval(lhs, frames, group)?;
        let b = self.eval(rhs, frames, group)?;
        if op.is_comparison() {
            return Ok(Value::Bool(compare_values(&a, op, &b).unwrap_or(false)));
        }
        // Arithmetic.
        if a.is_null() || b.is_null() {
            return Ok(Value::Null);
        }
        match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let both_int = matches!((&a, &b), (Value::Int(_), Value::Int(_)));
                let out = match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0.0 {
                            return Err(DbError::Eval("division by zero".to_string()));
                        }
                        x / y
                    }
                    BinOp::Mod => {
                        if y == 0.0 {
                            return Err(DbError::Eval("modulo by zero".to_string()));
                        }
                        x % y
                    }
                    _ => unreachable!("logic/comparison handled above"),
                };
                if both_int && out.fract() == 0.0 && op != BinOp::Div {
                    Ok(Value::Int(out as i64))
                } else {
                    Ok(Value::Float(out))
                }
            }
            _ => Err(DbError::Eval(format!(
                "arithmetic on non-numeric operands: {a} {op:?} {b}"
            ))),
        }
    }

    fn eval_aggregate(
        &self,
        func: AggFunc,
        arg: Option<&Expr>,
        g: &GroupCtx<'_>,
    ) -> Result<Value, DbError> {
        if let Some(arg) = arg {
            if arg.contains_aggregate() {
                return Err(DbError::AggregateMisuse(
                    "nested aggregates are not allowed".to_string(),
                ));
            }
        }
        // COUNT(*) counts rows directly.
        if func == AggFunc::Count && arg.is_none() {
            return Ok(Value::Int(g.rows.len() as i64));
        }
        let arg = arg.ok_or_else(|| {
            DbError::AggregateMisuse(format!("{func:?} requires an argument"))
        })?;
        let mut values: Vec<Value> = Vec::with_capacity(g.rows.len());
        for row in g.rows {
            let frame = Frame { layout: g.layout, row, aliases: g.aliases };
            let mut frames: Vec<Frame<'_>> = g.outer.to_vec();
            frames.push(frame);
            let v = self.eval(arg, &frames, None)?;
            if !v.is_null() {
                values.push(v);
            }
        }
        Ok(match func {
            AggFunc::Count => Value::Int(values.len() as i64),
            AggFunc::Min => {
                values.into_iter().min_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null)
            }
            AggFunc::Max => {
                values.into_iter().max_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null)
            }
            AggFunc::Sum | AggFunc::Avg => {
                if values.is_empty() {
                    return Ok(Value::Null);
                }
                let mut total = 0.0;
                let mut all_int = true;
                let n = values.len() as f64;
                for v in values {
                    match v {
                        Value::Int(i) => total += i as f64,
                        Value::Float(f) => {
                            all_int = false;
                            total += f;
                        }
                        other => {
                            return Err(DbError::Eval(format!(
                                "cannot {func:?} non-numeric value {other}"
                            )))
                        }
                    }
                }
                if func == AggFunc::Avg {
                    Value::Float(total / n)
                } else if all_int {
                    Value::Int(total as i64)
                } else {
                    Value::Float(total)
                }
            }
        })
    }

    /// Resolves a column through the frame stack, innermost first; falls
    /// back to outer projection aliases (the Q3 `t` case).
    fn resolve_column(
        &self,
        qualifier: Option<&str>,
        name: &str,
        frames: &[Frame<'_>],
    ) -> Result<Value, DbError> {
        for depth in (0..frames.len()).rev() {
            let frame = &frames[depth];
            if let Some(idx) = frame.layout.resolve(qualifier, name)? {
                return Ok(frame.row[idx].clone());
            }
            // Projection aliases: only for unqualified names, and only for
            // frames *enclosing* the current query (not the innermost one),
            // because SQL does not allow a query's own aliases in its WHERE.
            if qualifier.is_none() && depth + 1 < frames.len() {
                if let Some((_, aliased)) =
                    frame.aliases.iter().find(|(a, _)| a.eq_ignore_ascii_case(name))
                {
                    return self.eval(aliased, &frames[..=depth], None);
                }
            }
        }
        Err(DbError::UnknownColumn(match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.to_string(),
        }))
    }

    /// Runs a subquery expected to produce exactly one column.
    #[allow(clippy::expect_used)] // the projection was validated to one column above
    fn subquery_column(
        &self,
        subquery: &Select,
        frames: &[Frame<'_>],
    ) -> Result<Vec<Value>, DbError> {
        let rs = self.select_with_env(subquery, frames)?;
        if rs.columns.len() != 1 {
            return Err(DbError::SubqueryShape(format!(
                "subquery must return one column, returned {}",
                rs.columns.len()
            )));
        }
        Ok(rs.rows.into_iter().map(|mut r| r.pop().expect("one column")).collect())
    }
}

/// Detects a simple equi-join `left.x = right.y` usable by the hash path.
/// Returns `(left flat index, right column index)`.
fn equi_join_keys(
    on: &Expr,
    left_layout: &RowLayout,
    right_binding: &str,
    right: &Table,
) -> Result<Option<(usize, usize)>, DbError> {
    let Expr::Binary { lhs, op: BinOp::Eq, rhs } = on else {
        return Ok(None);
    };
    let (
        Expr::Column { qualifier: q1, name: n1 },
        Expr::Column { qualifier: q2, name: n2 },
    ) = (lhs.as_ref(), rhs.as_ref())
    else {
        return Ok(None);
    };
    let try_pair = |lq: &Option<String>,
                    ln: &str,
                    rq: &Option<String>,
                    rn: &str|
     -> Result<Option<(usize, usize)>, DbError> {
        // Right side must reference the newly joined binding.
        let right_matches =
            rq.as_deref().is_none_or(|q| q.eq_ignore_ascii_case(right_binding));
        if !right_matches {
            return Ok(None);
        }
        let Some(rc) = right.schema.column_index(rn) else {
            return Ok(None);
        };
        let Some(lc) = left_layout.resolve(lq.as_deref(), ln)? else {
            return Ok(None);
        };
        Ok(Some((lc, rc)))
    };
    if let Some(pair) = try_pair(q1, n1, q2, n2)? {
        return Ok(Some(pair));
    }
    try_pair(q2, n2, q1, n1)
}

fn compare_values(a: &Value, op: BinOp, b: &Value) -> Option<bool> {
    let ord = a.compare(b)?;
    Some(match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => return None,
    })
}

fn projection_aliases(projections: &[Projection]) -> Vec<(String, Expr)> {
    projections
        .iter()
        .filter_map(|p| match p {
            Projection::Expr { expr, alias: Some(a) } => {
                Some((a.clone(), expr.clone()))
            }
            _ => None,
        })
        .collect()
}

fn output_columns(
    projections: &[Projection],
    layout: &RowLayout,
) -> Result<Vec<String>, DbError> {
    let mut out = Vec::new();
    for p in projections {
        match p {
            Projection::Wildcard => {
                out.extend(layout.all_columns().into_iter().map(|(c, _)| c));
            }
            Projection::QualifiedWildcard(q) => {
                let cols = layout
                    .binding_columns(q)
                    .ok_or_else(|| DbError::UnknownTable(q.clone()))?;
                out.extend(cols.into_iter().map(|(c, _)| c));
            }
            Projection::Expr { expr, alias } => out.push(match alias {
                Some(a) => a.clone(),
                None => default_column_name(expr),
            }),
        }
    }
    Ok(out)
}

fn default_column_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Aggregate { func, arg } => {
            let inner = match arg {
                None => "*".to_string(),
                Some(e) => default_column_name(e),
            };
            format!("{}({inner})", format!("{func:?}").to_lowercase())
        }
        _ => "expr".to_string(),
    }
}
