//! SQL tokenizer.

use crate::error::DbError;

/// A token with its byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// Byte offset in the source.
    pub offset: usize,
    /// The token.
    pub token: Token,
}

/// SQL tokens. Keywords are uppercased identifiers recognized by the
/// parser, not distinct token kinds, except for operators and punctuation.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original case preserved; match
    /// case-insensitively).
    Ident(String),
    /// Integer literal (no `.` or exponent in the source text).
    Int(i64),
    /// Float literal (the source text contained `.` or an exponent, or
    /// the value overflows `i64`). Kept distinct from [`Token::Int`] so
    /// `2.0` and `-0.0` stay floats bit-for-bit through INSERT→SELECT
    /// instead of collapsing to integers.
    Float(f64),
    /// `'string'` literal (escaped quotes doubled).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
    /// `?` — positional statement parameter.
    Question,
}

/// Tokenizes SQL text.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, DbError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let c = bytes[pos] as char;
        let start = pos;
        macro_rules! push {
            ($tok:expr, $len:expr) => {{
                out.push(Spanned { offset: start, token: $tok });
                pos += $len;
            }};
        }
        match c {
            ' ' | '\t' | '\n' | '\r' => pos += 1,
            '-' => {
                // SQL comment `-- …` or minus.
                if bytes.get(pos + 1) == Some(&b'-') {
                    while pos < bytes.len() && bytes[pos] != b'\n' {
                        pos += 1;
                    }
                } else {
                    push!(Token::Minus, 1);
                }
            }
            '(' => push!(Token::LParen, 1),
            ')' => push!(Token::RParen, 1),
            ',' => push!(Token::Comma, 1),
            '.' => {
                // Could be the start of a number like `.5`.
                if bytes.get(pos + 1).is_some_and(|b| b.is_ascii_digit()) {
                    let (tok, len) = lex_number(src, pos)?;
                    push!(tok, len);
                } else {
                    push!(Token::Dot, 1);
                }
            }
            '*' => push!(Token::Star, 1),
            '+' => push!(Token::Plus, 1),
            '/' => push!(Token::Slash, 1),
            '%' => push!(Token::Percent, 1),
            ';' => push!(Token::Semicolon, 1),
            '?' => push!(Token::Question, 1),
            '=' => push!(Token::Eq, 1),
            '!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(Token::Ne, 2);
                } else {
                    return Err(DbError::Parse {
                        offset: pos,
                        message: "expected '=' after '!'".to_string(),
                    });
                }
            }
            '<' => match bytes.get(pos + 1) {
                Some(&b'=') => push!(Token::Le, 2),
                Some(&b'>') => push!(Token::Ne, 2),
                _ => push!(Token::Lt, 1),
            },
            '>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    push!(Token::Ge, 2);
                } else {
                    push!(Token::Gt, 1);
                }
            }
            '\'' => {
                // Accumulate raw bytes: `'` (0x27) never occurs inside a
                // multi-byte UTF-8 sequence, so splitting on it is safe
                // and non-ASCII text survives byte-for-byte.
                let mut text = Vec::new();
                let mut i = pos + 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(DbError::Parse {
                                offset: pos,
                                message: "unterminated string literal".to_string(),
                            })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                text.push(b'\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            text.push(b);
                            i += 1;
                        }
                    }
                }
                let text = String::from_utf8(text).map_err(|_| DbError::Parse {
                    offset: pos,
                    message: "string literal is not valid UTF-8".to_string(),
                })?;
                out.push(Spanned { offset: start, token: Token::Str(text) });
                pos = i;
            }
            '0'..='9' => {
                let (tok, len) = lex_number(src, pos)?;
                push!(tok, len);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = pos;
                while end < bytes.len() {
                    let d = bytes[end] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    offset: start,
                    token: Token::Ident(src[pos..end].to_string()),
                });
                pos = end;
            }
            other => {
                return Err(DbError::Parse {
                    offset: pos,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn lex_number(src: &str, start: usize) -> Result<(Token, usize), DbError> {
    let bytes = src.as_bytes();
    let mut end = start;
    let mut seen_e = false;
    let mut float_syntax = false;
    while end < bytes.len() {
        let d = bytes[end] as char;
        if d.is_ascii_digit() {
            end += 1;
        } else if d == '.' {
            float_syntax = true;
            end += 1;
        } else if (d == 'e' || d == 'E') && !seen_e {
            seen_e = true;
            float_syntax = true;
            end += 1;
            if end < bytes.len() && (bytes[end] == b'+' || bytes[end] == b'-') {
                end += 1;
            }
        } else {
            break;
        }
    }
    let text = &src[start..end];
    // Digits-only literals are integers; a `.` or exponent makes a float
    // (and an integer too wide for i64 falls back to the float value).
    let token = if float_syntax {
        let value: f64 = text.parse().map_err(|e| DbError::Parse {
            offset: start,
            message: format!("bad number {text:?}: {e}"),
        })?;
        Token::Float(value)
    } else {
        match text.parse::<i64>() {
            Ok(value) => Token::Int(value),
            Err(_) => {
                let value: f64 = text.parse().map_err(|e| DbError::Parse {
                    offset: start,
                    message: format!("bad number {text:?}: {e}"),
                })?;
                Token::Float(value)
            }
        }
    };
    Ok((token, end - start))
}

impl Token {
    /// `true` when the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_select_tokens() {
        let t = toks("SELECT Min(time) FROM candidates WHERE diff = 0");
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert_eq!(t[1], Token::Ident("Min".into()));
        assert_eq!(t[2], Token::LParen);
        assert!(t.contains(&Token::Eq));
        assert!(t.contains(&Token::Int(0)));
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= < >= > = != <>"),
            vec![
                Token::Le,
                Token::Lt,
                Token::Ge,
                Token::Gt,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'hello'"), vec![Token::Str("hello".into())]);
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn multibyte_string_literals_survive() {
        assert_eq!(toks("'héllo 漢 🦀'"), vec![Token::Str("héllo 漢 🦀".into())]);
        assert_eq!(toks("'🦀''s'"), vec![Token::Str("🦀's".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("3.25"), vec![Token::Float(3.25)]);
        assert_eq!(toks(".5"), vec![Token::Float(0.5)]);
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks("2.5e-1"), vec![Token::Float(0.25)]);
    }

    #[test]
    fn integral_text_lexes_int_but_float_text_stays_float() {
        assert_eq!(toks("7"), vec![Token::Int(7)]);
        assert_eq!(toks("7.0"), vec![Token::Float(7.0)]);
        assert_eq!(toks("0.0"), vec![Token::Float(0.0)]);
        // 2^63 does not fit i64; it falls back to the float value.
        assert_eq!(
            toks("9223372036854775808"),
            vec![Token::Float(9.223372036854776e18)]
        );
        assert_eq!(toks("9223372036854775807"), vec![Token::Int(i64::MAX)]);
    }

    #[test]
    fn question_marks_are_parameters() {
        assert_eq!(
            toks("x = ? , ?"),
            vec![
                Token::Ident("x".into()),
                Token::Eq,
                Token::Question,
                Token::Comma,
                Token::Question
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = toks("SELECT -- a comment\n 1");
        assert_eq!(t, vec![Token::Ident("SELECT".into()), Token::Int(1)]);
    }

    #[test]
    fn qualified_names() {
        assert_eq!(
            toks("cnd.income"),
            vec![Token::Ident("cnd".into()), Token::Dot, Token::Ident("income".into())]
        );
    }

    #[test]
    fn keyword_check_case_insensitive() {
        let t = toks("select");
        assert!(t[0].is_kw("SELECT"));
        assert!(t[0].is_kw("select"));
        assert!(!t[0].is_kw("FROM"));
    }

    #[test]
    fn offsets_recorded() {
        let s = tokenize("SELECT x").unwrap();
        assert_eq!(s[0].offset, 0);
        assert_eq!(s[1].offset, 7);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
