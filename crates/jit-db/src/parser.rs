//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::error::DbError;
use crate::lexer::{tokenize, Spanned, Token};
use crate::value::{ColumnType, Value};

/// Parses one SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, DbError> {
    parse_statement_with_params(sql).map(|(stmt, _)| stmt)
}

/// Parses one SQL statement and reports how many positional `?`
/// parameters it takes (numbered 0.. in source order).
pub fn parse_statement_with_params(sql: &str) -> Result<(Statement, usize), DbError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, src_len: sql.len(), params: 0 };
    let stmt = p.statement()?;
    if p.peek_is(&Token::Semicolon) {
        p.pos += 1;
    }
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after statement"));
    }
    Ok((stmt, p.params))
}

/// Keywords that terminate a bare (AS-less) alias position.
const CLAUSE_KEYWORDS: &[&str] = &[
    "where", "group", "having", "order", "limit", "inner", "join", "on", "as", "and",
    "or", "not", "union", "values", "set",
];

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    src_len: usize,
    /// Count of `?` parameters seen so far (assigns positions).
    params: usize,
}

impl Parser {
    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.src_len, |s| s.offset)
    }

    fn err(&self, message: impl Into<String>) -> DbError {
        DbError::Parse { offset: self.offset(), message: message.into() }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn peek_is(&self, t: &Token) -> bool {
        self.peek() == Some(t)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_tok(&mut self, t: Token, what: &str) -> Result<(), DbError> {
        if self.peek() == Some(&t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, DbError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, DbError> {
        if self.peek_kw("select") {
            Ok(Statement::Select(Box::new(self.select()?)))
        } else if self.peek_kw("create") {
            self.create_table()
        } else if self.peek_kw("insert") {
            self.insert()
        } else if self.peek_kw("delete") {
            self.delete()
        } else if self.peek_kw("drop") {
            self.pos += 1;
            self.expect_kw("table")?;
            Ok(Statement::DropTable(self.ident("table name")?))
        } else {
            Err(self.err("expected SELECT, CREATE, INSERT, DELETE or DROP"))
        }
    }

    fn create_table(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let name = self.ident("table name")?;
        self.expect_tok(Token::LParen, "'('")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident("column name")?;
            let ty_name = self.ident("column type")?;
            let ty = match ty_name.to_ascii_lowercase().as_str() {
                "integer" | "int" | "bigint" => ColumnType::Integer,
                "real" | "float" | "double" => ColumnType::Real,
                "text" | "varchar" | "string" => ColumnType::Text,
                "boolean" | "bool" => ColumnType::Boolean,
                other => return Err(self.err(format!("unknown column type {other:?}"))),
            };
            columns.push((col, ty));
            if self.peek_is(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect_tok(Token::RParen, "')'")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident("table name")?;
        let columns = if self.peek_is(&Token::LParen) {
            self.pos += 1;
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident("column name")?);
                if self.peek_is(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect_tok(Token::RParen, "')'")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_tok(Token::LParen, "'('")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if self.peek_is(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect_tok(Token::RParen, "')'")?;
            rows.push(row);
            if self.peek_is(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn delete(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident("table name")?;
        let predicate = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, predicate })
    }

    fn select(&mut self) -> Result<Select, DbError> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projections = Vec::new();
        loop {
            projections.push(self.projection()?);
            if self.peek_is(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect_kw("from")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            if self.peek_kw("inner") {
                self.pos += 1;
                self.expect_kw("join")?;
            } else if self.peek_kw("join") {
                self.pos += 1;
            } else {
                break;
            }
            let table = self.table_ref()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            joins.push(Join { table, on });
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if self.peek_is(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if self.peek_is(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.peek() {
                Some(Token::Int(n)) if *n >= 0 => {
                    let v = *n as usize;
                    self.pos += 1;
                    Some(v)
                }
                other => {
                    return Err(self.err(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            projections,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn projection(&mut self) -> Result<Projection, DbError> {
        if self.peek_is(&Token::Star) {
            self.pos += 1;
            return Ok(Projection::Wildcard);
        }
        // alias.* ?
        if let (Some(Token::Ident(q)), Some(Token::Dot)) = (self.peek(), self.peek2()) {
            if self.tokens.get(self.pos + 2).map(|s| &s.token) == Some(&Token::Star) {
                let q = q.clone();
                self.pos += 3;
                return Ok(Projection::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident("alias")?)
        } else {
            match self.peek() {
                Some(Token::Ident(s))
                    if !CLAUSE_KEYWORDS.contains(&s.to_ascii_lowercase().as_str())
                        && !s.eq_ignore_ascii_case("from") =>
                {
                    let s = s.clone();
                    self.pos += 1;
                    Some(s)
                }
                _ => None,
            }
        };
        Ok(Projection::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, DbError> {
        let name = self.ident("table name")?;
        let alias = if self.eat_kw("as") {
            Some(self.ident("alias")?)
        } else {
            match self.peek() {
                Some(Token::Ident(s))
                    if !CLAUSE_KEYWORDS.contains(&s.to_ascii_lowercase().as_str()) =>
                {
                    let s = s.clone();
                    self.pos += 1;
                    Some(s)
                }
                _ => None,
            }
        };
        Ok(TableRef { name, alias })
    }

    // ---- expressions -------------------------------------------------

    fn expr(&mut self) -> Result<Expr, DbError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs =
                Expr::Binary { lhs: Box::new(lhs), op: BinOp::Or, rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs =
                Expr::Binary { lhs: Box::new(lhs), op: BinOp::And, rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, DbError> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr, DbError> {
        let lhs = self.additive()?;

        // IS [NOT] NULL
        if self.peek_kw("is") {
            self.pos += 1;
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }

        // [NOT] BETWEEN / [NOT] IN
        let negated_prefix = if self.peek_kw("not")
            && self.peek2().is_some_and(|t| t.is_kw("between") || t.is_kw("in"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("between") {
            let lo = self.additive()?;
            self.expect_kw("and")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated: negated_prefix,
            });
        }
        if self.eat_kw("in") {
            self.expect_tok(Token::LParen, "'(' after IN")?;
            if self.peek_kw("select") {
                let sub = self.select()?;
                self.expect_tok(Token::RParen, "')'")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    subquery: Box::new(sub),
                    negated: negated_prefix,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if self.peek_is(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect_tok(Token::RParen, "')'")?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated: negated_prefix,
            });
        }
        if negated_prefix {
            return Err(self.err("expected BETWEEN or IN after NOT"));
        }

        // Comparison, possibly quantified.
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            // ALL / ANY / SOME quantifier?
            for (kw, quant) in [
                ("all", Quantifier::All),
                ("any", Quantifier::Any),
                ("some", Quantifier::Any),
            ] {
                if self.peek_kw(kw) {
                    self.pos += 1;
                    self.expect_tok(Token::LParen, "'('")?;
                    let sub = self.select()?;
                    self.expect_tok(Token::RParen, "')'")?;
                    return Ok(Expr::QuantifiedCmp {
                        lhs: Box::new(lhs),
                        op,
                        quantifier: quant,
                        subquery: Box::new(sub),
                    });
                }
            }
            let rhs = self.additive()?;
            return Ok(Expr::Binary { lhs: Box::new(lhs), op, rhs: Box::new(rhs) });
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary { lhs: Box::new(lhs), op, rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, DbError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary { lhs: Box::new(lhs), op, rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, DbError> {
        if self.peek_is(&Token::Minus) {
            self.pos += 1;
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, DbError> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(n)))
            }
            Some(Token::Float(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(n)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Question) => {
                self.pos += 1;
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.peek_kw("select") {
                    let sub = self.select()?;
                    self.expect_tok(Token::RParen, "')'")?;
                    Ok(Expr::ScalarSubquery(Box::new(sub)))
                } else {
                    let e = self.expr()?;
                    self.expect_tok(Token::RParen, "')'")?;
                    Ok(e)
                }
            }
            Some(Token::Ident(word)) => {
                let lower = word.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Null));
                    }
                    "true" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Bool(true)));
                    }
                    "false" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Bool(false)));
                    }
                    // Non-finite float literals, so REAL values written by
                    // `Value::sql_literal` always parse back. These are
                    // reserved words: a column cannot be named nan/inf.
                    "nan" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Float(f64::NAN)));
                    }
                    "inf" | "infinity" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Float(f64::INFINITY)));
                    }
                    "exists" => {
                        self.pos += 1;
                        self.expect_tok(Token::LParen, "'(' after EXISTS")?;
                        let sub = self.select()?;
                        self.expect_tok(Token::RParen, "')'")?;
                        return Ok(Expr::Exists {
                            subquery: Box::new(sub),
                            negated: false,
                        });
                    }
                    _ => {}
                }
                // Function call?
                if self.peek2() == Some(&Token::LParen) {
                    let Some(func) = AggFunc::from_name(&word) else {
                        return Err(self.err(format!("unknown function {word:?}")));
                    };
                    self.pos += 2; // name + '('
                    let arg = if self.peek_is(&Token::Star) {
                        self.pos += 1;
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    self.expect_tok(Token::RParen, "')'")?;
                    return Ok(Expr::Aggregate { func, arg });
                }
                // Qualified column?
                self.pos += 1;
                if self.peek_is(&Token::Dot) {
                    self.pos += 1;
                    let col = self.ident("column name")?;
                    Ok(Expr::Column { qualifier: Some(word), name: col })
                } else {
                    Ok(Expr::Column { qualifier: None, name: word })
                }
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => *s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_q1() {
        let s = sel("SELECT Min(time) FROM candidates WHERE diff = 0");
        assert_eq!(s.projections.len(), 1);
        match &s.projections[0] {
            Projection::Expr { expr: Expr::Aggregate { func, arg }, alias: None } => {
                assert_eq!(*func, AggFunc::Min);
                assert_eq!(**arg.as_ref().unwrap(), Expr::col("time"));
            }
            other => panic!("unexpected projection {other:?}"),
        }
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_paper_q2() {
        let s = sel("SELECT * FROM candidates ORDER BY gap LIMIT 1");
        assert_eq!(s.projections, vec![Projection::Wildcard]);
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].desc);
        assert_eq!(s.limit, Some(1));
    }

    #[test]
    fn parses_paper_q3_shape() {
        let s = sel("SELECT distinct time as t FROM candidates WHERE EXISTS \
             (SELECT * FROM candidates as cnd INNER JOIN temporal_inputs as ti \
              ON ti.time = cnd.time WHERE cnd.time = t AND ((gap = 0) OR (gap = 1 \
              AND cnd.income != ti.income)))");
        assert!(s.distinct);
        match &s.projections[0] {
            Projection::Expr { alias: Some(a), .. } => assert_eq!(a, "t"),
            other => panic!("expected aliased projection, got {other:?}"),
        }
        let Some(Expr::Exists { subquery, .. }) = &s.where_clause else {
            panic!("expected EXISTS in WHERE");
        };
        assert_eq!(subquery.joins.len(), 1);
        assert_eq!(subquery.from.alias.as_deref(), Some("cnd"));
        assert_eq!(subquery.joins[0].table.alias.as_deref(), Some("ti"));
    }

    #[test]
    fn parses_paper_q5_desc() {
        let s = sel("SELECT * FROM candidates ORDER BY p DESC LIMIT 1");
        assert!(s.order_by[0].desc);
    }

    #[test]
    fn parses_paper_q6_all_quantifier() {
        let s = sel("SELECT Min(time) FROM candidates WHERE time >= ALL \
             (SELECT time as t FROM candidates WHERE gap = 0)");
        let Some(Expr::QuantifiedCmp { op, quantifier, .. }) = &s.where_clause else {
            panic!("expected quantified comparison");
        };
        assert_eq!(*op, BinOp::Ge);
        assert_eq!(*quantifier, Quantifier::All);
    }

    #[test]
    fn parses_create_and_insert() {
        let c =
            parse_statement("CREATE TABLE t (a INTEGER, b REAL, c TEXT, d BOOLEAN)")
                .unwrap();
        match c {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 4);
                assert_eq!(columns[1], ("b".to_string(), ColumnType::Real));
            }
            other => panic!("{other:?}"),
        }
        let i =
            parse_statement("INSERT INTO t (a, b) VALUES (1, 2.5), (3, 4.5)").unwrap();
        match i {
            Statement::Insert { table, columns, rows } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_delete_and_drop() {
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { predicate: Some(_), .. }
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t").unwrap(),
            Statement::Delete { predicate: None, .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE t").unwrap(),
            Statement::DropTable(_)
        ));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("SELECT a + b * 2 FROM t");
        match &s.projections[0] {
            Projection::Expr {
                expr: Expr::Binary { op: BinOp::Add, rhs, .. }, ..
            } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        match s.where_clause.unwrap() {
            Expr::Binary { op: BinOp::Or, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_and_in() {
        let s = sel("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3)");
        assert!(s.where_clause.is_some());
        let s = sel("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5");
        assert!(matches!(s.where_clause.unwrap(), Expr::Between { negated: true, .. }));
        let s = sel("SELECT * FROM t WHERE a NOT IN (SELECT a FROM u)");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::InSubquery { negated: true, .. }
        ));
    }

    #[test]
    fn is_null_variants() {
        let s = sel("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL");
        let Expr::Binary { lhs, rhs, .. } = s.where_clause.unwrap() else { panic!() };
        assert!(matches!(*lhs, Expr::IsNull { negated: false, .. }));
        assert!(matches!(*rhs, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn bare_aliases() {
        let s = sel("SELECT c.a x FROM candidates c WHERE c.a > 0");
        assert_eq!(s.from.alias.as_deref(), Some("c"));
        match &s.projections[0] {
            Projection::Expr { alias: Some(a), .. } => assert_eq!(a, "x"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn qualified_wildcard() {
        let s = sel("SELECT c.* FROM candidates c");
        assert_eq!(s.projections[0], Projection::QualifiedWildcard("c".into()));
    }

    #[test]
    fn group_by_having() {
        let s = sel("SELECT time, COUNT(*) FROM candidates GROUP BY time \
             HAVING COUNT(*) > 2 ORDER BY time");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn scalar_subquery_in_expression() {
        let s = sel("SELECT * FROM t WHERE a > (SELECT Min(a) FROM t)");
        assert!(matches!(
            s.where_clause.unwrap(),
            Expr::Binary { rhs, .. } if matches!(*rhs, Expr::ScalarSubquery(_))
        ));
    }

    #[test]
    fn rejects_bad_sql() {
        for bad in [
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t LIMIT -1",
            "SELECT * FROM t LIMIT 1.5",
            "SELECT unknown_func(a) FROM t",
            "CREATE TABLE t (a FANCYTYPE)",
            "INSERT INTO t VALUES",
            "SELECT * FROM t; SELECT * FROM u",
            "SELECT * FROM t WHERE a NOT LIKE 'x'",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parameters_numbered_in_source_order() {
        let (stmt, n) = parse_statement_with_params(
            "SELECT a FROM t WHERE b = ? AND c BETWEEN ? AND ?",
        )
        .unwrap();
        assert_eq!(n, 3);
        let Statement::Select(s) = stmt else { panic!() };
        let Some(Expr::Binary { lhs, .. }) = s.where_clause else { panic!() };
        let Expr::Binary { rhs, .. } = *lhs else { panic!() };
        assert_eq!(*rhs, Expr::Param(0));
        let (_, n) =
            parse_statement_with_params("INSERT INTO t VALUES (?, ?)").unwrap();
        assert_eq!(n, 2);
        let (_, n) = parse_statement_with_params("SELECT 1 FROM t").unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_statement("SELECT 1 FROM t;").is_ok());
    }

    #[test]
    fn count_star() {
        let s = sel("SELECT COUNT(*) FROM t");
        match &s.projections[0] {
            Projection::Expr {
                expr: Expr::Aggregate { func: AggFunc::Count, arg: None },
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }
}
