//! Prepared statements: parse once, execute many times with bound
//! parameters — no lexer or parser on the hot path.
//!
//! `?` placeholders are positional (numbered left to right in source
//! order) and bound at execution time by
//! [`Database::execute_prepared`](crate::Database::execute_prepared).
//!
//! Single-table SELECTs of plain columns with an optional `col = ?` (or
//! `col = literal`) filter and ascending plain-column ORDER BY also get
//! a `SimplePlan`: a direct scan/filter/stable-sort that bypasses the
//! general executor's frame machinery entirely. That shape is exactly
//! what `DbSnapshotStore` runs per user load, and the plan is what
//! brings its refresh cost from ~90× down to the ~2× band of the
//! in-memory store. Plans store column *names* — indices are resolved
//! against the live schema per execution, so a dropped/recreated table
//! fails typed instead of reading stale offsets.

use crate::ast::{Expr, OrderKey, Projection, Select, Statement};
use crate::error::DbError;
use crate::parser::parse_statement_with_params;
use crate::value::Value;

/// A compiled statement, reusable across executions and threads.
#[derive(Clone, Debug)]
pub struct Prepared {
    stmt: Statement,
    param_count: usize,
    plan: Option<SimplePlan>,
    text: String,
}

impl Prepared {
    /// Compiles SQL text (also available as
    /// [`Database::prepare`](crate::Database::prepare)).
    pub fn compile(sql: &str) -> Result<Prepared, DbError> {
        let (stmt, param_count) = parse_statement_with_params(sql)?;
        let plan = match &stmt {
            Statement::Select(q) => SimplePlan::from_select(q),
            _ => None,
        };
        Ok(Prepared { stmt, param_count, plan, text: sql.to_string() })
    }

    /// Number of `?` parameters the statement takes.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// `true` for SELECT statements (reads; safe outside the WAL).
    pub fn is_select(&self) -> bool {
        matches!(self.stmt, Statement::Select(_))
    }

    /// `true` when the fast direct-scan plan applies.
    pub fn has_simple_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// The original SQL text.
    pub fn text(&self) -> &str {
        &self.text
    }

    pub(crate) fn statement(&self) -> &Statement {
        &self.stmt
    }

    pub(crate) fn plan(&self) -> Option<&SimplePlan> {
        self.plan.as_ref()
    }
}

/// Right-hand side of a `col = …` equality filter.
#[derive(Clone, Debug)]
pub(crate) enum FilterRhs {
    /// Bound at execution time.
    Param(usize),
    /// Fixed at compile time.
    Literal(Value),
}

/// Direct scan plan for the store's hot query shape:
/// `SELECT cols FROM t [WHERE col = ?] [ORDER BY cols ASC] [LIMIT n]`.
#[derive(Clone, Debug)]
pub(crate) struct SimplePlan {
    pub(crate) table: String,
    pub(crate) projections: Vec<String>,
    pub(crate) filter: Option<(String, FilterRhs)>,
    pub(crate) order_by: Vec<String>,
    pub(crate) limit: Option<usize>,
}

/// A plain unqualified, unaliased column name, if the expression is one.
fn plain_column(expr: &Expr) -> Option<&String> {
    match expr {
        Expr::Column { qualifier: None, name } => Some(name),
        _ => None,
    }
}

impl SimplePlan {
    /// Derives a plan when the query fits the simple shape; `None` sends
    /// the query to the general executor.
    fn from_select(q: &Select) -> Option<SimplePlan> {
        if q.distinct
            || q.from.alias.is_some()
            || !q.joins.is_empty()
            || !q.group_by.is_empty()
            || q.having.is_some()
        {
            return None;
        }
        let mut projections = Vec::with_capacity(q.projections.len());
        for p in &q.projections {
            match p {
                Projection::Expr { expr, alias: None } => {
                    projections.push(plain_column(expr)?.clone());
                }
                _ => return None,
            }
        }
        let filter = match &q.where_clause {
            None => None,
            Some(Expr::Binary { lhs, op: crate::ast::BinOp::Eq, rhs }) => {
                let col = plain_column(lhs)?.clone();
                let rhs = match rhs.as_ref() {
                    Expr::Param(i) => FilterRhs::Param(*i),
                    Expr::Literal(v) => FilterRhs::Literal(v.clone()),
                    _ => return None,
                };
                Some((col, rhs))
            }
            Some(_) => return None,
        };
        let mut order_by = Vec::with_capacity(q.order_by.len());
        for OrderKey { expr, desc } in &q.order_by {
            if *desc {
                return None;
            }
            // Projections here are plain columns, so the executor's
            // "output columns first" ORDER BY scoping resolves to the
            // same source value as a direct row read.
            order_by.push(plain_column(expr)?.clone());
        }
        Some(SimplePlan {
            table: q.from.name.clone(),
            projections,
            filter,
            order_by,
            limit: q.limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_shape_gets_a_plan() {
        let p = Prepared::compile(
            "SELECT t, idx, v FROM jit_snapshot_inputs WHERE user_id = ? ORDER BY t, idx",
        )
        .unwrap();
        assert_eq!(p.param_count(), 1);
        assert!(p.is_select());
        assert!(p.has_simple_plan());
    }

    #[test]
    fn literal_filter_and_limit_get_a_plan() {
        let p = Prepared::compile("SELECT a FROM t WHERE b = 'x' ORDER BY a LIMIT 3")
            .unwrap();
        assert_eq!(p.param_count(), 0);
        assert!(p.has_simple_plan());
    }

    #[test]
    fn complex_shapes_fall_back_to_the_executor() {
        for sql in [
            "SELECT DISTINCT a FROM t",
            "SELECT a FROM t ORDER BY a DESC",
            "SELECT a + 1 FROM t",
            "SELECT a AS x FROM t",
            "SELECT a FROM t WHERE b > ?",
            "SELECT a FROM t WHERE b = ? AND c = ?",
            "SELECT COUNT(*) FROM t",
            "SELECT a FROM t u JOIN v ON u.a = v.a",
            "SELECT a FROM t GROUP BY a",
        ] {
            let p = Prepared::compile(sql).unwrap();
            assert!(!p.has_simple_plan(), "{sql} should not get a simple plan");
        }
    }

    #[test]
    fn non_select_statements_compile() {
        let p = Prepared::compile("INSERT INTO t VALUES (?, ?)").unwrap();
        assert_eq!(p.param_count(), 2);
        assert!(!p.is_select());
        let p = Prepared::compile("DELETE FROM t WHERE a = ?").unwrap();
        assert_eq!(p.param_count(), 1);
        assert_eq!(p.text(), "DELETE FROM t WHERE a = ?");
    }
}
