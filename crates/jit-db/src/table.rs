//! Tables: schema + row storage + hash secondary indexes.

use crate::error::DbError;
use crate::value::{ColumnType, Value};
use std::collections::HashMap;

/// A table's schema.
#[derive(Clone, Debug)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered `(column name, type)` pairs.
    pub columns: Vec<(String, ColumnType)>,
}

impl TableSchema {
    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(c, _)| c.eq_ignore_ascii_case(name))
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|(c, _)| c.clone()).collect()
    }
}

/// An in-memory table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Schema.
    pub schema: TableSchema,
    /// Row storage.
    pub rows: Vec<Vec<Value>>,
    /// Hash secondary indexes by column position: text key → row
    /// positions in **ascending order**, so an index probe visits rows
    /// in the same order a full scan would (result-identical output).
    /// Only TEXT columns are indexable; such columns store only `Text`
    /// or `Null` values, and SQL equality rejects NULL and cross-type
    /// probes, so a hash lookup fully answers any equality filter.
    indexes: HashMap<usize, HashMap<String, Vec<usize>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, columns: Vec<(String, ColumnType)>) -> Self {
        Table {
            schema: TableSchema { name: name.to_string(), columns },
            rows: Vec::new(),
            indexes: HashMap::new(),
        }
    }

    /// Declares (or rebuilds) a hash index on the column at `column`.
    /// Idempotent; indexes existing rows immediately.
    ///
    /// # Errors
    /// [`DbError::UnknownColumn`] for an out-of-range position, or
    /// [`DbError::Eval`] for a non-TEXT column (hash indexes rely on the
    /// TEXT storage invariant documented on [`Table`]).
    pub fn create_index(&mut self, column: usize) -> Result<(), DbError> {
        match self.schema.columns.get(column) {
            Some((_, ColumnType::Text)) => {}
            Some((name, ty)) => {
                return Err(DbError::Eval(format!(
                    "cannot index {ty} column {name:?}: hash indexes cover \
                     TEXT columns only"
                )))
            }
            None => return Err(DbError::UnknownColumn(format!("#{column}"))),
        }
        self.indexes.insert(column, Self::build_index(&self.rows, column));
        Ok(())
    }

    /// `true` when `column` has a hash index.
    pub fn has_index(&self, column: usize) -> bool {
        self.indexes.contains_key(&column)
    }

    /// Row positions (ascending) matching `value` under an index on
    /// `column`; `None` when the column is not indexed (caller must
    /// scan). A `Some(&[])` is authoritative: NULL and non-text probes
    /// can never SQL-equal a stored text value.
    pub fn index_probe(&self, column: usize, value: &Value) -> Option<&[usize]> {
        let index = self.indexes.get(&column)?;
        Some(match value {
            Value::Text(s) => index.get(s).map_or(&[][..], Vec::as_slice),
            _ => &[],
        })
    }

    /// Rebuilds every declared index from current row positions. Called
    /// after positional mutations (retain-style deletes); inserts
    /// maintain the indexes incrementally instead.
    pub fn rebuild_indexes(&mut self) {
        let columns: Vec<usize> = self.indexes.keys().copied().collect();
        for column in columns {
            self.indexes.insert(column, Self::build_index(&self.rows, column));
        }
    }

    fn build_index(rows: &[Vec<Value>], column: usize) -> HashMap<String, Vec<usize>> {
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (position, row) in rows.iter().enumerate() {
            if let Value::Text(key) = &row[column] {
                index.entry(key.clone()).or_default().push(position);
            }
        }
        index
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validates and appends a full row.
    pub fn insert_row(&mut self, row: Vec<Value>) -> Result<(), DbError> {
        if row.len() != self.schema.columns.len() {
            return Err(DbError::ArityMismatch {
                expected: self.schema.columns.len(),
                found: row.len(),
            });
        }
        let mut coerced = Vec::with_capacity(row.len());
        for (v, (cname, ctype)) in row.into_iter().zip(&self.schema.columns) {
            if !v.conforms_to(*ctype) {
                return Err(DbError::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: cname.clone(),
                    value: v.to_string(),
                });
            }
            // Widen ints stored in REAL columns so storage is homogeneous.
            let v = match (&v, ctype) {
                (Value::Int(i), ColumnType::Real) => Value::Float(*i as f64),
                _ => v,
            };
            coerced.push(v);
        }
        let position = self.rows.len();
        for (&column, index) in &mut self.indexes {
            if let Value::Text(key) = &coerced[column] {
                // Appends keep each position list ascending.
                index.entry(key.clone()).or_default().push(position);
            }
        }
        self.rows.push(coerced);
        Ok(())
    }

    /// Inserts a row given a subset of columns; missing columns get NULL.
    pub fn insert_partial(
        &mut self,
        columns: &[String],
        values: Vec<Value>,
    ) -> Result<(), DbError> {
        if columns.len() != values.len() {
            return Err(DbError::ArityMismatch {
                expected: columns.len(),
                found: values.len(),
            });
        }
        let mut row = vec![Value::Null; self.schema.columns.len()];
        for (cname, v) in columns.iter().zip(values) {
            let idx = self
                .schema
                .column_index(cname)
                .ok_or_else(|| DbError::UnknownColumn(cname.clone()))?;
            row[idx] = v;
        }
        self.insert_row(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                ("a".to_string(), ColumnType::Integer),
                ("b".to_string(), ColumnType::Real),
                ("c".to_string(), ColumnType::Text),
            ],
        )
    }

    #[test]
    fn insert_and_count() {
        let mut t = table();
        t.insert_row(vec![Value::Int(1), Value::Float(2.0), Value::from("x")]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn int_widens_into_real_column() {
        let mut t = table();
        t.insert_row(vec![Value::Int(1), Value::Int(2), Value::from("x")]).unwrap();
        assert!(matches!(t.rows[0][1], Value::Float(v) if v == 2.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = table();
        let err = t
            .insert_row(vec![Value::from("no"), Value::Float(1.0), Value::from("x")])
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = table();
        let err = t.insert_row(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(err, DbError::ArityMismatch { expected: 3, found: 1 });
    }

    #[test]
    fn partial_insert_fills_nulls() {
        let mut t = table();
        t.insert_partial(
            &["c".to_string(), "a".to_string()],
            vec![Value::from("hi"), Value::Int(9)],
        )
        .unwrap();
        assert!(t.rows[0][1].is_null());
        assert_eq!(t.rows[0][0].as_i64(), Some(9));
    }

    #[test]
    fn partial_insert_unknown_column() {
        let mut t = table();
        let err =
            t.insert_partial(&["zzz".to_string()], vec![Value::Int(1)]).unwrap_err();
        assert_eq!(err, DbError::UnknownColumn("zzz".to_string()));
    }

    #[test]
    fn column_index_case_insensitive() {
        let t = table();
        assert_eq!(t.schema.column_index("A"), Some(0));
        assert_eq!(t.schema.column_index("nope"), None);
    }

    #[test]
    fn nulls_conform_anywhere() {
        let mut t = table();
        t.insert_row(vec![Value::Null, Value::Null, Value::Null]).unwrap();
        assert_eq!(t.len(), 1);
    }
}
